//! Analysis 2 from the paper's introduction: *relative popularity of comic
//! strips among students* — for each strip, count the home-domain pages
//! mentioning at least two of its characteristic phrases (`C1`) plus the
//! links from the home domain into the strip's website (`C2`);
//! popularity = `C1 + C2`.
//!
//! Run with: `cargo run --release --example comic_popularity`

use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::query::queries::{query2, Comic, Q2Params, QueryEnv};
use webgraph_repr::query::reps::{Scheme, SchemeSet};
use webgraph_repr::query::{DomainTable, PageRankIndex, TextIndex};
use webgraph_repr::snode::SNodeConfig;

fn main() {
    let corpus = Corpus::generate(CorpusConfig::scaled(30_000, 23));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();

    let root = std::env::temp_dir().join(format!("snode_comics_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("build");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let dt = DomainTable::build(&corpus, &set.renumbering);

    // Audience = the largest .edu domain ("stanford.edu"); the three
    // "comic strips" are the three largest .com domains, each with the
    // vocabulary of its three most-popular phrases.
    let audience = *dt
        .domains_with_tld("edu")
        .iter()
        .max_by_key(|&&d| dt.pages_of(d).len())
        .expect(".edu domain");
    let mut coms = dt.domains_with_tld("com");
    coms.sort_by_key(|&d| std::cmp::Reverse(dt.pages_of(d).len()));
    let mut by_popularity: Vec<u32> = (0..text.num_phrases()).collect();
    by_popularity.sort_by_key(|&ph| std::cmp::Reverse(text.pages_with_phrase(ph).len()));

    let comics: Vec<Comic> = (0..3)
        .map(|i| Comic {
            words: by_popularity[3 * i + 1..3 * i + 4].to_vec(),
            site: coms[i],
        })
        .collect();
    for (i, c) in comics.iter().enumerate() {
        println!(
            "strip {}: site {:<24} vocabulary {:?}",
            i,
            dt.name(c.site),
            c.words
                .iter()
                .map(|&w| text.phrases()[w as usize].clone())
                .collect::<Vec<_>>()
        );
    }

    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &dt,
    };
    let mut rep = set.open(Scheme::SNode).expect("open");
    let out = query2(
        env,
        rep.as_mut(),
        &Q2Params {
            comics: comics.clone(),
            audience_domain: audience,
        },
    )
    .expect("query");

    println!(
        "\npopularity among {} readers (C1 + C2), most popular first:",
        dt.name(audience)
    );
    for &(idx, score) in &out.rows {
        println!(
            "  {:<24} score {}",
            dt.name(comics[idx as usize].site),
            score as u64
        );
    }
    println!(
        "\nnavigation: {} adjacency fetches over the audience domain, {:?}",
        out.nav.nav_calls, out.nav.nav_time
    );
    std::fs::remove_dir_all(&root).ok();
}
