//! Global-access mining (§1.2): the point of compressing a Web graph to a
//! few bits per edge is that the *whole* graph fits in memory, so
//! whole-graph computations — strongly-connected components, PageRank,
//! HITS — run as simple main-memory algorithms instead of external-memory
//! ones.
//!
//! This example loads a full S-Node representation into memory, decodes it
//! back into adjacency form, and runs the classic global analyses the
//! paper lists, including the Broder-style bow-tie breakdown.
//!
//! Run with: `cargo run --release --example global_mining`

use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::graph::diameter::estimate_diameter;
use webgraph_repr::graph::pagerank::{pagerank, top_ranked, PageRankConfig};
use webgraph_repr::graph::scc::tarjan_scc;
use webgraph_repr::obs::Stopwatch;
use webgraph_repr::snode::{build_snode, RepoInput, SNodeConfig, SNodeInMemory};

fn main() {
    let corpus = Corpus::generate(CorpusConfig::scaled(50_000, 3));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();

    let dir = std::env::temp_dir().join(format!("snode_mining_{}", std::process::id()));
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    println!(
        "{} pages, {} edges — S-Node holds them in {:.2} bits/edge",
        corpus.num_pages(),
        corpus.graph.num_edges(),
        stats.bits_per_edge()
    );

    // Load the compressed representation fully into memory and decode it
    // into CSR form for the global computations.
    let mem = SNodeInMemory::load(&dir).expect("load");
    println!(
        "resident encoded graphs: {} KB (vs {} KB uncompressed adjacency)",
        mem.encoded_bytes() / 1024,
        (corpus.graph.num_edges() * 4 + u64::from(corpus.num_pages()) * 4) / 1024
    );
    let t0 = Stopwatch::start();
    let graph = mem.to_graph().expect("decode");
    println!("full decode to CSR: {:?}", t0.elapsed());

    // SCC / bow-tie.
    let t0 = Stopwatch::start();
    let scc = tarjan_scc(&graph);
    let sizes = scc.component_sizes();
    let giant = sizes.iter().copied().max().unwrap_or(0);
    println!(
        "\nSCC: {} components in {:?}; giant core = {} pages ({:.1}%)",
        scc.num_components,
        t0.elapsed(),
        giant,
        100.0 * f64::from(giant) / f64::from(graph.num_nodes())
    );

    // PageRank over the decoded graph; report the top pages by URL.
    let t0 = Stopwatch::start();
    let pr = pagerank(&graph, &PageRankConfig::default());
    println!(
        "PageRank: {} iterations in {:?} (delta {:.2e})",
        pr.iterations,
        t0.elapsed(),
        pr.delta
    );
    println!("top pages:");
    for &p in top_ranked(&pr.ranks, 5).iter() {
        let old = renum.old_of_new[p as usize];
        println!(
            "  {:.6}  {}",
            pr.ranks[p as usize], corpus.pages[old as usize].url
        );
    }

    // Effective diameter from a BFS sample — the third global task §1.2
    // names.
    let t0 = Stopwatch::start();
    let est = estimate_diameter(&graph, 24);
    println!(
        "\ndiameter: max observed {} hops, effective (90th pct) {} hops ({} sources, {:?})",
        est.max_distance,
        est.effective_diameter,
        est.sources_sampled,
        t0.elapsed()
    );

    std::fs::remove_dir_all(&dir).ok();
}
