//! Quickstart: generate a small synthetic Web repository, build its S-Node
//! representation, and navigate it.
//!
//! Run with: `cargo run --release --example quickstart`

use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::snode::{build_snode, RepoInput, SNode, SNodeConfig};

fn main() {
    // 1. A 20k-page synthetic repository with realistic Web-graph structure
    //    (link copying, host locality, Zipfian domains).
    let corpus = Corpus::generate(CorpusConfig::scaled(20_000, 7));
    println!(
        "repository: {} pages, {} links, {} domains, {} hosts",
        corpus.num_pages(),
        corpus.graph.num_edges(),
        corpus.domains.len(),
        corpus.hosts.len()
    );

    // 2. Build the S-Node representation on disk.
    let dir = std::env::temp_dir().join(format!("snode_quickstart_{}", std::process::id()));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    println!(
        "s-node: {} supernodes, {} superedges, {:.2} bits/edge ({} positive / {} negative superedge graphs)",
        stats.num_supernodes,
        stats.num_superedges,
        stats.bits_per_edge(),
        stats.positive_superedges,
        stats.negative_superedges,
    );

    // 3. Open it with a 1 MiB decoded-graph budget and look around.
    let snode = SNode::open(&dir, 1 << 20).expect("open");

    // Pick the first page of the first .edu domain and walk its links.
    let edu = corpus.domains_with_tld("edu")[0];
    let page = snode.pages_in_domain(edu)[0];
    let old_id = renum.old_of_new[page as usize];
    println!(
        "\npage {page} = {} (domain {})",
        corpus.pages[old_id as usize].url, corpus.domains[edu as usize]
    );
    let neighbors = snode.out_neighbors(page).expect("navigate");
    println!("links to {} pages:", neighbors.len());
    for &t in neighbors.iter().take(5) {
        let old = renum.old_of_new[t as usize];
        println!("  -> {}", corpus.pages[old as usize].url);
    }

    // 4. The cache instrumentation shows how few graphs that touched.
    let cs = snode.cache_stats();
    println!(
        "\ncache: {} loads ({} KB decoded), {} hits",
        cs.misses,
        cs.bytes_loaded / 1024,
        cs.hits
    );

    std::fs::remove_dir_all(&dir).ok();
}
