//! Analysis 1 from the paper's introduction: *"Generate a list of
//! universities that Stanford researchers working on 'Mobile networking'
//! refer to and collaborate with."*
//!
//! The plan (§1.1): take the pages of the home university that contain the
//! topic phrase, weight each by normalised PageRank, follow their
//! out-links, and score every other `.edu` domain by the summed weight of
//! the pages pointing into it.
//!
//! Run with: `cargo run --release --example university_links`

use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::query::queries::{query1, Q1Params, QueryEnv};
use webgraph_repr::query::reps::{Scheme, SchemeSet};
use webgraph_repr::query::{DomainTable, PageRankIndex, TextIndex};
use webgraph_repr::snode::SNodeConfig;

fn main() {
    let corpus = Corpus::generate(CorpusConfig::scaled(30_000, 11));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();

    // Materialise every representation once; we query through S-Node here.
    let root = std::env::temp_dir().join(format!("snode_uni_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("build");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let dt = DomainTable::build(&corpus, &set.renumbering);

    // "Stanford" = the largest .edu domain; the topic = the phrase with the
    // most support inside it.
    let stanford = *dt
        .domains_with_tld("edu")
        .iter()
        .max_by_key(|&&d| dt.pages_of(d).len())
        .expect("an .edu domain exists");
    let topic = (0..text.num_phrases())
        .max_by_key(|&ph| {
            dt.filter_to_domain(text.pages_with_phrase(ph), stanford)
                .len()
        })
        .expect("phrases exist");
    println!(
        "home domain: {}   topic: {:?}",
        dt.name(stanford),
        text.phrases()[topic as usize]
    );

    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &dt,
    };
    let mut rep = set.open(Scheme::SNode).expect("open s-node");
    let out = query1(
        env,
        rep.as_mut(),
        &Q1Params {
            phrase: topic,
            source_domain: stanford,
            target_tld: "edu".to_string(),
        },
    )
    .expect("query");

    println!("\nuniversities referred to, by summed researcher weight:");
    for (rank, &(domain, weight)) in out.rows.iter().take(10).enumerate() {
        println!(
            "  {:2}. {:<28} weight {:.4}",
            rank + 1,
            dt.name(domain as u32),
            weight
        );
    }
    println!(
        "\nnavigation: {} adjacency fetches, {} edges touched, {:?}",
        out.nav.nav_calls, out.nav.edges_touched, out.nav.nav_time
    );
    std::fs::remove_dir_all(&root).ok();
}
