//! Umbrella crate re-exporting the full `webgraph-repr` API surface.
//!
//! This workspace reproduces *Representing Web Graphs* (Raghavan &
//! Garcia-Molina, ICDE 2003): the S-Node two-level Web-graph representation,
//! the baselines it is evaluated against, and the complete evaluation harness.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use wg_analyze as analyze;
pub use wg_baselines as baselines;
pub use wg_bench as bench;
pub use wg_bitio as bitio;
pub use wg_corpus as corpus;
pub use wg_fault as fault;
pub use wg_graph as graph;
pub use wg_obs as obs;
pub use wg_query as query;
pub use wg_serve as serve;
pub use wg_snode as snode;
pub use wg_store as store;
