//! `wgr` — command-line front end for the webgraph-repr workspace.
//!
//! ```text
//! wgr gen   --pages 50000 --seed 7 --out corpus/         generate a corpus
//! wgr build --corpus corpus/ --out repo/ --metrics       build the S-Node repo
//! wgr query corpus/ --metrics=json                       observed Q1–6 workload
//! wgr stats repo/ --json                                 representation statistics
//! wgr links --repo repo/ --page 1234                     adjacency of a page
//! wgr domain --repo repo/ --name stanford.edu            pages of a domain
//! wgr top   --corpus corpus/ --repo repo/ -k 10          top pages by PageRank
//! ```
//!
//! Observability: `--metrics` (on `build` and `query`) prints the metrics
//! registry snapshot on exit (`--metrics=json` for machine-readable form),
//! and `--trace FILE` writes a Chrome trace-event file loadable in
//! `chrome://tracing` / Perfetto.
//!
//! The corpus directory stores the generated repository in a simple text
//! format (`urls.txt`, `domains.txt`, `edges.txt`) so external tooling can
//! produce inputs too: any repository expressible as those three files can
//! be built into an S-Node representation.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use webgraph_repr::corpus::textio::{read_corpus, write_corpus};
use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::fault::{FaultPlan, FaultSpec};
use webgraph_repr::graph::pagerank::{pagerank, top_ranked, PageRankConfig};
use webgraph_repr::obs;
use webgraph_repr::query::obsrun::{fingerprint_rows, run_observed, WorkloadReport};
use webgraph_repr::query::queries::{QueryEnv, Workload};
use webgraph_repr::query::reps::SchemeSet;
use webgraph_repr::query::{DomainTable, PageRankIndex, Scheme, TextIndex};
use webgraph_repr::serve::{Client, ServeConfig, ServeContext, Server, Status as ServeStatus};
use webgraph_repr::snode::{
    build_snode, build_snode_sharded, CodecConfig, Renumbering, RepoInput, SNode, SNodeConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("gen") => cmd_gen(&args[2..]),
        Some("build") => cmd_build(&args[2..]),
        Some("query") => cmd_query(&args[2..]),
        Some("stats") => cmd_stats(&args[2..]),
        Some("links") => cmd_links(&args[2..]),
        Some("domain") => cmd_domain(&args[2..]),
        Some("top") => cmd_top(&args[2..]),
        Some("verify") => cmd_verify(&args[2..]),
        Some("check") => cmd_check(&args[2..]),
        Some("fsck") => cmd_fsck(&args[2..]),
        Some("corrupt") => cmd_corrupt(&args[2..]),
        Some("bench") => cmd_bench(&args[2..]),
        Some("serve") => cmd_serve(&args[2..]),
        Some("lint") => cmd_lint(&args[2..]),
        // Hidden: one scale-bench measurement in a fresh process, so
        // VmHWM reflects exactly that step (see `bench_scale`).
        Some("scale-step") => cmd_scale_step(&args[2..]),
        _ => {
            eprintln!(
                "usage: wgr <gen|build|query|stats|links|domain|top|verify|check|fsck|corrupt|bench|lint> [options]\n\
                 \n\
                 gen    --pages N [--seed N] --out DIR      generate a synthetic corpus\n\
                 build  --corpus DIR --out DIR [--threads N] build the S-Node representation\n\
                 \x20      [--codec CELL[/CELL]]              list codec per class (e.g. g+st, z3+iv+cb)\n\
                 \x20      [--stream --pages N [--seed N]]    generate the corpus on the fly (bounded memory)\n\
                 \x20      [--shards N]                       domain-sharded out-of-core build\n\
                 query  DIR [--scheme NAME|all] [--budget B] run the observed Q1-6 workload\n\
                 \x20      [--reps DIR] [--reuse]             over the corpus at DIR;\n\
                 \x20                                          exit 3 when answers were degraded\n\
                 stats  DIR [--json]                        show representation statistics\n\
                 links  --repo DIR --page N                 print a page's adjacency list\n\
                 domain --repo DIR --corpus DIR --name D    list a domain's pages\n\
                 top    --repo DIR --corpus DIR [-k N]      top pages by PageRank\n\
                 verify --repo DIR                          integrity check (ok/failed)\n\
                 check  DIR [--json] [--deny warn]          full static analysis;\n\
                 \x20                                          exit 0 clean, 1 denied warnings, 2 corrupt\n\
                 fsck   DIR [--json] [--repair --from DIR]  checksum every section against sums.bin;\n\
                 \x20                                          exit 0 clean, 1 damage, 2 unusable;\n\
                 \x20                                          --repair re-encodes from the corpus\n\
                 corrupt DIR --seed N [--flips N] [--truncate N] [--torn N] [--json]\n\
                 \x20                                          inject deterministic faults (testing)\n\
                 bench  [--pages N] [--seed N] [--threads 1,2,4] [--iters N] [--quick]\n\
                 \x20      [--out FILE] [--query-out FILE]    build benchmark → BENCH_build.json\n\
                 \x20                                          + query benchmark → BENCH_query.json\n\
                 \x20      [--serve [--clients N] [--serve-out FILE] [--no-telemetry]]\n\
                 \x20                                          concurrent-service benchmark instead:\n\
                 \x20                                          N clients → BENCH_serve.json with\n\
                 \x20                                          per-stage latency + shard heatmap\n\
                 \x20      [--ablate [--cells g,z3,...]]      codec-ablation grid instead: bits/edge\n\
                 \x20                                          + decode ns/edge per CodecConfig cell\n\
                 \x20                                          → BENCH_compress.json; exit 1 on any\n\
                 \x20                                          fingerprint drift from the γ baseline\n\
                 \x20      [--scale [--sizes N,N] [--shards N] out-of-core scale benchmark instead:\n\
                 \x20       [--probes N]]                      streamed corpus → sharded build →\n\
                 \x20                                          resident query probe per size, each in\n\
                 \x20                                          a fresh process for clean peak-RSS\n\
                 \x20                                          accounting → BENCH_scale.json\n\
                 serve  DIR [--port P] [--workers N] [--queue N] [--scheme NAME]\n\
                 \x20      [--reps DIR] [--reuse] [--smoke N] serve Q1-6 + out_neighbors over TCP;\n\
                 \x20      [--slowlog-us N] [--no-telemetry]  --smoke runs an N-client burst and\n\
                 \x20                                          exits 0 clean / 3 degraded / 2 errors;\n\
                 \x20                                          --slowlog-us logs slow requests as JSON\n\
                 top    --port P [--watch SECS] [--json]    live service telemetry (Stats wire op)\n\
                 lint   [--root DIR] [--json] [--deny warn] [--baseline FILE]\n\
                 \x20                                          SN2xx source lints over the workspace;\n\
                 \x20                                          exit 0 clean/baselined, 1 denied, 2 fatal\n\
                 \n\
                 build and query also accept --metrics[=json] and --trace FILE"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Pulls `--flag value` out of an argument slice.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn req(args: &[String], flag: &str) -> String {
    opt(args, flag).unwrap_or_else(|| {
        eprintln!("missing required option {flag}");
        std::process::exit(2);
    })
}

/// First positional (non-flag) argument, skipping the value slot of every
/// `--flag value` pair. Boolean flags (and `--flag=value` forms) consume
/// only their own slot.
fn positional(args: &[String]) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with('-') {
            let boolean = a.contains('=')
                || matches!(
                    a,
                    "--json"
                        | "--quick"
                        | "--metrics"
                        | "--reuse"
                        | "--repair"
                        | "--serve"
                        | "--no-telemetry"
                        | "--stream"
                        | "--scale"
                        | "--resident"
                );
            i += if boolean { 1 } else { 2 };
        } else {
            return Some(a.to_string());
        }
    }
    None
}

/// How `--metrics` output should be rendered.
#[derive(Clone, Copy, PartialEq)]
enum MetricsFormat {
    Text,
    Json,
}

/// Observability flags shared by `build` and `query`. Parsing has side
/// effects: `--metrics` raises the global metrics flag (it must be up
/// *before* caches and readers are constructed, or their counters stay
/// private) and `--trace` arms the trace ring.
struct ObsFlags {
    metrics: Option<MetricsFormat>,
    trace: Option<PathBuf>,
}

impl ObsFlags {
    fn parse(args: &[String]) -> Self {
        let mut metrics = None;
        for a in args {
            match a.as_str() {
                "--metrics" | "--metrics=text" => metrics = Some(MetricsFormat::Text),
                "--metrics=json" => metrics = Some(MetricsFormat::Json),
                _ => {}
            }
        }
        let trace = opt(args, "--trace").map(PathBuf::from);
        if metrics.is_some() {
            obs::set_metrics_enabled(true);
        }
        if trace.is_some() {
            obs::enable_trace(1 << 16);
        }
        ObsFlags { metrics, trace }
    }

    /// Prints the registry snapshot in the requested format.
    fn print_metrics(&self) {
        match self.metrics {
            Some(MetricsFormat::Text) => print!("{}", obs::global().snapshot().to_text()),
            Some(MetricsFormat::Json) => print!("{}", obs::global().snapshot().to_json()),
            None => {}
        }
    }

    /// Writes the trace file if one was requested; returns an exit code.
    fn write_trace(&self) -> i32 {
        if let Some(path) = &self.trace {
            if let Err(e) = obs::write_trace_file(path) {
                eprintln!("failed to write trace {}: {e}", path.display());
                return 1;
            }
            eprintln!("wrote trace {}", path.display());
        }
        0
    }
}

fn cmd_gen(args: &[String]) -> i32 {
    let pages: u32 = req(args, "--pages").parse().expect("--pages number");
    let seed: u64 = opt(args, "--seed").map_or(42, |s| s.parse().expect("--seed number"));
    let out = PathBuf::from(req(args, "--out"));
    std::fs::create_dir_all(&out).expect("create output dir");

    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    write_corpus(&out, &corpus).expect("write corpus");
    println!(
        "wrote {} pages, {} links, {} domains to {}",
        corpus.num_pages(),
        corpus.graph.num_edges(),
        corpus.domains.len(),
        out.display()
    );
    0
}

fn cmd_build(args: &[String]) -> i32 {
    let flags = ObsFlags::parse(args);
    let corpus_dir = PathBuf::from(req(args, "--corpus"));
    let out = PathBuf::from(req(args, "--out"));
    // 0 = auto: WGR_THREADS env var, else available parallelism. The
    // representation is byte-identical for every thread count.
    let threads: u32 = opt(args, "--threads").map_or(0, |s| s.parse().expect("--threads number"));
    // --codec exposes the per-list-class codec grid from the ablation
    // harness (PR 9) on ordinary builds: `g+st`, `z3+iv+cb`, or an
    // `<intra>/<superedge>` pair. Default stays the γ baseline.
    let codec = match opt(args, "--codec").as_deref() {
        None => CodecConfig::default(),
        Some(s) => match CodecConfig::parse(s) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("invalid --codec {s}: {e}");
                return 2;
            }
        },
    };
    // --stream generates the corpus straight into --corpus DIR first
    // (bounded memory: no URL strings or CSR graph are materialised),
    // then builds from the on-disk files like any external corpus.
    if args.iter().any(|a| a == "--stream") {
        let pages: u32 = req(args, "--pages").parse().expect("--pages number");
        let seed: u64 = opt(args, "--seed").map_or(42, |s| s.parse().expect("--seed number"));
        let st = webgraph_repr::corpus::stream::stream_corpus(
            &corpus_dir,
            &webgraph_repr::corpus::CorpusConfig::scaled(pages, seed),
        )
        .expect("stream corpus");
        println!(
            "streamed {} pages, {} links, {} domains to {}",
            st.num_pages,
            st.num_edges,
            st.num_domains,
            corpus_dir.display()
        );
    }
    // --shards N routes through the out-of-core builder: per-shard
    // encode + spill, stitched into the same byte-identical directory
    // (plus the `shards.bin` manifest).
    let shards: u32 = opt(args, "--shards").map_or(0, |s| s.parse().expect("--shards number"));
    let rss = obs::RssGauge::auto();
    let corpus = read_corpus(&corpus_dir).expect("read corpus");
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let config = SNodeConfig {
        threads,
        codec,
        ..SNodeConfig::default()
    };
    let t0 = obs::Stopwatch::start();
    let (stats, _renum) = if shards > 0 {
        build_snode_sharded(input, &config, &out, shards).expect("build")
    } else {
        build_snode(input, &config, &out).expect("build")
    };
    rss.refresh();
    let shard_note = if shards > 0 {
        format!(", {shards} shards")
    } else {
        String::new()
    };
    println!(
        "built in {:?} ({} threads, codec {}{shard_note}): {} supernodes, {} superedges, \
         {:.2} bits/edge → {}",
        t0.elapsed(),
        stats.timings.threads,
        codec,
        stats.num_supernodes,
        stats.num_superedges,
        stats.bits_per_edge(),
        out.display()
    );
    flags.print_metrics();
    flags.write_trace()
}

/// `wgr query DIR` — builds the four-scheme query set from the corpus at
/// `DIR`, runs the observed Q1–6 workload, and reports per-query costs
/// (wall time, supernodes visited, lists decoded, cache hits/misses, pages
/// fetched) plus a result fingerprint. Metrics are always enabled here —
/// observation is the command's purpose; `--metrics` additionally dumps
/// the registry snapshot, and `--metrics=json` renders everything as one
/// JSON object.
fn cmd_query(args: &[String]) -> i32 {
    let Some(corpus_dir) = positional(args).or_else(|| opt(args, "--corpus")) else {
        eprintln!(
            "usage: wgr query DIR [--scheme NAME|all] [--budget BYTES] [--reps DIR] [--reuse]\n\
             \x20                [--metrics[=json]] [--trace FILE]"
        );
        return 2;
    };
    obs::set_metrics_enabled(true);
    let flags = ObsFlags::parse(args);
    let budget: usize =
        opt(args, "--budget").map_or(1 << 20, |s| s.parse().expect("--budget bytes"));
    let schemes: Vec<Scheme> = match opt(args, "--scheme").as_deref() {
        None => vec![Scheme::SNode],
        Some("all") => Scheme::ALL.to_vec(),
        Some(name) => match Scheme::ALL.iter().copied().find(|s| s.name() == name) {
            Some(s) => vec![s],
            None => {
                eprintln!(
                    "unknown scheme {name}; expected all, {}",
                    Scheme::ALL.map(|s| s.name()).join(", ")
                );
                return 2;
            }
        },
    };

    let corpus = match read_corpus(&PathBuf::from(&corpus_dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read corpus at {corpus_dir}: {e}");
            return 2;
        }
    };
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let reuse = args.iter().any(|a| a == "--reuse");
    let (root, scratch) = match opt(args, "--reps") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("wgr_query_{}", std::process::id())),
            true,
        ),
    };
    // --reuse opens the representations already on disk instead of
    // rebuilding them — a rebuild would silently heal any damage, which
    // defeats fault-injection testing.
    let set = if reuse {
        if scratch {
            eprintln!("--reuse requires --reps DIR (a previously built representation root)");
            return 2;
        }
        match SchemeSet::open_existing(&root, &corpus.graph, budget) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open representations at {}: {e}", root.display());
                return 2;
            }
        }
    } else {
        match SchemeSet::build(
            &root,
            &urls,
            &domains,
            &corpus.graph,
            &SNodeConfig::default(),
            budget,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot build representations under {}: {e}", root.display());
                return 2;
            }
        }
    };
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domain_table = DomainTable::build(&corpus, &set.renumbering);
    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &domain_table,
    };
    let workload = Workload::discover(&text, &domain_table);
    let mut reports: Vec<WorkloadReport> = Vec::new();
    for &s in &schemes {
        match run_observed(env, &set, s, &workload) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("workload failed on scheme {}: {e}", s.name());
                if scratch {
                    std::fs::remove_dir_all(&root).ok();
                }
                return 2;
            }
        }
    }
    if scratch {
        std::fs::remove_dir_all(&root).ok();
    }

    if flags.metrics == Some(MetricsFormat::Json) {
        let mut out = String::from("{\n  \"schemes\": [\n");
        for (i, r) in reports.iter().enumerate() {
            let comma = if i + 1 < reports.len() { "," } else { "" };
            out.push_str(&indent(r.to_json().trim_end(), 4));
            out.push_str(comma);
            out.push('\n');
        }
        out.push_str("  ],\n  \"registry\": ");
        let snap = obs::global().snapshot().to_json();
        out.push_str(indent(snap.trim_end(), 2).trim_start());
        out.push_str("\n}\n");
        print!("{out}");
    } else {
        for r in &reports {
            print_report_text(r);
        }
        flags.print_metrics();
    }
    // Partial answers are still answers, but the caller must know: any
    // quarantine during the workload turns the exit code to 3.
    let mut degraded_any = false;
    for r in &reports {
        if let Some(d) = r.degraded {
            if !d.is_clean() {
                degraded_any = true;
                eprintln!(
                    "scheme {}: degraded answers — {} supernode(s) quarantined, \
                     {} adjacency part(s) skipped, {} transient read(s) retried",
                    r.scheme, d.quarantined_supernodes, d.skipped_edges, d.retries
                );
            }
        }
    }
    let trace_code = flags.write_trace();
    if degraded_any {
        3
    } else {
        trace_code
    }
}

/// Indents every line of `s` by `n` spaces.
fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn print_report_text(r: &WorkloadReport) {
    println!("scheme {}", r.scheme);
    for q in &r.queries {
        println!(
            "  {}: {:>9.3} ms | rows {:>4} | nav {:>5} calls | visited {:>5} | \
             lists {:>5}+{:<5} | memo {:>5} | batched {:>5} | cache {}/{} | pages {} | \
             fp {:016x}",
            q.query,
            q.wall_ns as f64 / 1e6,
            q.rows,
            q.nav_calls,
            q.supernodes_visited,
            q.intra_lists_decoded,
            q.super_lists_decoded,
            q.list_memo_hits,
            q.batched_lookups,
            q.cache_hits,
            q.cache_misses,
            q.pages_fetched,
            q.fingerprint
        );
    }
}

/// `wgr stats DIR [--json]` (the historical `--repo DIR` spelling still
/// works) — representation statistics, machine-readable with `--json`.
fn cmd_stats(args: &[String]) -> i32 {
    let repo = positional(args)
        .or_else(|| opt(args, "--repo"))
        .map(PathBuf::from);
    let Some(repo) = repo else {
        eprintln!("usage: wgr stats DIR [--json]");
        return 2;
    };
    let json = args.iter().any(|a| a == "--json");
    let snode = match SNode::open(&repo, 1 << 20) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open S-Node directory {}: {e}", repo.display());
            return 2;
        }
    };
    let meta = snode.meta();
    let mut sizes: Vec<u32> = (0..snode.num_supernodes())
        .map(|s| meta.supernode_size(s))
        .collect();
    sizes.sort_unstable();
    let (min, median, max) = (
        sizes.first().copied().unwrap_or(0),
        sizes.get(sizes.len() / 2).copied().unwrap_or(0),
        sizes.last().copied().unwrap_or(0),
    );
    if json {
        println!("{{");
        println!("  \"pages\": {},", snode.num_pages());
        println!("  \"supernodes\": {},", snode.num_supernodes());
        println!("  \"superedges\": {},", meta.supergraph.num_superedges());
        println!(
            "  \"supergraph_encoded_bytes\": {},",
            meta.supergraph_bits.div_ceil(8)
        );
        println!(
            "  \"supergraph_bytes_with_pointers\": {},",
            meta.supergraph.encoded_bytes_with_pointers()
        );
        println!("  \"element_size_min\": {min},");
        println!("  \"element_size_median\": {median},");
        println!("  \"element_size_max\": {max},");
        println!("  \"domains\": {}", meta.domain_supernodes.len());
        println!("}}");
    } else {
        println!("pages        : {}", snode.num_pages());
        println!("supernodes   : {}", snode.num_supernodes());
        println!("superedges   : {}", meta.supergraph.num_superedges());
        println!(
            "supernode graph: {} bytes encoded (+pointers {})",
            meta.supergraph_bits.div_ceil(8),
            meta.supergraph.encoded_bytes_with_pointers()
        );
        println!("element sizes: min {min} / median {median} / max {max}");
        println!("domains      : {}", meta.domain_supernodes.len());
    }
    0
}

fn cmd_links(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let page: u32 = req(args, "--page").parse().expect("--page number");
    let snode = SNode::open(&repo, 1 << 20).expect("open repo");
    if page >= snode.num_pages() {
        eprintln!("page {page} out of range (repo has {})", snode.num_pages());
        return 1;
    }
    let links = snode.out_neighbors(page).expect("navigate");
    println!(
        "page {page} (supernode {}) links to {} pages:",
        snode.supernode_of(page),
        links.len()
    );
    for t in links {
        println!("  {t}");
    }
    0
}

fn cmd_domain(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let corpus_dir = PathBuf::from(req(args, "--corpus"));
    let name = req(args, "--name");
    let corpus = read_corpus(&corpus_dir).expect("read corpus");
    let Some(d) = corpus.domain_by_name(&name) else {
        eprintln!("unknown domain {name}");
        return 1;
    };
    let snode = SNode::open(&repo, 1 << 20).expect("open repo");
    let renum = Renumbering::read(&repo).expect("pagemap");
    let pages = snode.pages_in_domain(d);
    println!(
        "{name}: {} pages in supernodes {:?}",
        pages.len(),
        snode.supernodes_of_domain(d)
    );
    for &p in pages.iter().take(20) {
        println!(
            "  {p}  {}",
            corpus.pages[renum.old_of_new[p as usize] as usize].url
        );
    }
    if pages.len() > 20 {
        println!("  … and {} more", pages.len() - 20);
    }
    0
}

/// Thin wrapper over the `wg-analyze` analyzer keeping the historical
/// pass/fail interface: errors fail, warnings are reported but tolerated.
fn cmd_verify(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    match webgraph_repr::analyze::check(&repo) {
        Ok(report) => {
            for d in report
                .diagnostics
                .iter()
                .filter(|d| d.severity == webgraph_repr::analyze::Severity::Warning)
            {
                eprintln!("{d}");
            }
            if report.num_errors() > 0 {
                for d in report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == webgraph_repr::analyze::Severity::Error)
                {
                    eprintln!("{d}");
                }
                eprintln!("FAILED: {} error(s)", report.num_errors());
                return 1;
            }
            let s = &report.summary;
            println!(
                "OK: {} pages, {} supernodes, {} superedges, {} edges ({} intra + {} cross)",
                s.num_pages,
                s.num_supernodes,
                s.num_superedges,
                s.intranode_edges + s.superedge_edges,
                s.intranode_edges,
                s.superedge_edges
            );
            0
        }
        Err(e) => {
            eprintln!("FAILED: {e}");
            1
        }
    }
}

/// `wgr check DIR [--json] [--deny warn]` — the full multi-pass analyzer.
/// Exit 0 when clean (or only tolerated warnings), 1 when warnings exist
/// and `--deny warn` was given, 2 when the representation has errors.
fn cmd_check(args: &[String]) -> i32 {
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" | "--repo" => i += 2,
            a if !a.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(a));
                i += 1;
            }
            _ => i += 1,
        }
    }
    let dir = dir.or_else(|| opt(args, "--repo").map(PathBuf::from));
    let Some(dir) = dir else {
        eprintln!("usage: wgr check DIR [--json] [--deny warn]");
        return 2;
    };
    let json = args.iter().any(|a| a == "--json");
    let deny_warn = opt(args, "--deny").is_some_and(|v| v == "warn" || v == "warnings");
    match webgraph_repr::analyze::check(&dir) {
        Ok(report) => {
            // A report can run to thousands of lines and is routinely piped
            // into `head`/`less`; a closed pipe must not abort the exit code.
            let rendered = if json {
                report.to_json()
            } else {
                report.to_string()
            };
            let mut out = std::io::stdout().lock();
            let _ = writeln!(out, "{rendered}");
            let _ = out.flush();
            if report.num_errors() > 0 {
                2
            } else if deny_warn && report.num_warnings() > 0 {
                1
            } else {
                0
            }
        }
        Err(e) => {
            if json {
                println!(
                    "{{\"fatal\":\"{}\"}}",
                    e.to_string().replace('\\', "\\\\").replace('"', "\\\"")
                );
            } else {
                eprintln!("fatal: {e}");
            }
            2
        }
    }
}

/// `wgr lint [--root DIR] [--json] [--deny warn] [--baseline FILE]` — the
/// SN2xx source-model analyzer (`wg-lint`): models every workspace `.rs`
/// file and reports shared-state-readiness diagnostics, including the
/// SN200 mutability-escape worklist that drives the wg-serve refactor.
/// With `--baseline`, findings whose stable key appears in the baseline
/// JSON are tolerated and only *new* findings count. Exit 0 when clean or
/// fully baselined, 1 when countable findings exist and `--deny warn` was
/// given, 2 on fatal errors (unreadable workspace or baseline).
fn cmd_lint(args: &[String]) -> i32 {
    let root = opt(args, "--root")
        .map_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")), PathBuf::from);
    let json = args.iter().any(|a| a == "--json");
    let deny_warn = opt(args, "--deny").is_some_and(|v| v == "warn" || v == "warnings");
    let baseline = match opt(args, "--baseline") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => Some(webgraph_repr::analyze::lint::baseline_keys(&text)),
            Err(e) => {
                eprintln!("fatal: cannot read baseline {path}: {e}");
                return 2;
            }
        },
        None => None,
    };
    let report = match webgraph_repr::analyze::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            if json {
                println!(
                    "{{\"fatal\":\"{}\"}}",
                    e.replace('\\', "\\\\").replace('"', "\\\"")
                );
            } else {
                eprintln!("fatal: {e}");
            }
            return 2;
        }
    };
    let empty = std::collections::BTreeSet::new();
    let fresh =
        webgraph_repr::analyze::lint::new_findings(&report, baseline.as_ref().unwrap_or(&empty));
    let countable = if baseline.is_some() {
        fresh.len()
    } else {
        report.num_findings()
    };
    // Reports are long and routinely piped into `head`; a closed pipe must
    // not abort the exit code.
    let mut out = std::io::stdout().lock();
    if json {
        let _ = writeln!(out, "{}", report.to_json());
    } else {
        let _ = writeln!(out, "{report}");
        if baseline.is_some() {
            if fresh.is_empty() {
                let _ = writeln!(out, "baseline: all findings tolerated, none new");
            } else {
                let _ = writeln!(out, "baseline: {} NEW finding(s):", fresh.len());
                for f in &fresh {
                    let _ = writeln!(out, "  NEW {f}");
                }
            }
        }
    }
    let _ = out.flush();
    if deny_warn && countable > 0 {
        1
    } else {
        0
    }
}

/// `wgr fsck DIR [--json] [--repair --from CORPUS_DIR]` — verifies every
/// checksummed section of an S-Node directory against its `sums.bin`
/// manifest (whole files, `meta.bin` sections, graph blobs) and reports a
/// per-section verdict with stable SN1xx codes. With `--repair`, damaged
/// files are re-encoded deterministically from the original corpus and the
/// directory is re-verified. Exit 0 clean, 1 damage found (or remaining
/// after repair), 2 usage error or failed repair.
fn cmd_fsck(args: &[String]) -> i32 {
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--from" => i += 2,
            a if !a.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(a));
                i += 1;
            }
            _ => i += 1,
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: wgr fsck DIR [--json] [--repair --from CORPUS_DIR]");
        return 2;
    };
    let json = args.iter().any(|a| a == "--json");
    let repair = args.iter().any(|a| a == "--repair");

    let report = webgraph_repr::analyze::fsck(&dir);
    let render = |r: &webgraph_repr::analyze::FsckReport| {
        if json {
            println!("{}", r.to_json());
        } else {
            println!("{r}");
        }
    };
    render(&report);
    if report.is_clean() {
        return 0;
    }
    if !repair {
        return 1;
    }

    let Some(from) = opt(args, "--from") else {
        eprintln!("--repair requires --from CORPUS_DIR (the original edge files)");
        return 2;
    };
    match repair_dir(&dir, &PathBuf::from(from)) {
        Ok(replaced) => {
            for name in &replaced {
                eprintln!("repaired {name}");
            }
        }
        Err(e) => {
            eprintln!("repair failed: {e}");
            return 2;
        }
    }
    let after = webgraph_repr::analyze::fsck(&dir);
    render(&after);
    i32::from(!after.is_clean())
}

/// Re-encodes the representation from `corpus_dir` into a scratch
/// directory (the build is deterministic, so a clean rebuild is
/// byte-identical to the original) and replaces every file of `dir` that
/// differs. Returns the replaced file names.
fn repair_dir(dir: &std::path::Path, corpus_dir: &std::path::Path) -> Result<Vec<String>, String> {
    let corpus = read_corpus(corpus_dir)
        .map_err(|e| format!("cannot read corpus at {}: {e}", corpus_dir.display()))?;
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let tmp = std::env::temp_dir().join(format!("wgr_repair_{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    let built = build_snode(input, &SNodeConfig::default(), &tmp)
        .map(|_| ())
        .map_err(|e| format!("re-encode failed: {e}"));
    let result = built.and_then(|()| {
        let mut replaced = Vec::new();
        let entries = std::fs::read_dir(&tmp).map_err(|e| format!("read scratch dir: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read scratch dir: {e}"))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let good = webgraph_repr::fault::read_file(&entry.path())
                .map_err(|e| format!("read rebuilt {name}: {e}"))?;
            if webgraph_repr::fault::read_file(&dir.join(&name))
                .ok()
                .as_deref()
                != Some(&good[..])
            {
                std::fs::write(dir.join(&name), &good).map_err(|e| format!("write {name}: {e}"))?;
                replaced.push(name);
            }
        }
        replaced.sort();
        Ok(replaced)
    });
    std::fs::remove_dir_all(&tmp).ok();
    result
}

/// `wgr corrupt DIR --seed N [--flips N] [--truncate N] [--torn N]` —
/// injects a deterministic, seeded fault plan into the representation at
/// `DIR` (for testing `fsck` and degraded queries; `sums.bin` itself is
/// never targeted). Prints each applied fault.
fn cmd_corrupt(args: &[String]) -> i32 {
    let Some(dir) = positional(args) else {
        eprintln!("usage: wgr corrupt DIR --seed N [--flips N] [--truncate N] [--torn N] [--json]");
        return 2;
    };
    let dir = PathBuf::from(dir);
    let seed: u64 = opt(args, "--seed").map_or(1, |s| s.parse().expect("--seed number"));
    let spec = FaultSpec {
        flips: opt(args, "--flips").map_or(1, |s| s.parse().expect("--flips number")),
        truncations: opt(args, "--truncate").map_or(0, |s| s.parse().expect("--truncate number")),
        torn_writes: opt(args, "--torn").map_or(0, |s| s.parse().expect("--torn number")),
        transient_reads: 0, // in-process only; meaningless across processes
    };
    let json = args.iter().any(|a| a == "--json");
    let plan = match FaultPlan::generate(&dir, seed, &spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot plan faults over {}: {e}", dir.display());
            return 2;
        }
    };
    match plan.apply_to_dir(&dir) {
        Ok(applied) => {
            if json {
                let mut out = format!("{{\"seed\":{seed},\"applied\":[");
                for (i, a) in applied.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&a.describe.replace('\\', "\\\\").replace('"', "\\\""));
                    out.push('"');
                }
                out.push_str("]}");
                println!("{out}");
            } else {
                for a in &applied {
                    println!("{}", a.describe);
                }
                println!("applied {} fault(s) (seed {seed})", applied.len());
            }
            0
        }
        Err(e) => {
            eprintln!("cannot apply faults to {}: {e}", dir.display());
            2
        }
    }
}

/// `wgr bench` — builds a synthetic corpus at several thread counts and
/// records wall time, the per-stage breakdown, and bits/edge to a JSON
/// baseline file (default `BENCH_build.json`). Every run's output is
/// fingerprinted and compared against the serial run, so the benchmark
/// doubles as a determinism check. Fully offline: the corpus is generated
/// in memory and repos are built under a scratch directory.
fn cmd_bench(args: &[String]) -> i32 {
    let quick = args.iter().any(|a| a == "--quick");
    let pages: u32 = opt(args, "--pages").map_or(if quick { 2_000 } else { 20_000 }, |s| {
        s.parse().expect("--pages number")
    });
    let seed: u64 = opt(args, "--seed").map_or(42, |s| s.parse().expect("--seed number"));
    // `--ablate`: the codec-ablation grid instead of the builder —
    // bits/edge and decode ns/edge per CodecConfig cell, with every
    // cell's decoded rows fingerprinted against the γ baseline.
    if args.iter().any(|a| a == "--ablate") {
        return bench_ablate(args, pages, seed, quick);
    }
    // `--scale`: the out-of-core scale benchmark instead — streamed
    // corpora, sharded builds, and resident query probes, one fresh
    // process per measurement so `VmHWM` attributes peak RSS to exactly
    // that step.
    if args.iter().any(|a| a == "--scale") {
        return bench_scale(args, seed, quick);
    }
    // `--serve`: benchmark the concurrent query service instead of the
    // builder — many clients against one shared representation.
    if args.iter().any(|a| a == "--serve") {
        let clients: usize = opt(args, "--clients").map_or(if quick { 16 } else { 100 }, |s| {
            s.parse().expect("--clients number")
        });
        let sout =
            PathBuf::from(opt(args, "--serve-out").unwrap_or_else(|| "BENCH_serve.json".into()));
        let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
        let scratch = std::env::temp_dir().join(format!("wgr_bench_serve_{}", std::process::id()));
        let code = bench_serve(&corpus, &scratch, pages, seed, clients, &sout, args);
        std::fs::remove_dir_all(&scratch).ok();
        return code;
    }
    let iters: usize = opt(args, "--iters").map_or(if quick { 1 } else { 3 }, |s| {
        s.parse().expect("--iters number")
    });
    let mut thread_counts: Vec<u32> = opt(args, "--threads").map_or(vec![1, 2, 4], |s| {
        s.split(',')
            .map(|t| t.trim().parse().expect("--threads comma list"))
            .collect()
    });
    if !thread_counts.contains(&1) {
        thread_counts.insert(0, 1); // serial baseline anchors the speedups
    }
    let out = PathBuf::from(opt(args, "--out").unwrap_or_else(|| "BENCH_build.json".into()));

    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let scratch = std::env::temp_dir().join(format!("wgr_bench_{}", std::process::id()));

    // One run per thread count: best-of-`iters` wall time (per stage, the
    // breakdown of the best total), plus an output fingerprint.
    let mut runs = Vec::new();
    let mut serial_fp: Option<u64> = None;
    let mut bits_per_edge = 0.0f64;
    let mut identical = true;
    for &threads in &thread_counts {
        let config = SNodeConfig {
            threads,
            ..SNodeConfig::default()
        };
        let mut best: Option<webgraph_repr::snode::BuildStats> = None;
        let mut fp = 0u64;
        for iter in 0..iters.max(1) {
            let dir = scratch.join(format!("t{threads}_i{iter}"));
            let (stats, _renum) = build_snode(input, &config, &dir).expect("bench build");
            fp = fingerprint_dir(&dir);
            std::fs::remove_dir_all(&dir).ok();
            bits_per_edge = stats.bits_per_edge();
            if best
                .as_ref()
                .is_none_or(|b| stats.timings.total_secs < b.timings.total_secs)
            {
                best = Some(stats);
            }
        }
        let stats = best.expect("at least one iteration");
        match serial_fp {
            None => serial_fp = Some(fp),
            Some(s) => identical &= s == fp,
        }
        eprintln!(
            "threads {threads}: total {:.3}s (refine {:.3}s, remap {:.3}s, encode {:.3}s, write {:.3}s)",
            stats.timings.total_secs,
            stats.timings.refine_secs,
            stats.timings.remap_secs,
            stats.timings.encode_secs,
            stats.timings.write_secs,
        );
        runs.push((threads, stats.timings, fp));
    }
    std::fs::remove_dir_all(&scratch).ok();

    let serial_encode = runs
        .iter()
        .find(|(t, ..)| *t == 1)
        .map_or(0.0, |(_, tm, _)| tm.encode_secs);
    let serial_total = runs
        .iter()
        .find(|(t, ..)| *t == 1)
        .map_or(0.0, |(_, tm, _)| tm.total_secs);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"wgr build\",\n");
    json.push_str(&format!("  \"pages\": {pages},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"edges\": {},\n", corpus.graph.num_edges()));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!("  \"bits_per_edge\": {bits_per_edge:.4},\n"));
    json.push_str(&format!("  \"identical_output\": {identical},\n"));
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        obs::sample_self().map_or(0, |s| s.peak_rss_bytes)
    ));
    json.push_str("  \"runs\": [\n");
    for (k, (threads, tm, fp)) in runs.iter().enumerate() {
        let sep = if k + 1 == runs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"total_secs\": {:.6}, \"refine_secs\": {:.6}, \
             \"remap_secs\": {:.6}, \"encode_secs\": {:.6}, \"write_secs\": {:.6}, \
             \"encode_speedup_vs_serial\": {:.3}, \"total_speedup_vs_serial\": {:.3}, \
             \"output_fingerprint\": \"{fp:016x}\"}}{sep}\n",
            tm.total_secs,
            tm.refine_secs,
            tm.remap_secs,
            tm.encode_secs,
            tm.write_secs,
            if tm.encode_secs > 0.0 {
                serial_encode / tm.encode_secs
            } else {
                1.0
            },
            if tm.total_secs > 0.0 {
                serial_total / tm.total_secs
            } else {
                1.0
            },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {}", out.display());

    // Query companion: the six-query workload on every scheme, twice —
    // wall times vary run to run, the cost counters and result
    // fingerprints must not. Metrics stay off during the build benchmark
    // above so its timings are unperturbed; they are enabled only now.
    let qout = PathBuf::from(opt(args, "--query-out").unwrap_or_else(|| "BENCH_query.json".into()));
    let qcode = bench_query(&corpus, &scratch, pages, seed, &qout);
    std::fs::remove_dir_all(&scratch).ok();

    if !identical {
        eprintln!("FAILED: outputs differ across thread counts");
        return 1;
    }
    qcode
}

/// Runs the six-query workload for every scheme twice and writes the
/// `BENCH_query.json` companion. Returns 0 when both passes agreed on
/// every deterministic counter and fingerprint.
/// `wgr bench --ablate` — builds one representation per codec cell and
/// writes the `BENCH_compress.json` baseline: bits/edge and decode
/// ns/edge per cell, plus the decoded-row fingerprint of each. Sizes and
/// fingerprints are deterministic (same corpus, same codec → same bytes);
/// only the ns/edge column is machine-dependent. Exits non-zero when any
/// cell's decoded rows differ from the γ baseline's.
fn bench_ablate(args: &[String], pages: u32, seed: u64, quick: bool) -> i32 {
    use webgraph_repr::bench::ablate;
    let cells: Vec<String> = opt(args, "--cells").map_or_else(
        || {
            ablate::DEFAULT_CELLS
                .iter()
                .map(|s| s.to_string())
                .collect()
        },
        |s| s.split(',').map(|c| c.trim().to_string()).collect(),
    );
    let sweeps = if quick { 1 } else { 3 };
    let out = PathBuf::from(opt(args, "--out").unwrap_or_else(|| "BENCH_compress.json".into()));
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let scratch = std::env::temp_dir().join(format!("wgr_ablate_{}", std::process::id()));
    let cell_refs: Vec<&str> = cells.iter().map(String::as_str).collect();
    let report = ablate::run_ablation(&corpus, &scratch, &cell_refs, sweeps);
    std::fs::remove_dir_all(&scratch).ok();
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAILED: {e}");
            return 1;
        }
    };
    std::fs::write(&out, report.to_json(seed)).expect("write ablation json");
    println!("wrote {}", out.display());
    if let Some(best) = report.best() {
        println!(
            "best cell: {} at {:.4} bits/edge ({:.1} ns/edge decode)",
            best.cell, best.bits_per_edge, best.decode_ns_per_edge
        );
    }
    if !report.all_match {
        eprintln!("FAILED: some cell's decoded rows differ from the gamma baseline");
        return 1;
    }
    0
}

fn bench_query(
    corpus: &Corpus,
    scratch: &std::path::Path,
    pages: u32,
    seed: u64,
    out: &std::path::Path,
) -> i32 {
    obs::set_metrics_enabled(true);
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let root = scratch.join("queryset");
    let set = SchemeSet::build(
        &root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("build scheme set");
    let text = TextIndex::build(corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domain_table = DomainTable::build(corpus, &set.renumbering);
    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &domain_table,
    };
    let workload = Workload::discover(&text, &domain_table);

    let mut deterministic = true;
    let mut schemes_json = Vec::new();
    for scheme in Scheme::ALL {
        let r1 = run_observed(env, &set, scheme, &workload).expect("bench query");
        let r2 = run_observed(env, &set, scheme, &workload).expect("bench query rerun");
        for (a, b) in r1.queries.iter().zip(r2.queries.iter()) {
            deterministic &= a.deterministic_fields() == b.deterministic_fields();
        }
        eprintln!(
            "query bench {}: {:.3} ms total, {} pages fetched",
            r1.scheme,
            r1.queries.iter().map(|q| q.wall_ns).sum::<u64>() as f64 / 1e6,
            r1.queries.iter().map(|q| q.pages_fetched).sum::<u64>()
        );
        schemes_json.push(indent(r1.to_json().trim_end(), 4));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"wgr query\",\n");
    json.push_str(&format!("  \"pages\": {pages},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str("  \"schemes\": [\n");
    json.push_str(&schemes_json.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(out, &json).expect("write query bench json");
    println!("wrote {}", out.display());
    if !deterministic {
        eprintln!("FAILED: query counters or fingerprints differ between passes");
        return 1;
    }
    0
}

/// Corpus sizes for `wgr bench --scale`: quick mode is the CI smoke
/// (one streamed 100 k-page build), the full run climbs to the
/// million-page acceptance point.
const SCALE_SIZES_FULL: [u32; 3] = [100_000, 300_000, 1_000_000];
const SCALE_SIZES_QUICK: [u32; 1] = [100_000];

/// Streamed generation must stay in bounded memory at every size: the
/// writer's only `O(edges)` state is the adjacency arena + PA pool
/// (≈ 8 bytes/edge), so half a gigabyte covers the million-page point
/// with a wide margin while still catching an accidental
/// materialisation of URL strings or the CSR graph (which costs
/// gigabytes there).
const SCALE_STREAM_RSS_BOUND: u64 = 512 << 20;

/// `wgr bench --scale` — the out-of-core benchmark behind
/// `BENCH_scale.json`. Three parts:
///
/// 1. **Equivalence** (in process): builds the full scheme set at a
///    query-workload-sized corpus, records the Q1–6 fingerprints, swaps
///    a sharded rebuild of the forward S-Node directory into the layout
///    and reruns the workload — the answers must be identical, and the
///    payload files byte-identical.
/// 2. **Scale ladder** (subprocesses): per corpus size, a fresh process
///    streams the corpus, builds with `--shards`, and reports its RSS
///    high-water marks; then two more processes probe navigation
///    latency over the result — once through the zero-copy resident
///    read path, once through positioned reads — and must agree on an
///    answer fingerprint.
/// 3. **Memory gates**: streamed generation stays under a fixed bound,
///    and resident-query overhead (peak RSS minus the resident index
///    bytes) stays flat up the ladder modulo the per-page metadata the
///    paper's model keeps in memory.
fn bench_scale(args: &[String], seed: u64, quick: bool) -> i32 {
    let sizes: Vec<u32> = opt(args, "--sizes").map_or_else(
        || {
            if quick {
                SCALE_SIZES_QUICK.to_vec()
            } else {
                SCALE_SIZES_FULL.to_vec()
            }
        },
        |s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--sizes comma list"))
                .collect()
        },
    );
    let shards: u32 = opt(args, "--shards").map_or(8, |s| s.parse().expect("--shards number"));
    let probes: u32 = opt(args, "--probes").map_or(if quick { 2_000 } else { 10_000 }, |s| {
        s.parse().expect("--probes number")
    });
    let out = PathBuf::from(opt(args, "--out").unwrap_or_else(|| "BENCH_scale.json".into()));
    let scratch = std::env::temp_dir().join(format!("wgr_scale_{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let eq_pages: u32 = if quick { 2_000 } else { 20_000 };
    let (eq_ok, eq_json) = scale_equivalence(&scratch.join("eq"), eq_pages, seed, shards);
    if !eq_ok {
        eprintln!("FAILED: sharded build is not equivalent to the in-memory build");
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut ok = eq_ok;
    let mut stream_bounded = true;
    let mut size_objs: Vec<String> = Vec::new();
    let mut overheads: Vec<(u32, u64)> = Vec::new();
    for &pages in &sizes {
        let dir = scratch.join(format!("s{pages}"));
        let dir_s = dir.to_string_lossy().into_owned();
        let b = run_scale_step(
            &exe,
            &[
                "scale-step",
                "build",
                "--pages",
                &pages.to_string(),
                "--seed",
                &seed.to_string(),
                "--dir",
                &dir_s,
                "--shards",
                &shards.to_string(),
            ],
        );
        let Some(b) = b else {
            ok = false;
            continue;
        };
        let stream_peak = snap_u64(&b, "stream_peak_rss_bytes");
        stream_bounded &= stream_peak > 0 && stream_peak <= SCALE_STREAM_RSS_BOUND;
        eprintln!(
            "scale {pages}: stream {:.1}s (peak {} MiB), build {:.1}s (peak {} MiB), \
             {:.3} bits/edge",
            snap_f64(&b, "stream_secs"),
            stream_peak >> 20,
            snap_f64(&b, "build_secs"),
            snap_u64(&b, "peak_rss_bytes") >> 20,
            snap_f64(&b, "bits_per_edge"),
        );
        let repo = dir.join("repo");
        let repo_s = repo.to_string_lossy().into_owned();
        let probe_args = [
            "scale-step",
            "query",
            "--repo",
            &repo_s,
            "--probes",
            &probes.to_string(),
        ];
        let resident_args: Vec<&str> = probe_args.iter().copied().chain(["--resident"]).collect();
        let (Some(qr), Some(qp)) = (
            run_scale_step(&exe, &resident_args),
            run_scale_step(&exe, &probe_args),
        ) else {
            ok = false;
            std::fs::remove_dir_all(&dir).ok();
            continue;
        };
        let answers_match = !snap_str(&qr, "probe_fingerprint").is_empty()
            && snap_str(&qr, "probe_fingerprint") == snap_str(&qp, "probe_fingerprint");
        if !answers_match {
            eprintln!("FAILED: resident and positioned probes disagree at {pages} pages");
        }
        ok &= answers_match;
        eprintln!(
            "scale {pages}: probe p50 {} ns / p99 {} ns resident \
             (vs {} / {} positioned), resident index {} MiB",
            snap_u64(&qr, "p50_ns"),
            snap_u64(&qr, "p99_ns"),
            snap_u64(&qp, "p50_ns"),
            snap_u64(&qp, "p99_ns"),
            snap_u64(&qr, "resident_bytes") >> 20,
        );
        overheads.push((
            pages,
            snap_u64(&qr, "peak_rss_bytes").saturating_sub(snap_u64(&qr, "resident_bytes")),
        ));
        size_objs.push(format!(
            "    {{\"pages\": {pages},\n     \"build\": {b},\n     \"query_resident\": {qr},\n\
             \x20    \"query_positioned\": {qp},\n     \"answers_match\": {answers_match}}}"
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&scratch).ok();

    // Flat-memory gate: beyond the resident index, a bigger corpus may
    // only cost the per-page metadata the paper's model keeps in memory
    // (renumbering + page→supernode maps; 64 B/page is a generous
    // ceiling) — the decoded-list cache is budget-capped and must not
    // grow with corpus size.
    let base_overhead = overheads.iter().map(|&(_, o)| o).min().unwrap_or(0);
    let query_memory_flat = overheads
        .iter()
        .all(|&(p, o)| o <= base_overhead + 64 * u64::from(p) + (32 << 20));
    if !stream_bounded {
        eprintln!("FAILED: streamed generation exceeded the bounded-memory gate");
    }
    if !query_memory_flat {
        eprintln!("FAILED: query overhead grows faster than the resident-index model allows");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"wgr scale\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"shards\": {shards},\n"));
    json.push_str(&format!("  \"probes\": {probes},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"stream_rss_bound_bytes\": {SCALE_STREAM_RSS_BOUND},\n"
    ));
    json.push_str(&format!("  \"stream_rss_bounded\": {stream_bounded},\n"));
    json.push_str(&format!("  \"query_memory_flat\": {query_memory_flat},\n"));
    json.push_str(&eq_json);
    json.push_str("  \"sizes\": [\n");
    json.push_str(&size_objs.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, &json).expect("write scale bench json");
    println!("wrote {}", out.display());
    i32::from(!(ok && stream_bounded && query_memory_flat))
}

/// The in-process equivalence leg of [`bench_scale`]: Q1–6 over the
/// plain build vs the same workload over a sharded rebuild swapped into
/// the scheme-set layout, plus payload byte-identity. Returns the
/// verdict and the `"equivalence"` JSON fragment.
fn scale_equivalence(root: &std::path::Path, pages: u32, seed: u64, shards: u32) -> (bool, String) {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let set_root = root.join("queryset");
    let set = SchemeSet::build(
        &set_root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("build scheme set");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domain_table = DomainTable::build(&corpus, &set.renumbering);
    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &domain_table,
    };
    let workload = Workload::discover(&text, &domain_table);
    let fps = |set: &SchemeSet| -> Vec<u64> {
        run_observed(env, set, Scheme::SNode, &workload)
            .expect("scale equivalence workload")
            .queries
            .iter()
            .map(|q| q.fingerprint)
            .collect()
    };
    let plain = fps(&set);
    drop(set);

    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let sh_dir = root.join("snode_sharded");
    build_snode_sharded(input, &SNodeConfig::default(), &sh_dir, shards).expect("sharded build");
    let payload_identical = dirs_payload_identical(&set_root.join("snode"), &sh_dir);
    std::fs::rename(set_root.join("snode"), root.join("snode_plain")).expect("swap out snode");
    std::fs::rename(&sh_dir, set_root.join("snode")).expect("swap in sharded snode");
    let set2 = SchemeSet::open_existing(&set_root, &corpus.graph, 1 << 20)
        .expect("reopen scheme set over sharded build");
    let sharded = fps(&set2);
    drop(set2);
    std::fs::remove_dir_all(root).ok();

    let hex = |v: &[u64]| {
        v.iter()
            .map(|f| format!("\"{f:016x}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let ok = payload_identical && !plain.is_empty() && plain == sharded;
    let json = format!(
        "  \"equivalence\": {{\n    \"pages\": {pages},\n    \"shards\": {shards},\n\
         \x20   \"payload_identical\": {payload_identical},\n    \"q_plain\": [{}],\n\
         \x20   \"q_sharded\": [{}],\n    \"match\": {ok}\n  }},\n",
        hex(&plain),
        hex(&sharded),
    );
    (ok, json)
}

/// Byte-compares every payload file of two S-Node directories, ignoring
/// only `sums.bin` (checksums cover the manifest) and `shards.bin` (the
/// sharded build's extra manifest).
fn dirs_payload_identical(a: &std::path::Path, b: &std::path::Path) -> bool {
    let list = |d: &std::path::Path| -> Vec<(String, Vec<u8>)> {
        let mut v: Vec<(String, Vec<u8>)> = std::fs::read_dir(d)
            .expect("read snode dir")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.is_file())
            .filter_map(|p| {
                let name = p.file_name()?.to_string_lossy().into_owned();
                if name == "sums.bin" || name == "shards.bin" {
                    return None;
                }
                Some((name, wg_fault::read_file(&p).expect("read snode file")))
            })
            .collect();
        v.sort();
        v
    };
    list(a) == list(b)
}

/// Runs one hidden `scale-step` subprocess and returns the JSON line it
/// printed (the last `{`-led stdout line), or `None` on failure.
fn run_scale_step(exe: &std::path::Path, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(exe).args(args).output().ok()?;
    if !out.status.success() {
        eprintln!(
            "scale step {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .map(str::to_string)
}

/// Dispatcher for the hidden `wgr scale-step` subcommand (the
/// per-measurement child of `wgr bench --scale`).
fn cmd_scale_step(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("build") => scale_step_build(&args[1..]),
        Some("query") => scale_step_query(&args[1..]),
        _ => {
            eprintln!("usage: wgr scale-step <build|query> (internal; use `wgr bench --scale`)");
            2
        }
    }
}

/// `wgr scale-step build --pages N --seed N --dir DIR [--shards K]` —
/// streams the corpus to `DIR/corpus`, builds the (sharded) S-Node
/// representation at `DIR/repo`, and prints one JSON line with the
/// timings, output fingerprint, and this process's RSS high-water
/// marks: sampled once right after streaming (witnessing the writer's
/// bounded memory) and once after the build (the whole step).
fn scale_step_build(args: &[String]) -> i32 {
    let pages: u32 = req(args, "--pages").parse().expect("--pages number");
    let seed: u64 = opt(args, "--seed").map_or(42, |s| s.parse().expect("--seed number"));
    let dir = PathBuf::from(req(args, "--dir"));
    let shards: u32 = opt(args, "--shards").map_or(0, |s| s.parse().expect("--shards number"));
    let corpus_dir = dir.join("corpus");
    let repo = dir.join("repo");

    let sw = obs::Stopwatch::start();
    webgraph_repr::corpus::stream::stream_corpus(
        &corpus_dir,
        &webgraph_repr::corpus::CorpusConfig::scaled(pages, seed),
    )
    .expect("stream corpus");
    let stream_secs = sw.elapsed().as_secs_f64();
    let stream_peak = obs::sample_self().map_or(0, |s| s.peak_rss_bytes);

    let sw = obs::Stopwatch::start();
    let corpus = read_corpus(&corpus_dir).expect("read streamed corpus");
    let read_secs = sw.elapsed().as_secs_f64();
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let config = SNodeConfig::default();
    let sw = obs::Stopwatch::start();
    let (stats, _renum) = if shards > 0 {
        build_snode_sharded(input, &config, &repo, shards)
    } else {
        build_snode(input, &config, &repo)
    }
    .expect("scale build");
    let build_secs = sw.elapsed().as_secs_f64();
    let peak = obs::sample_self().map_or(0, |s| s.peak_rss_bytes);
    let fp = fingerprint_dir(&repo);
    println!(
        "{{\"step\":\"build\",\"pages\":{},\"edges\":{},\"shards\":{shards},\
         \"stream_secs\":{stream_secs:.3},\"read_secs\":{read_secs:.3},\
         \"build_secs\":{build_secs:.3},\"supernodes\":{},\"superedges\":{},\
         \"bits_per_edge\":{:.4},\"fingerprint\":\"{fp:016x}\",\
         \"stream_peak_rss_bytes\":{stream_peak},\"peak_rss_bytes\":{peak}}}",
        corpus.num_pages(),
        corpus.graph.num_edges(),
        stats.num_supernodes,
        stats.num_superedges,
        stats.bits_per_edge(),
    );
    0
}

/// `wgr scale-step query --repo DIR [--probes N] [--resident]
/// [--budget B]` — opens the representation (zero-copy resident mode
/// with `--resident`, the positioned-read path otherwise), runs N
/// deterministic `out_neighbors` probes, and prints one JSON line with
/// the latency distribution, an answer fingerprint both modes must
/// agree on, the resident index bytes, and this process's peak RSS.
fn scale_step_query(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let probes: u32 = opt(args, "--probes").map_or(10_000, |s| s.parse().expect("--probes number"));
    let budget: usize =
        opt(args, "--budget").map_or(1 << 20, |s| s.parse().expect("--budget bytes"));
    let resident = args.iter().any(|a| a == "--resident");
    let snode = if resident {
        SNode::open_resident(&repo, budget)
    } else {
        SNode::open(&repo, budget)
    }
    .expect("open repo");
    let n = snode.num_pages();
    if n == 0 || probes == 0 {
        eprintln!("nothing to probe");
        return 2;
    }
    let mut lat: Vec<u64> = Vec::with_capacity(probes as usize);
    let mut edges = 0u64;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut buf: Vec<u32> = Vec::new();
    for i in 0..probes {
        // Knuth multiplicative scatter: deterministic, spread across the
        // id space, identical for both open modes.
        let p = ((u64::from(i) * 2_654_435_761) % u64::from(n)) as u32;
        let sw = obs::Stopwatch::start();
        snode.out_neighbors_into(p, &mut buf).expect("navigate");
        lat.push(sw.elapsed().as_nanos() as u64);
        edges += buf.len() as u64;
        for &t in std::iter::once(&p).chain(buf.iter()) {
            for b in t.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        }
    }
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    let mean = lat.iter().sum::<u64>() / lat.len() as u64;
    let peak = obs::sample_self().map_or(0, |s| s.peak_rss_bytes);
    println!(
        "{{\"step\":\"query\",\"pages\":{n},\"probes\":{probes},\"resident\":{resident},\
         \"p50_ns\":{},\"p99_ns\":{},\"mean_ns\":{mean},\"edges_touched\":{edges},\
         \"probe_fingerprint\":\"{h:016x}\",\"resident_bytes\":{},\"peak_rss_bytes\":{peak}}}",
        pct(0.50),
        pct(0.99),
        snode.resident_bytes(),
    );
    0
}

/// Extracts `"key":<number>` (integer or decimal) from a snapshot line.
fn snap_f64(line: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    line.find(&pat)
        .map(|i| {
            line[i + pat.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect::<String>()
        })
        .and_then(|d| d.parse().ok())
        .unwrap_or(0.0)
}

/// Builds the serve context (representations + auxiliary indexes) for a
/// corpus, the way `wgr serve` and `wgr bench --serve` share it. The
/// returned fingerprints are the single-threaded Q1–6 reference every
/// concurrent answer must reproduce.
fn build_serve_context(
    corpus: &Corpus,
    set: &SchemeSet,
    scheme: Scheme,
) -> Result<(Arc<ServeContext>, [u64; 6]), String> {
    let text = TextIndex::build(corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domains = DomainTable::build(corpus, &set.renumbering);
    let workload = Workload::discover(&text, &domains);
    let fwd = set
        .open(scheme)
        .map_err(|e| format!("open {}: {e}", scheme.name()))?;
    let back = set
        .open_transpose(scheme)
        .map_err(|e| format!("open {} transpose: {e}", scheme.name()))?;
    let ctx = Arc::new(ServeContext {
        text,
        pagerank,
        domains,
        workload,
        fwd,
        back,
        num_pages: set.graph.num_nodes(),
    });
    let mut reference = [0u64; 6];
    for (i, r) in reference.iter_mut().enumerate() {
        let out = ctx
            .run_query(i as u8 + 1)
            .map_err(|e| format!("reference q{}: {e}", i + 1))?;
        *r = fingerprint_rows(&out.rows);
    }
    Ok((ctx, reference))
}

/// `wgr bench --serve` — multi-client latency/throughput benchmark of the
/// concurrent query service on the standard bench corpus. Every client
/// runs the Q1–6 workload cycle plus raw navigation over one *shared*
/// decoded representation; per-query fingerprints are written as decimal
/// u64s so CI can cross-check them against the committed
/// `BENCH_query.json` (same corpus, same FNV-1a).
fn bench_serve(
    corpus: &Corpus,
    scratch: &std::path::Path,
    pages: u32,
    seed: u64,
    clients: usize,
    out: &std::path::Path,
    args: &[String],
) -> i32 {
    const ROUNDS: usize = 2; // Q1–6 cycles per client
    const NAVS: usize = 8; // raw out_neighbors calls per client
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let set = SchemeSet::build(
        &scratch.join("serveset"),
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("build scheme set");
    let (ctx, reference) = build_serve_context(corpus, &set, Scheme::SNode).expect("serve context");
    let num_pages = ctx.num_pages;

    let workers: usize = opt(args, "--workers").map_or_else(
        || std::thread::available_parallelism().map_or(4, |n| n.get().max(2)),
        |s| s.parse().expect("--workers number"),
    );
    let telemetry_on = !args.iter().any(|a| a == "--no-telemetry");
    let cfg = ServeConfig {
        workers,
        // Every client may be parked in the queue at once; refusals would
        // benchmark the backpressure path, not the read path.
        queue_cap: clients.max(256),
        port: 0,
        slowlog_us: opt(args, "--slowlog-us")
            .map_or(0, |s| s.parse().expect("--slowlog-us microseconds")),
        telemetry: telemetry_on,
    };
    let server = Server::start(Arc::clone(&ctx), &cfg).expect("start server");
    let tel = server.telemetry();
    let port = server.port();

    let mut latencies: Vec<u64> = Vec::with_capacity(clients * (ROUNDS * 6 + NAVS));
    let mut mismatches = 0u64;
    let mut degraded = 0u64;
    let mut errors = 0u64;
    let wall = obs::Stopwatch::start();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let reference = &reference;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(ROUNDS * 6 + NAVS);
                    let (mut mm, mut dg, mut er) = (0u64, 0u64, 0u64);
                    let Ok(mut cl) = Client::connect(port) else {
                        return (lats, mm, dg, 1u64);
                    };
                    for _ in 0..ROUNDS {
                        for n in 1..=6u8 {
                            let sw = obs::Stopwatch::start();
                            match cl.query(n) {
                                Ok(reply) => {
                                    lats.push(sw.elapsed().as_nanos() as u64);
                                    mm += u64::from(
                                        reply.fingerprint != reference[usize::from(n) - 1],
                                    );
                                    dg += u64::from(reply.status == ServeStatus::Degraded);
                                }
                                Err(_) => er += 1,
                            }
                        }
                    }
                    for k in 0..NAVS {
                        let p = ((c * 7919 + k * 104_729) % num_pages as usize) as u32;
                        let sw = obs::Stopwatch::start();
                        match cl.out_neighbors(p) {
                            Ok(_) => lats.push(sw.elapsed().as_nanos() as u64),
                            Err(_) => er += 1,
                        }
                    }
                    (lats, mm, dg, er)
                })
            })
            .collect();
        for h in handles {
            let (l, mm, dg, er) = h.join().expect("client thread");
            latencies.extend(l);
            mismatches += mm;
            degraded += dg;
            errors += er;
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    let stats = server.shutdown();

    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx] as f64 / 1e6
    };
    let total = latencies.len() as u64;
    let throughput = if wall_secs > 0.0 {
        total as f64 / wall_secs
    } else {
        0.0
    };

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"wgr serve\",\n");
    json.push_str(&format!("  \"pages\": {pages},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!("  \"requests\": {total},\n"));
    json.push_str(&format!("  \"errors\": {errors},\n"));
    json.push_str(&format!("  \"fingerprint_mismatches\": {mismatches},\n"));
    json.push_str(&format!("  \"degraded_responses\": {degraded},\n"));
    json.push_str(&format!(
        "  \"overloaded\": {},\n",
        stats.overloaded.load(std::sync::atomic::Ordering::Relaxed)
    ));
    json.push_str(&format!("  \"wall_secs\": {wall_secs:.6},\n"));
    json.push_str(&format!("  \"throughput_rps\": {throughput:.1},\n"));
    json.push_str(&format!(
        "  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},\n",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        pct(1.0)
    ));
    // Per-stage latency attribution (server-side), one object per stage:
    // the distribution of that stage across all requests that ran it.
    json.push_str(&format!(
        "  \"telemetry\": {{\"enabled\": {telemetry_on}, \"stage_overruns\": {}}},\n",
        tel.stage_overruns()
    ));
    json.push_str("  \"stage_latency_us\": {\n");
    for (i, st) in obs::Stage::ALL.iter().enumerate() {
        let d = tel.stage_data(*st);
        let sep = if i + 1 < obs::NUM_STAGES { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"mean\": {}}}{sep}\n",
            st.name(),
            d.count,
            d.percentile(0.50) / 1_000,
            d.percentile(0.99) / 1_000,
            d.mean() / 1_000,
        ));
    }
    json.push_str("  },\n");
    // Per-op attribution matrix: where each op's cumulative time went.
    json.push_str("  \"op_attribution_us\": {\n");
    let mut attribution_violations = 0u64;
    for (i, name) in webgraph_repr::serve::OP_NAMES.iter().enumerate() {
        let total_ns = tel.op_total_ns(i);
        let mut stage_sum_ns = 0u64;
        json.push_str(&format!(
            "    \"{name}\": {{\"count\": {}, \"total\": {}",
            tel.op_count(i),
            total_ns / 1_000
        ));
        for st in obs::Stage::ALL.iter() {
            let ns = tel.op_stage_ns(i, *st);
            stage_sum_ns += ns;
            json.push_str(&format!(", \"{}\": {}", st.name(), ns / 1_000));
        }
        let sep = if i + 1 < webgraph_repr::serve::NUM_OPS {
            ","
        } else {
            ""
        };
        json.push_str(&format!("}}{sep}\n"));
        // Cross-check: stages are disjoint slices of the total, so their
        // sum must stay within tolerance of the end-to-end time (10%
        // plus 200 µs of timer noise per request).
        let tolerance = total_ns / 10 + tel.op_count(i) * 200_000;
        if telemetry_on && stage_sum_ns > total_ns + tolerance {
            attribution_violations += 1;
            eprintln!(
                "stage-sum violation for {name}: stages {stage_sum_ns} ns > \
                 total {total_ns} ns + tolerance {tolerance} ns"
            );
        }
    }
    json.push_str("  },\n");
    // Shard heatmap: per-shard hit/miss split and lock contention of both
    // graph caches (FNV-1a routing skew is visible here).
    json.push_str("  \"shard_heatmap\": {\n");
    for (gi, (gname, rep)) in [("fwd", &ctx.fwd), ("back", &ctx.back)].iter().enumerate() {
        let shards = rep.shard_telemetry().unwrap_or_default();
        json.push_str(&format!("    \"{gname}\": [\n"));
        for (si, sh) in shards.iter().enumerate() {
            let sep = if si + 1 < shards.len() { "," } else { "" };
            json.push_str(&format!(
                "      {{\"shard\": {}, \"hits\": {}, \"misses\": {}, \"entries\": {}, \
                 \"acquisitions\": {}, \"contended\": {}, \"wait_us\": {}, \"hold_us\": {}}}{sep}\n",
                sh.shard,
                sh.hits,
                sh.misses,
                sh.entries,
                sh.lock.acquisitions,
                sh.lock.contended,
                sh.lock.wait_ns / 1_000,
                sh.lock.hold_ns / 1_000,
            ));
        }
        json.push_str(&format!("    ]{}\n", if gi == 0 { "," } else { "" }));
    }
    json.push_str("  },\n");
    json.push_str("  \"fingerprints\": {\n");
    for (i, fp) in reference.iter().enumerate() {
        let sep = if i + 1 < reference.len() { "," } else { "" };
        json.push_str(&format!("    \"q{}\": {fp}{sep}\n", i + 1));
    }
    json.push_str("  }\n}\n");
    std::fs::write(out, &json).expect("write serve bench json");
    println!("wrote {}", out.display());
    eprintln!(
        "serve bench: {clients} clients × {} req = {total} in {wall_secs:.3}s \
         ({throughput:.0} req/s), p50 {:.3} ms, p99 {:.3} ms",
        ROUNDS * 6 + NAVS,
        pct(0.50),
        pct(0.99),
    );
    if errors > 0 || mismatches > 0 {
        eprintln!(
            "FAILED: {errors} request error(s), {mismatches} fingerprint mismatch(es) \
             under concurrency"
        );
        return 1;
    }
    if telemetry_on && (attribution_violations > 0 || tel.stage_overruns() > 0) {
        eprintln!(
            "FAILED: stage attribution broken — {attribution_violations} op-level violation(s), \
             {} per-request overrun(s)",
            tel.stage_overruns()
        );
        return 1;
    }
    if degraded > 0 {
        return 3;
    }
    0
}

/// `wgr serve DIR` — builds (or, with `--reps`/`--reuse`, reopens) the
/// query representations for the corpus at `DIR` and serves the observed
/// Q1–6 workload plus raw `out_neighbors` navigation over TCP (frame
/// format: `wg_serve::proto`). One decoded representation is shared by all
/// workers. `--smoke N` runs an in-process N-client burst against the live
/// server and exits by the wg-fault contract: 0 clean, 3 degraded answers,
/// 2 errors.
fn cmd_serve(args: &[String]) -> i32 {
    let Some(corpus_dir) = positional(args).or_else(|| opt(args, "--corpus")) else {
        eprintln!(
            "usage: wgr serve DIR [--port P] [--workers N] [--queue N] [--scheme NAME]\n\
             \x20                [--budget BYTES] [--reps DIR] [--reuse] [--smoke N]\n\
             \x20                [--slowlog-us N] [--no-telemetry] [--metrics[=json]] [--trace FILE]"
        );
        return 2;
    };
    // `--metrics` must be up before representations are opened (counters
    // register at construction); `--trace` arms the ring the serve spans
    // and cache-load events feed.
    let flags = ObsFlags::parse(args);
    let budget: usize =
        opt(args, "--budget").map_or(1 << 20, |s| s.parse().expect("--budget bytes"));
    let port: u16 = opt(args, "--port").map_or(0, |s| s.parse().expect("--port number"));
    let scheme = match opt(args, "--scheme").as_deref() {
        None => Scheme::SNode,
        Some(name) => match Scheme::ALL.iter().copied().find(|s| s.name() == name) {
            Some(s) => s,
            None => {
                eprintln!(
                    "unknown scheme {name}; expected {}",
                    Scheme::ALL.map(|s| s.name()).join(", ")
                );
                return 2;
            }
        },
    };
    let corpus = match read_corpus(&PathBuf::from(&corpus_dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read corpus at {corpus_dir}: {e}");
            return 2;
        }
    };
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let reuse = args.iter().any(|a| a == "--reuse");
    let (root, scratch) = match opt(args, "--reps") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("wgr_serve_{}", std::process::id())),
            true,
        ),
    };
    let set = if reuse {
        if scratch {
            eprintln!("--reuse requires --reps DIR (a previously built representation root)");
            return 2;
        }
        match SchemeSet::open_existing(&root, &corpus.graph, budget) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open representations at {}: {e}", root.display());
                return 2;
            }
        }
    } else {
        match SchemeSet::build(
            &root,
            &urls,
            &domains,
            &corpus.graph,
            &SNodeConfig::default(),
            budget,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot build representations under {}: {e}", root.display());
                return 2;
            }
        }
    };
    let (ctx, reference) = match build_serve_context(&corpus, &set, scheme) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot start service: {e}");
            if scratch {
                std::fs::remove_dir_all(&root).ok();
            }
            return 2;
        }
    };
    let cfg = ServeConfig {
        workers: opt(args, "--workers").map_or_else(
            || std::thread::available_parallelism().map_or(4, |n| n.get().max(2)),
            |s| s.parse().expect("--workers number"),
        ),
        queue_cap: opt(args, "--queue").map_or(256, |s| s.parse().expect("--queue number")),
        port,
        slowlog_us: opt(args, "--slowlog-us")
            .map_or(0, |s| s.parse().expect("--slowlog-us microseconds")),
        telemetry: !args.iter().any(|a| a == "--no-telemetry"),
    };
    let server = match Server::start(Arc::clone(&ctx), &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            if scratch {
                std::fs::remove_dir_all(&root).ok();
            }
            return 2;
        }
    };
    println!(
        "serving {} on 127.0.0.1:{} ({} workers, queue {})",
        scheme.name(),
        server.port(),
        cfg.workers,
        cfg.queue_cap
    );

    if let Some(n) = opt(args, "--smoke") {
        let n: usize = n.parse().expect("--smoke number");
        let code = serve_smoke(server.port(), n, &reference, ctx.num_pages);
        let stats = server.shutdown();
        eprintln!(
            "smoke: {} connection(s), {} request(s), {} degraded, {} error(s), {} refused",
            stats.connections.load(std::sync::atomic::Ordering::Relaxed),
            stats.requests.load(std::sync::atomic::Ordering::Relaxed),
            stats.degraded.load(std::sync::atomic::Ordering::Relaxed),
            stats.errors.load(std::sync::atomic::Ordering::Relaxed),
            stats.overloaded.load(std::sync::atomic::Ordering::Relaxed),
        );
        if scratch {
            std::fs::remove_dir_all(&root).ok();
        }
        flags.print_metrics();
        let trace_code = flags.write_trace();
        return if code != 0 { code } else { trace_code };
    }
    // Serve until the process is killed. (With a scratch representation
    // the temp directory lives as long as the server does. `--trace` only
    // produces a file on `--smoke` exit — a parked server never returns.)
    loop {
        std::thread::park();
    }
}

/// In-process client burst for `wgr serve --smoke N`: every client pings,
/// runs Q1–6 twice checking fingerprints against the single-threaded
/// reference, and walks a few adjacency lists. Returns the worst exit
/// code seen: 0 clean, 3 degraded answers, 2 errors or drifted answers.
fn serve_smoke(port: u16, clients: usize, reference: &[u64; 6], num_pages: u32) -> i32 {
    let mut mismatches = 0u64;
    let mut degraded = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let (mut mm, mut dg, mut er) = (0u64, 0u64, 0u64);
                    let Ok(mut cl) = Client::connect(port) else {
                        return (mm, dg, 1u64);
                    };
                    match cl.ping() {
                        Ok(ServeStatus::Ok) => {}
                        Ok(ServeStatus::Degraded) => dg += 1,
                        _ => er += 1,
                    }
                    for _ in 0..2 {
                        for n in 1..=6u8 {
                            match cl.query(n) {
                                Ok(reply) => {
                                    mm += u64::from(
                                        reply.fingerprint != reference[usize::from(n) - 1],
                                    );
                                    dg += u64::from(reply.status == ServeStatus::Degraded);
                                }
                                Err(_) => er += 1,
                            }
                        }
                    }
                    for k in 0..4usize {
                        let p = ((c * 7919 + k * 104_729) % num_pages as usize) as u32;
                        match cl.out_neighbors(p) {
                            Ok((ServeStatus::Degraded, _)) => dg += 1,
                            Ok(_) => {}
                            Err(_) => er += 1,
                        }
                    }
                    (mm, dg, er)
                })
            })
            .collect();
        for h in handles {
            let (mm, dg, er) = h.join().expect("smoke client thread");
            mismatches += mm;
            degraded += dg;
            errors += er;
        }
    });
    if errors > 0 || mismatches > 0 {
        eprintln!("smoke FAILED: {errors} error(s), {mismatches} fingerprint mismatch(es)");
        2
    } else if degraded > 0 {
        eprintln!("smoke: degraded answers (quarantined supernodes)");
        3
    } else {
        println!("smoke ok: {clients} concurrent clients, byte-identical answers");
        0
    }
}

/// FNV-1a over (file name, file bytes) of every file in `dir`, in sorted
/// name order — enough to witness byte-identical builds. The `sums.bin`
/// integrity manifest is excluded: fingerprints witness the paper's
/// payload bytes, and checksum overhead is reported separately
/// (`BuildStats::checksum_bytes`).
fn fingerprint_dir(dir: &std::path::Path) -> u64 {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read bench dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.file_name().is_none_or(|n| n != "sums.bin"))
        .collect();
    names.sort();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    };
    for p in names {
        eat(p.file_name().expect("file name").as_encoded_bytes());
        eat(&webgraph_repr::fault::read_file(&p).expect("read bench file"));
    }
    h
}

/// Extracts `"key":<digits>` from a snapshot line (0 when absent — a
/// server running with telemetry off reports zeros, not errors).
fn snap_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    line.find(&pat)
        .map(|i| {
            line[i + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|d| d.parse().ok())
        .unwrap_or(0)
}

/// Extracts `"key":"value"` from a snapshot line.
fn snap_str<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    line.find(&pat)
        .and_then(|i| {
            let rest = &line[i + pat.len()..];
            rest.find('"').map(|j| &rest[..j])
        })
        .unwrap_or("")
}

/// `wgr top --port P`: fetches the live telemetry snapshot over the Stats
/// wire op and renders it; loops under `--watch`.
fn top_live(port: u16, watch: Option<u64>, json: bool) -> i32 {
    loop {
        let snap = match Client::connect(port).and_then(|mut cl| cl.stats()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot fetch stats from 127.0.0.1:{port}: {e}");
                return 2;
            }
        };
        if json {
            println!("{snap}");
        } else {
            render_top(&snap, port);
        }
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
            None => return 0,
        }
    }
}

/// Renders one Stats snapshot as terminal tables by scanning the
/// line-oriented JSON (one line per op, stage, and shard).
fn render_top(snap: &str, port: u16) {
    for line in snap.lines() {
        if line.starts_with("\"server\":") {
            println!(
                "wg-serve 127.0.0.1:{port} — {} requests over {} connections \
                 ({} degraded, {} errors, {} refused)",
                snap_u64(line, "requests"),
                snap_u64(line, "connections"),
                snap_u64(line, "degraded"),
                snap_u64(line, "errors"),
                snap_u64(line, "overloaded"),
            );
        } else if line.starts_with("\"telemetry\":") {
            println!(
                "telemetry: {} recorded, {} stage overrun(s), slowlog {} \
                 (live window: last {}×{} requests)\n",
                snap_u64(line, "requests"),
                snap_u64(line, "stage_overruns"),
                snap_u64(line, "slowlog_len"),
                snap_u64(line, "windows"),
                snap_u64(line, "window_every"),
            );
            println!(
                "{:<6} {:>8} {:>7} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9} {:>9} {:>9}",
                "op",
                "count",
                "live",
                "p50us",
                "p90us",
                "p99us",
                "queue",
                "lock",
                "lookup",
                "decode",
                "write"
            );
        } else if line.contains("\"op\":\"") {
            println!(
                "{:<6} {:>8} {:>7} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9} {:>9} {:>9}",
                snap_str(line, "op"),
                snap_u64(line, "count"),
                snap_u64(line, "live_count"),
                snap_u64(line, "p50_us"),
                snap_u64(line, "p90_us"),
                snap_u64(line, "p99_us"),
                snap_u64(line, "queue_wait"),
                snap_u64(line, "shard_lock"),
                snap_u64(line, "cache_lookup"),
                snap_u64(line, "list_decode"),
                snap_u64(line, "resp_write"),
            );
        } else if line.contains("\"stage\":\"") {
            if line.contains("queue_wait") {
                println!("\nstage latency (all ops, cumulative):");
            }
            println!(
                "  {:<12} n={:<8} p50 {:>7} µs   p99 {:>7} µs   mean {:>7} µs",
                snap_str(line, "stage"),
                snap_u64(line, "count"),
                snap_u64(line, "p50_us"),
                snap_u64(line, "p99_us"),
                snap_u64(line, "mean_us"),
            );
        } else if line.contains("\"graph\":\"") {
            if line.contains("\"shard\":0,") && line.contains("\"graph\":\"fwd\"") {
                println!("\nshard heatmap (hits/misses · lock acq/contended/wait µs):");
            }
            println!(
                "  {:<4} shard {}  {:>8}/{:<8} · {:>8}/{:<6}/{:>8}",
                snap_str(line, "graph"),
                snap_u64(line, "shard"),
                snap_u64(line, "hits"),
                snap_u64(line, "misses"),
                snap_u64(line, "acquisitions"),
                snap_u64(line, "contended"),
                snap_u64(line, "wait_us"),
            );
        } else if line.starts_with("\"locks\":") {
            println!(
                "\nmemo lock: {} acq, {} contended, wait {} µs, hold {} µs",
                snap_u64(line, "acquisitions"),
                snap_u64(line, "contended"),
                snap_u64(line, "wait_us"),
                snap_u64(line, "hold_us"),
            );
        }
    }
}

fn cmd_top(args: &[String]) -> i32 {
    // Live service mode: `wgr top --port P` polls a running wg-serve
    // instance over the Stats wire op and renders its telemetry snapshot
    // (`--watch SECS` refreshes until interrupted; `--json` prints the
    // raw snapshot). Without `--port`, classic PageRank top-k below.
    if let Some(port) = opt(args, "--port") {
        let port: u16 = port.parse().expect("--port number");
        let watch: Option<u64> = opt(args, "--watch").map(|s| s.parse().expect("--watch seconds"));
        let json = args.iter().any(|a| a == "--json");
        return top_live(port, watch, json);
    }
    let repo = PathBuf::from(req(args, "--repo"));
    let corpus_dir = PathBuf::from(req(args, "--corpus"));
    let k: usize = opt(args, "-k").map_or(10, |s| s.parse().expect("-k number"));
    let corpus = read_corpus(&corpus_dir).expect("read corpus");
    let renum = Renumbering::read(&repo).expect("pagemap");
    let pr = pagerank(&corpus.graph, &PageRankConfig::default());
    println!("top {k} pages by PageRank:");
    for &old in top_ranked(&pr.ranks, k).iter() {
        println!(
            "  {:.6}  (id {})  {}",
            pr.ranks[old as usize], renum.new_of_old[old as usize], corpus.pages[old as usize].url
        );
    }
    0
}
