//! `wgr` — command-line front end for the webgraph-repr workspace.
//!
//! ```text
//! wgr gen   --pages 50000 --seed 7 --out corpus/         generate a corpus
//! wgr build --corpus corpus/ --out repo/                 build the S-Node repo
//! wgr stats --repo repo/                                 representation statistics
//! wgr links --repo repo/ --page 1234                     adjacency of a page
//! wgr domain --repo repo/ --name stanford.edu            pages of a domain
//! wgr top   --corpus corpus/ --repo repo/ -k 10          top pages by PageRank
//! ```
//!
//! The corpus directory stores the generated repository in a simple text
//! format (`urls.txt`, `domains.txt`, `edges.txt`) so external tooling can
//! produce inputs too: any repository expressible as those three files can
//! be built into an S-Node representation.

use std::io::Write;
use std::path::PathBuf;
use webgraph_repr::corpus::textio::{read_corpus, write_corpus};
use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::graph::pagerank::{pagerank, top_ranked, PageRankConfig};
use webgraph_repr::snode::{build_snode, Renumbering, RepoInput, SNode, SNodeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("gen") => cmd_gen(&args[2..]),
        Some("build") => cmd_build(&args[2..]),
        Some("stats") => cmd_stats(&args[2..]),
        Some("links") => cmd_links(&args[2..]),
        Some("domain") => cmd_domain(&args[2..]),
        Some("top") => cmd_top(&args[2..]),
        Some("verify") => cmd_verify(&args[2..]),
        Some("check") => cmd_check(&args[2..]),
        _ => {
            eprintln!(
                "usage: wgr <gen|build|stats|links|domain|top|verify|check> [options]\n\
                 \n\
                 gen    --pages N [--seed N] --out DIR      generate a synthetic corpus\n\
                 build  --corpus DIR --out DIR              build the S-Node representation\n\
                 stats  --repo DIR                          show representation statistics\n\
                 links  --repo DIR --page N                 print a page's adjacency list\n\
                 domain --repo DIR --corpus DIR --name D    list a domain's pages\n\
                 top    --repo DIR --corpus DIR [-k N]      top pages by PageRank\n\
                 verify --repo DIR                          integrity check (ok/failed)\n\
                 check  DIR [--json] [--deny warn]          full static analysis;\n\
                 \x20                                          exit 0 clean, 1 denied warnings, 2 corrupt"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Pulls `--flag value` out of an argument slice.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn req(args: &[String], flag: &str) -> String {
    opt(args, flag).unwrap_or_else(|| {
        eprintln!("missing required option {flag}");
        std::process::exit(2);
    })
}

fn cmd_gen(args: &[String]) -> i32 {
    let pages: u32 = req(args, "--pages").parse().expect("--pages number");
    let seed: u64 = opt(args, "--seed").map_or(42, |s| s.parse().expect("--seed number"));
    let out = PathBuf::from(req(args, "--out"));
    std::fs::create_dir_all(&out).expect("create output dir");

    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    write_corpus(&out, &corpus).expect("write corpus");
    println!(
        "wrote {} pages, {} links, {} domains to {}",
        corpus.num_pages(),
        corpus.graph.num_edges(),
        corpus.domains.len(),
        out.display()
    );
    0
}

fn cmd_build(args: &[String]) -> i32 {
    let corpus_dir = PathBuf::from(req(args, "--corpus"));
    let out = PathBuf::from(req(args, "--out"));
    let corpus = read_corpus(&corpus_dir).expect("read corpus");
    let urls: Vec<String> = corpus.pages.iter().map(|p| p.url.clone()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let t0 = std::time::Instant::now();
    let (stats, _renum) = build_snode(input, &SNodeConfig::default(), &out).expect("build");
    println!(
        "built in {:?}: {} supernodes, {} superedges, {:.2} bits/edge → {}",
        t0.elapsed(),
        stats.num_supernodes,
        stats.num_superedges,
        stats.bits_per_edge(),
        out.display()
    );
    0
}

fn cmd_stats(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let snode = SNode::open(&repo, 1 << 20).expect("open repo");
    let meta = snode.meta();
    println!("pages        : {}", snode.num_pages());
    println!("supernodes   : {}", snode.num_supernodes());
    println!("superedges   : {}", meta.supergraph.num_superedges());
    println!(
        "supernode graph: {} bytes encoded (+pointers {})",
        meta.supergraph_bits.div_ceil(8),
        meta.supergraph.encoded_bytes_with_pointers()
    );
    let mut sizes: Vec<u32> = (0..snode.num_supernodes())
        .map(|s| meta.supernode_size(s))
        .collect();
    sizes.sort_unstable();
    println!(
        "element sizes: min {} / median {} / max {}",
        sizes.first().unwrap_or(&0),
        sizes.get(sizes.len() / 2).unwrap_or(&0),
        sizes.last().unwrap_or(&0)
    );
    println!("domains      : {}", meta.domain_supernodes.len());
    0
}

fn cmd_links(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let page: u32 = req(args, "--page").parse().expect("--page number");
    let mut snode = SNode::open(&repo, 1 << 20).expect("open repo");
    if page >= snode.num_pages() {
        eprintln!("page {page} out of range (repo has {})", snode.num_pages());
        return 1;
    }
    let links = snode.out_neighbors(page).expect("navigate");
    println!(
        "page {page} (supernode {}) links to {} pages:",
        snode.supernode_of(page),
        links.len()
    );
    for t in links {
        println!("  {t}");
    }
    0
}

fn cmd_domain(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let corpus_dir = PathBuf::from(req(args, "--corpus"));
    let name = req(args, "--name");
    let corpus = read_corpus(&corpus_dir).expect("read corpus");
    let Some(d) = corpus.domain_by_name(&name) else {
        eprintln!("unknown domain {name}");
        return 1;
    };
    let snode = SNode::open(&repo, 1 << 20).expect("open repo");
    let renum = Renumbering::read(&repo).expect("pagemap");
    let pages = snode.pages_in_domain(d);
    println!(
        "{name}: {} pages in supernodes {:?}",
        pages.len(),
        snode.supernodes_of_domain(d)
    );
    for &p in pages.iter().take(20) {
        println!(
            "  {p}  {}",
            corpus.pages[renum.old_of_new[p as usize] as usize].url
        );
    }
    if pages.len() > 20 {
        println!("  … and {} more", pages.len() - 20);
    }
    0
}

/// Thin wrapper over the `wg-analyze` analyzer keeping the historical
/// pass/fail interface: errors fail, warnings are reported but tolerated.
fn cmd_verify(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    match webgraph_repr::analyze::check(&repo) {
        Ok(report) => {
            for d in report
                .diagnostics
                .iter()
                .filter(|d| d.severity == webgraph_repr::analyze::Severity::Warning)
            {
                eprintln!("{d}");
            }
            if report.num_errors() > 0 {
                for d in report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == webgraph_repr::analyze::Severity::Error)
                {
                    eprintln!("{d}");
                }
                eprintln!("FAILED: {} error(s)", report.num_errors());
                return 1;
            }
            let s = &report.summary;
            println!(
                "OK: {} pages, {} supernodes, {} superedges, {} edges ({} intra + {} cross)",
                s.num_pages,
                s.num_supernodes,
                s.num_superedges,
                s.intranode_edges + s.superedge_edges,
                s.intranode_edges,
                s.superedge_edges
            );
            0
        }
        Err(e) => {
            eprintln!("FAILED: {e}");
            1
        }
    }
}

/// `wgr check DIR [--json] [--deny warn]` — the full multi-pass analyzer.
/// Exit 0 when clean (or only tolerated warnings), 1 when warnings exist
/// and `--deny warn` was given, 2 when the representation has errors.
fn cmd_check(args: &[String]) -> i32 {
    let mut dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny" | "--repo" => i += 2,
            a if !a.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(a));
                i += 1;
            }
            _ => i += 1,
        }
    }
    let dir = dir.or_else(|| opt(args, "--repo").map(PathBuf::from));
    let Some(dir) = dir else {
        eprintln!("usage: wgr check DIR [--json] [--deny warn]");
        return 2;
    };
    let json = args.iter().any(|a| a == "--json");
    let deny_warn = opt(args, "--deny").is_some_and(|v| v == "warn" || v == "warnings");
    match webgraph_repr::analyze::check(&dir) {
        Ok(report) => {
            // A report can run to thousands of lines and is routinely piped
            // into `head`/`less`; a closed pipe must not abort the exit code.
            let rendered = if json {
                report.to_json()
            } else {
                report.to_string()
            };
            let mut out = std::io::stdout().lock();
            let _ = writeln!(out, "{rendered}");
            let _ = out.flush();
            if report.num_errors() > 0 {
                2
            } else if deny_warn && report.num_warnings() > 0 {
                1
            } else {
                0
            }
        }
        Err(e) => {
            if json {
                println!(
                    "{{\"fatal\":\"{}\"}}",
                    e.to_string().replace('\\', "\\\\").replace('"', "\\\"")
                );
            } else {
                eprintln!("fatal: {e}");
            }
            2
        }
    }
}

fn cmd_top(args: &[String]) -> i32 {
    let repo = PathBuf::from(req(args, "--repo"));
    let corpus_dir = PathBuf::from(req(args, "--corpus"));
    let k: usize = opt(args, "-k").map_or(10, |s| s.parse().expect("-k number"));
    let corpus = read_corpus(&corpus_dir).expect("read corpus");
    let renum = Renumbering::read(&repo).expect("pagemap");
    let pr = pagerank(&corpus.graph, &PageRankConfig::default());
    println!("top {k} pages by PageRank:");
    for &old in top_ranked(&pr.ranks, k).iter() {
        println!(
            "  {:.6}  (id {})  {}",
            pr.ranks[old as usize], renum.new_of_old[old as usize], corpus.pages[old as usize].url
        );
    }
    0
}
