//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the subset of the proptest 1.x API its property tests use:
//! the `proptest!` macro (with `#![proptest_config]`), `Strategy` with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! `any::<T>()`, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from upstream in one deliberate way: failing inputs are
//! **not shrunk**. Each case is generated from a deterministic per-test
//! seed, so failures reproduce exactly on re-run; the failure message
//! reports the case number.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// splitmix64 stream seeded from the test's module path and case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic seed: same test + same case index → same inputs.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Config and case errors
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case (and test) fails.
    Fail(String),
    /// The input was rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(width + 1) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Always yields a clone of the given value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize);

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Number-of-elements bound for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let width = (self.max_inclusive - self.min) as u64;
        self.min + rng.below(width + 1) as usize
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the yield; bound the attempts so tight
            // element domains still terminate.
            let mut attempts = 0usize;
            while set.len() < n && attempts < n.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{:?} != {:?} (`{}` vs `{}`)",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{:?} == {:?} (`{}` vs `{}`)",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                #[allow(unreachable_code)]
                let result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..=5, z in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((1..4).contains(&z), "z was {}", z);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..10),
            s in prop::collection::btree_set(0u64..1_000_000, 1..50),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(!s.is_empty() && s.len() < 50);
        }

        #[test]
        fn flat_map_composes(pair in (1u32..50).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, below) = pair;
            prop_assert!(below < n);
        }

        #[test]
        fn assume_skips_cases(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
