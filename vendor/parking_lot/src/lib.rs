//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the `parking_lot` API surface the
//! workspace uses: an infallible `lock()` that returns the guard directly.
//! Poisoning is deliberately ignored — `parking_lot` has no poisoning, so
//! matching its semantics means recovering the inner guard on poison.
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => MutexGuard { guard },
            Err(poisoned) => MutexGuard {
                guard: poisoned.into_inner(),
            },
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
