//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the `parking_lot` API surface the
//! workspace uses: an infallible `lock()` that returns the guard directly.
//! Poisoning is deliberately ignored — `parking_lot` has no poisoning, so
//! matching its semantics means recovering the inner guard on poison.
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => MutexGuard { guard },
            Err(poisoned) => MutexGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    /// Non-blocking acquire: `None` when the lock is held elsewhere.
    /// Mirrors `parking_lot::Mutex::try_lock` (modulo the `Option` vs
    /// their `Option`-like return, which is the same shape).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => RwLockReadGuard { guard },
            Err(poisoned) => RwLockReadGuard {
                guard: poisoned.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => RwLockWriteGuard { guard },
            Err(poisoned) => RwLockWriteGuard {
                guard: poisoned.into_inner(),
            },
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_detects_a_holder() {
        let m = Mutex::new(1u32);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(*m.try_lock().expect("free lock"), 1);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(1u32);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }
}
