//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the *tiny* subset of the `rand 0.8` API it actually
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_bool`, and `gen_range` over integer ranges and the
//! `f64`/`bool` standard distributions.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — a different stream
//! than upstream `SmallRng`, but the workspace only relies on seeded
//! determinism and statistical quality, never on a specific sequence.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point; only the `seed_from_u64` constructor is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize);

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
range_impls!(u8, u16, u32, u64, usize);

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for synthetic corpora.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
