//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion 0.5 API for the `wg-bench`
//! benches to compile and produce useful wall-clock numbers offline: no
//! statistics engine, no plotting, no CLI — a calibrated mean over a fixed
//! measurement window, printed one line per benchmark.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(100);
const MEASURE: Duration = Duration::from_millis(400);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        let label = format!("{}/{}", id.function, id.parameter);
        b.report(&self.name, &label, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up, then size the batch so the measurement window holds
        // enough iterations for a stable mean.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64;
        let target = ((MEASURE.as_nanos() as f64 / per_iter) as u64).max(10);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / target as f64;
    }

    fn report(&self, group: &str, label: &str, throughput: Option<Throughput>) {
        let mut line = format!("{group}/{label:<28} {:>12.1} ns/iter", self.mean_ns);
        if self.mean_ns > 0.0 {
            match throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 / (self.mean_ns * 1e-9);
                    line.push_str(&format!("  {:>10.2} Melem/s", per_sec / 1e6));
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 / (self.mean_ns * 1e-9);
                    line.push_str(&format!("  {:>10.2} MiB/s", per_sec / (1024.0 * 1024.0)));
                }
                None => {}
            }
        }
        println!("{line}");
    }
}

/// Mirrors `criterion_group!`: defines a function that runs every target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
