//! The parallel encode pipeline must be invisible in the output: for any
//! thread count, `build_snode` writes byte-identical files and reports
//! identical statistics. These tests pin that contract on a realistic
//! corpus, on arbitrary proptest-generated repositories, and through the
//! `wgr check` analyzer.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::path::Path;
use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::graph::Graph;
use webgraph_repr::snode::{build_snode, BuildStats, RepoInput, SNodeConfig, StageTimings};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_par_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Every file in `a` must exist in `b` with identical bytes, and vice
/// versa — the strongest form of "the representation is the same".
fn assert_dirs_byte_identical(a: &Path, b: &Path) {
    let list = |d: &Path| {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    };
    let names = list(a);
    assert_eq!(names, list(b), "file sets differ");
    for n in names {
        let bytes_a = std::fs::read(a.join(&n)).unwrap();
        let bytes_b = std::fs::read(b.join(&n)).unwrap();
        assert_eq!(bytes_a, bytes_b, "file {n} differs");
    }
}

/// `BuildStats` minus the wall-clock timings, which are measurements and
/// legitimately differ run to run.
fn deterministic_stats(stats: &BuildStats) -> String {
    let mut s = stats.clone();
    s.timings = StageTimings::default();
    format!("{s:?}")
}

fn build_with_threads(
    name: &str,
    urls: &[&str],
    domains: &[u32],
    graph: &Graph,
    threads: u32,
) -> (std::path::PathBuf, BuildStats) {
    let dir = temp_dir(name);
    let input = RepoInput {
        urls,
        domains,
        graph,
    };
    let config = SNodeConfig {
        threads,
        ..SNodeConfig::default()
    };
    let (stats, _renum) = build_snode(input, &config, &dir).unwrap();
    (dir, stats)
}

#[test]
fn parallel_build_matches_serial() {
    let corpus = Corpus::generate(CorpusConfig::scaled(2_500, 11));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();

    let (dir_serial, stats_serial) =
        build_with_threads("serial", &urls, &domains, &corpus.graph, 1);
    for threads in [2u32, 4, 8] {
        let (dir_par, stats_par) = build_with_threads(
            &format!("par{threads}"),
            &urls,
            &domains,
            &corpus.graph,
            threads,
        );
        assert_dirs_byte_identical(&dir_serial, &dir_par);
        assert_eq!(
            deterministic_stats(&stats_serial),
            deterministic_stats(&stats_par),
            "stats differ at {threads} threads"
        );
        assert_eq!(stats_par.timings.threads, threads);
        std::fs::remove_dir_all(&dir_par).ok();
    }

    // The parallel-built representation (identical to the serial one, as
    // just proven) must satisfy the full static analyzer.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_wgr"))
        .arg("check")
        .arg(&dir_serial)
        .output()
        .expect("run wgr check");
    assert!(
        out.status.success(),
        "wgr check failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir_serial).ok();
}

#[test]
fn auto_thread_resolution_is_still_deterministic() {
    // threads = 0 resolves to the machine's parallelism — whatever that
    // is, the output must match an explicit single-threaded build.
    let corpus = Corpus::generate(CorpusConfig::scaled(800, 23));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let (dir_serial, _) = build_with_threads("auto_ref", &urls, &domains, &corpus.graph, 1);
    let (dir_auto, stats) = build_with_threads("auto", &urls, &domains, &corpus.graph, 0);
    assert!(stats.timings.threads >= 1, "auto must resolve to >= 1");
    assert_dirs_byte_identical(&dir_serial, &dir_auto);
    std::fs::remove_dir_all(&dir_serial).ok();
    std::fs::remove_dir_all(&dir_auto).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary small repositories: serial and 3-thread builds write the
    /// same bytes, whatever the partition refinement decides to do.
    #[test]
    fn arbitrary_repositories_build_identically(
        n in 2u32..50,
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..300),
        seed in any::<u64>(),
    ) {
        let urls: Vec<String> = (0..n)
            .map(|i| format!("http://h{}.dom{}.org/d{}/p{:03}.html", i % 4, i % 3, i % 5, i))
            .collect();
        let domains: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, t)| (s % n, t % n))
            .collect();
        let graph = Graph::from_edges(n, edges);
        let name_a = format!("prop_s_{seed}");
        let name_b = format!("prop_p_{seed}");
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let (dir_a, stats_a) = build_with_threads(&name_a, &url_refs, &domains, &graph, 1);
        let (dir_b, stats_b) = build_with_threads(&name_b, &url_refs, &domains, &graph, 3);
        assert_dirs_byte_identical(&dir_a, &dir_b);
        assert_eq!(deterministic_stats(&stats_a), deterministic_stats(&stats_b));
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
