//! Integration tests pinning the *shape* of the paper's compression results
//! (Table 1 direction): the compressed schemes beat plain Huffman by a wide
//! margin, reference encoding pays for itself, and S-Node reconstructs both
//! WG and WGᵀ exactly.

use webgraph_repr::baselines::{HuffmanGraph, Link3Graph};
use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::graph::Graph;
use webgraph_repr::snode::{build_snode, RepoInput, SNodeConfig, SNodeInMemory};

fn build(pages: u32, seed: u64, name: &str) -> (Corpus, Graph, f64, std::path::PathBuf) {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut dir = std::env::temp_dir();
    dir.push(format!("wg_shape_{name}_{}", std::process::id()));
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    let renumbered = Graph::from_edges(
        corpus.graph.num_nodes(),
        corpus
            .graph
            .edges()
            .map(|(u, v)| (renum.new_of_old[u as usize], renum.new_of_old[v as usize])),
    );
    (corpus, renumbered, stats.bits_per_edge(), dir)
}

#[test]
fn compressed_schemes_beat_plain_huffman_substantially() {
    let (_corpus, graph, snode_bpe, dir) = build(10_000, 42, "beats_huffman");
    let huffman = HuffmanGraph::build(&graph).bits_per_edge();
    let link3 = Link3Graph::build(&graph).bits_per_edge();
    assert!(
        snode_bpe < huffman * 0.75,
        "s-node ({snode_bpe:.2}) must clearly beat huffman ({huffman:.2})"
    );
    assert!(
        link3 < huffman * 0.75,
        "link3 ({link3:.2}) must clearly beat huffman ({huffman:.2})"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn huffman_bits_per_edge_lands_near_the_paper() {
    // The paper measured 15.2 b/e for in-degree Huffman on WebBase; the
    // synthetic corpus is calibrated to the same degree structure, so the
    // number should land in the same band (it is scale-robust).
    let (_c, graph, _s, dir) = build(10_000, 7, "huffband");
    let huffman = HuffmanGraph::build(&graph).bits_per_edge();
    assert!(
        (11.0..20.0).contains(&huffman),
        "huffman b/e {huffman:.2} far from the paper's 15.2"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn in_memory_snode_is_edge_exact_for_wg_and_wgt() {
    let (corpus, graph, _bpe, dir) = build(3_000, 13, "exact_both");
    let mem = SNodeInMemory::load(&dir).expect("load");
    for p in (0..graph.num_nodes()).step_by(29) {
        assert_eq!(mem.out_neighbors(p).expect("decode"), graph.neighbors(p));
    }
    std::fs::remove_dir_all(&dir).ok();

    // Transpose round-trip through its own build.
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let transpose = corpus.graph.transpose();
    let mut dir_t = std::env::temp_dir();
    dir_t.push(format!("wg_shape_exact_t_{}", std::process::id()));
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &transpose,
    };
    let (_stats, renum_t) = build_snode(input, &SNodeConfig::default(), &dir_t).expect("build t");
    let mem_t = SNodeInMemory::load(&dir_t).expect("load t");
    for old in (0..transpose.num_nodes()).step_by(31) {
        let new = renum_t.new_of_old[old as usize];
        let mut expect: Vec<u32> = transpose
            .neighbors(old)
            .iter()
            .map(|&t| renum_t.new_of_old[t as usize])
            .collect();
        expect.sort_unstable();
        assert_eq!(mem_t.out_neighbors(new).expect("decode"), expect);
    }
    std::fs::remove_dir_all(&dir_t).ok();
}

#[test]
fn supernode_graph_is_a_small_fraction_of_the_repository() {
    // Scalability requirement (§4.1): the supernode graph must be small
    // enough to stay memory-resident.
    let corpus = Corpus::generate(CorpusConfig::scaled(20_000, 55));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut dir = std::env::temp_dir();
    dir.push(format!("wg_shape_supersize_{}", std::process::id()));
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (stats, _) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    let total_bytes = stats.total_bits() / 8;
    assert!(
        stats.supernode_graph_bytes_with_pointers < total_bytes / 2,
        "supernode graph ({}) should be a fraction of the representation ({})",
        stats.supernode_graph_bytes_with_pointers,
        total_bytes
    );
    assert!(stats.num_supernodes < corpus.num_pages() / 4);
    std::fs::remove_dir_all(&dir).ok();
}
