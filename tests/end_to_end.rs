//! Workspace-level integration tests: the full pipeline from synthetic
//! corpus through every graph representation to query execution, exercised
//! through the umbrella crate's public API exactly as a downstream user
//! would.

use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::query::queries::{
    query1, query2, query3, query4, query5, query6, QueryEnv, QueryOutput, Workload,
};
use webgraph_repr::query::reps::{Scheme, SchemeSet};
use webgraph_repr::query::{DomainTable, PageRankIndex, TextIndex};
use webgraph_repr::snode::SNodeConfig;

struct Pipeline {
    root: std::path::PathBuf,
    corpus: Corpus,
    set: SchemeSet,
    text: TextIndex,
    pagerank: PageRankIndex,
    domains: DomainTable,
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn pipeline(name: &str, pages: u32, seed: u64) -> Pipeline {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let doms: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut root = std::env::temp_dir();
    root.push(format!("wg_e2e_{name}_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &doms,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("scheme set builds");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domains = DomainTable::build(&corpus, &set.renumbering);
    Pipeline {
        root,
        corpus,
        set,
        text,
        pagerank,
        domains,
    }
}

fn run_workload(p: &Pipeline, scheme: Scheme) -> Vec<QueryOutput> {
    let workload = Workload::discover(&p.text, &p.domains);
    let env = QueryEnv {
        text: &p.text,
        pagerank: &p.pagerank,
        domains: &p.domains,
    };
    let mut fwd = p.set.open(scheme).expect("open");
    let mut back = p.set.open_transpose(scheme).expect("open transpose");
    vec![
        query1(env, fwd.as_mut(), &workload.q1).expect("q1"),
        query2(env, fwd.as_mut(), &workload.q2).expect("q2"),
        query3(env, fwd.as_mut(), back.as_mut(), &workload.q3).expect("q3"),
        query4(env, back.as_mut(), &workload.q4).expect("q4"),
        query5(env, fwd.as_mut(), &workload.q5).expect("q5"),
        query6(env, fwd.as_mut(), &workload.q6).expect("q6"),
    ]
}

#[test]
fn full_pipeline_schemes_agree_on_all_six_queries() {
    let p = pipeline("agree", 2_000, 99);
    let reference = run_workload(&p, Scheme::SNode);
    assert!(
        reference.iter().map(|o| o.rows.len()).sum::<usize>() > 0,
        "discovered workload must have non-trivial answers"
    );
    for scheme in [Scheme::Files, Scheme::Relational, Scheme::Link3] {
        let got = run_workload(&p, scheme);
        for (qi, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                a.rows,
                b.rows,
                "scheme {} disagrees with s-node on Q{}",
                scheme.name(),
                qi + 1
            );
        }
    }
}

#[test]
fn every_scheme_reconstructs_the_renumbered_graph() {
    let p = pipeline("recon", 1_200, 5);
    for scheme in Scheme::ALL {
        let fwd = p.set.open(scheme).expect("open");
        for page in (0..p.set.graph.num_nodes()).step_by(37) {
            assert_eq!(
                fwd.out_neighbors(page).expect("navigate"),
                p.set.graph.neighbors(page),
                "{} page {page}",
                scheme.name()
            );
        }
    }
}

#[test]
fn transpose_representations_agree_with_backlinks() {
    let p = pipeline("backlinks", 1_000, 17);
    for scheme in Scheme::ALL {
        let back = p.set.open_transpose(scheme).expect("open transpose");
        for page in (0..p.set.graph.num_nodes()).step_by(53) {
            assert_eq!(
                back.out_neighbors(page).expect("navigate"),
                p.set.transpose.neighbors(page),
                "{} transpose page {page}",
                scheme.name()
            );
        }
    }
}

#[test]
fn text_index_and_corpus_agree_through_renumbering() {
    let p = pipeline("text", 1_500, 33);
    for ph in (0..p.text.num_phrases()).step_by(11) {
        for &new in p.text.pages_with_phrase(ph) {
            let old = p.set.renumbering.old_of_new[new as usize];
            assert!(p.corpus.page_has_phrase(old, ph));
        }
    }
}

#[test]
fn navigation_is_timed_for_every_query() {
    let p = pipeline("timing", 1_000, 8);
    for out in run_workload(&p, Scheme::SNode) {
        assert!(out.nav.nav_calls > 0);
        assert!(out.nav.nav_time.as_nanos() > 0);
    }
}
