//! Fault injection end-to-end: seeded fault plans over a built S-Node
//! directory must never panic a decode path, `wgr fsck` must detect every
//! injected fault that actually changed bytes, degraded queries must
//! return accurate partial-answer reports, and the CLI must exit with
//! clean diagnostics (2 on unusable input, 3 on degraded answers).

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;
use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::fault::{FaultPlan, FaultSpec};
use webgraph_repr::snode::{build_snode, RepoInput, SNode, SNodeConfig, SNodeInMemory};

fn wgr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wgr"))
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_faultinj_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::remove_dir_all(to).ok();
    std::fs::create_dir_all(to).unwrap();
    for e in std::fs::read_dir(from).unwrap() {
        let e = e.unwrap();
        std::fs::copy(e.path(), to.join(e.file_name())).unwrap();
    }
}

/// One pristine representation shared by every proptest case (built once;
/// cases operate on throwaway copies).
fn pristine() -> &'static (PathBuf, u32) {
    static DIR: OnceLock<(PathBuf, u32)> = OnceLock::new();
    DIR.get_or_init(|| {
        let corpus = Corpus::generate(CorpusConfig::scaled(600, 77));
        let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
        let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
        let dir = temp_dir("pristine");
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &corpus.graph,
        };
        build_snode(input, &SNodeConfig::default(), &dir).expect("build");
        (dir, corpus.num_pages())
    })
}

/// True when any file of `dir` differs from its counterpart in `from`
/// (i.e. the fault plan actually changed bytes on disk).
fn differs(from: &Path, dir: &Path) -> bool {
    std::fs::read_dir(from).unwrap().any(|e| {
        let e = e.unwrap();
        std::fs::read(e.path()).unwrap() != std::fs::read(dir.join(e.file_name())).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A seeded fault plan — flips, truncations, torn writes, transient
    /// reads — never panics any decode path: strict opens error, degraded
    /// opens answer partially, fsck always returns a verdict. And fsck
    /// detects every plan that actually changed bytes.
    #[test]
    fn seeded_faults_never_panic_and_are_detected(seed in 0u64..10_000) {
        let (pristine_dir, num_pages) = pristine();
        let dir = temp_dir(&format!("case_{seed}"));
        copy_dir(pristine_dir, &dir);
        let spec = FaultSpec {
            flips: 1 + (seed % 3) as u32,
            truncations: ((seed >> 2) % 2) as u32,
            torn_writes: ((seed >> 3) % 2) as u32,
            transient_reads: ((seed >> 4) % 3) as u32,
        };
        let plan = FaultPlan::generate(&dir, seed, &spec).unwrap();
        plan.apply_to_dir(&dir).unwrap();
        plan.install_transients();

        // fsck: a plan that changed bytes must be detected; a directory
        // it left untouched must stay clean.
        let report = webgraph_repr::analyze::fsck(&dir);
        let damaged = differs(pristine_dir, &dir);
        prop_assert_eq!(
            report.num_errors() > 0,
            damaged,
            "fsck found {} error(s), damage={}: {}",
            report.num_errors(),
            damaged,
            report
        );

        // Strict open: error or clean walk — never a panic, and never a
        // clean verdict over damaged checksummed bytes.
        if let Ok(snode) = SNode::open(&dir, 1 << 20) {
            for p in (0..*num_pages).step_by(13) {
                let _ = snode.out_neighbors(p);
            }
        }
        // Degraded open: damaged graphs quarantine, the rest answers.
        if let Ok(snode) = SNode::open_degraded(&dir, 1 << 20) {
            for p in 0..*num_pages {
                let _ = snode.out_neighbors(p);
            }
            let d = snode.degraded();
            // Quarantines (checksum mismatch or short read in a blob)
            // only ever appear over actually damaged bytes.
            prop_assert!(
                damaged || (d.quarantined_supernodes == 0 && d.skipped_edges == 0),
                "clean directory produced quarantines: {d:?}"
            );
        }
        // Resident load: strict by design.
        let _ = SNodeInMemory::load(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Damaging exactly one graph blob quarantines its supernode, leaves
/// every other answer identical to the pristine truth, and the degraded
/// report counts exactly the skipped adjacency parts.
#[test]
fn degraded_answers_are_accurate() {
    let (pristine_dir, num_pages) = pristine();
    let dir = temp_dir("accuracy");
    copy_dir(pristine_dir, &dir);

    let truth = SNode::open(&dir, 1 << 20).unwrap();
    let expected: Vec<Vec<u32>> = (0..*num_pages)
        .map(|p| truth.out_neighbors(p).unwrap())
        .collect();
    drop(truth);

    // Find a seed whose single flip lands inside an index (blob) file.
    let plan = (0u64..)
        .map(|s| {
            FaultPlan::generate(
                &dir,
                s,
                &FaultSpec {
                    flips: 1,
                    ..FaultSpec::default()
                },
            )
            .unwrap()
        })
        .find(|p| {
            matches!(&p.faults[0],
                webgraph_repr::fault::Fault::BitFlip { file, .. } if file.starts_with("index_"))
        })
        .unwrap();
    plan.apply_to_dir(&dir).unwrap();

    let snode = SNode::open_degraded(&dir, 1 << 20).unwrap();
    let mut wrong_answers = 0u64;
    let mut shortened = 0u64;
    for p in 0..*num_pages {
        let got = snode.out_neighbors(p).unwrap();
        if got != expected[p as usize] {
            wrong_answers += 1;
            // Partial answers only omit, never invent: a subset in order.
            let mut it = expected[p as usize].iter();
            assert!(
                got.iter().all(|t| it.any(|e| e == t)),
                "page {p}: degraded answer invents edges"
            );
            shortened += 1;
        }
    }
    let d = snode.degraded();
    assert_eq!(d.quarantined_supernodes, 1, "one blob → one quarantine");
    assert!(d.skipped_edges > 0);
    assert!(
        wrong_answers > 0,
        "the damaged blob must affect some answer"
    );
    assert_eq!(wrong_answers, shortened);
    let (checks, failures) = snode.integrity_stats();
    assert!(checks > 0 && failures > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_and_query_exit_2_with_clean_diagnostics() {
    let root = temp_dir("exit2");
    // Missing directory entirely.
    let missing = root.join("nope");
    let out = wgr().arg("stats").arg(&missing).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "stats on missing dir: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot open S-Node directory") && err.contains("nope"),
        "stats diagnostic must name the directory: {err}"
    );
    assert!(!err.contains("panicked"), "no panic output: {err}");

    let out = wgr().arg("query").arg(&missing).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "query on missing corpus: {out:?}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot read corpus") && err.contains("nope"),
        "query diagnostic must name the corpus: {err}"
    );

    // Half-written directory: meta.bin deleted after a successful build.
    let (pristine_dir, _) = pristine();
    let half = root.join("half");
    copy_dir(pristine_dir, &half);
    std::fs::remove_file(half.join("meta.bin")).unwrap();
    let out = wgr().arg("stats").arg(&half).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "stats on half-written: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("meta.bin"),
        "diagnostic must name the missing file: {err}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// `wgr corrupt` → `wgr fsck` (exit 1, SN1xx verdicts) → `wgr fsck
/// --repair --from corpus` (exit 0) → clean re-check, all through real
/// process invocations.
#[test]
fn cli_corrupt_fsck_repair_round_trip() {
    let root = temp_dir("fsckcli");
    let corpus = root.join("corpus");
    let repo = root.join("repo");
    let run = |args: &[&str]| {
        let mut cmd = wgr();
        for a in args {
            cmd.arg(
                a.replace("CORPUS", corpus.to_str().unwrap())
                    .replace("REPO", repo.to_str().unwrap()),
            );
        }
        cmd.output().unwrap()
    };
    assert!(
        run(&["gen", "--pages", "1500", "--seed", "9", "--out", "CORPUS"])
            .status
            .success()
    );
    assert!(run(&["build", "--corpus", "CORPUS", "--out", "REPO"])
        .status
        .success());

    let out = run(&["fsck", "REPO", "--json"]);
    assert_eq!(out.status.code(), Some(0), "clean fsck: {out:?}");
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("\"errors\":0"), "clean verdict: {body}");

    let out = run(&[
        "corrupt",
        "REPO",
        "--seed",
        "4",
        "--flips",
        "3",
        "--truncate",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(0), "corrupt: {out:?}");

    let out = run(&["fsck", "REPO", "--json"]);
    assert_eq!(out.status.code(), Some(1), "damaged fsck: {out:?}");
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("SN10"), "SN1xx verdicts expected: {body}");

    let out = run(&["fsck", "REPO", "--repair", "--from", "CORPUS"]);
    assert_eq!(out.status.code(), Some(0), "repair: {out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("repaired"));

    let out = run(&["fsck", "REPO"]);
    assert_eq!(out.status.code(), Some(0), "post-repair fsck: {out:?}");
    std::fs::remove_dir_all(&root).ok();
}

/// Extracts every `"key": N` occurrence from rendered JSON.
fn json_u64s(body: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(i) = body[pos..].find(&needle) {
        let rest = &body[pos + i + needle.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(v) = digits.parse() {
            out.push(v);
        }
        pos += i + needle.len();
    }
    out
}

/// A degraded query run exits 3 and its per-query quarantine/skip deltas
/// sum to the workload-level degraded report.
#[test]
fn degraded_query_exits_3_with_consistent_counts() {
    let root = temp_dir("degquery");
    let corpus = root.join("corpus");
    let reps = root.join("reps");
    let out = wgr()
        .args(["gen", "--pages", "1500", "--seed", "9", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen: {out:?}");
    let out = wgr()
        .arg("query")
        .arg(&corpus)
        .arg("--reps")
        .arg(&reps)
        .args(["--scheme", "s-node"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "clean query: {out:?}");

    // One bit flip inside a blob of the forward S-Node directory.
    let snode_dir = reps.join("snode");
    let plan = (0u64..)
        .map(|s| {
            FaultPlan::generate(
                &snode_dir,
                s,
                &FaultSpec {
                    flips: 1,
                    ..FaultSpec::default()
                },
            )
            .unwrap()
        })
        .find(|p| {
            matches!(&p.faults[0],
                webgraph_repr::fault::Fault::BitFlip { file, .. } if file.starts_with("index_"))
        })
        .unwrap();
    plan.apply_to_dir(&snode_dir).unwrap();

    let out = wgr()
        .arg("query")
        .arg(&corpus)
        .arg("--reps")
        .arg(&reps)
        .args(["--reuse", "--scheme", "s-node", "--metrics=json"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "degraded query exits 3: {out:?}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("degraded answers"), "summary on stderr: {err}");
    let body = String::from_utf8_lossy(&out.stdout);

    // Six per-query deltas followed by the workload-level report; the
    // report must equal the sum of the deltas (each quarantine and each
    // skip is counted exactly once, when it happens).
    for key in ["quarantined_supernodes", "skipped_edges"] {
        let vals = json_u64s(&body, key);
        assert_eq!(vals.len(), 7, "{key}: 6 queries + 1 summary: {body}");
        let total: u64 = vals[..6].iter().sum();
        assert_eq!(total, vals[6], "{key}: deltas must sum to the report");
        assert!(total > 0, "{key}: the flip must be observed");
    }
    std::fs::remove_dir_all(&root).ok();
}
