//! End-to-end test of the `wgr` command-line tool: generate → build →
//! inspect, through real process invocations.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use std::process::Command;

fn wgr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wgr"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_cli_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn gen_build_inspect_round_trip() {
    let root = temp_dir("roundtrip");
    let corpus = root.join("corpus");
    let repo = root.join("repo");

    let out = wgr()
        .args(["gen", "--pages", "2000", "--seed", "5", "--out"])
        .arg(&corpus)
        .output()
        .expect("run wgr gen");
    assert!(out.status.success(), "gen failed: {out:?}");
    assert!(corpus.join("urls.txt").exists());
    assert!(corpus.join("edges.txt").exists());

    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&repo)
        .output()
        .expect("run wgr build");
    assert!(out.status.success(), "build failed: {out:?}");
    assert!(repo.join("meta.bin").exists());
    assert!(repo.join("index_000.bin").exists());

    let out = wgr().args(["stats", "--repo"]).arg(&repo).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pages        : 2000"), "stats output: {text}");
    assert!(text.contains("supernodes"));

    let out = wgr()
        .args(["links", "--repo"])
        .arg(&repo)
        .args(["--page", "0"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("links to"));

    // Out-of-range page exits non-zero, cleanly.
    let out = wgr()
        .args(["links", "--repo"])
        .arg(&repo)
        .args(["--page", "999999"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = wgr()
        .args(["verify", "--repo"])
        .arg(&repo)
        .output()
        .unwrap();
    assert!(out.status.success(), "verify failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("OK:"));

    let out = wgr()
        .args(["top", "--repo"])
        .arg(&repo)
        .arg("--corpus")
        .arg(&corpus)
        .args(["-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PageRank"));

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn build_threads_flag_and_env_produce_identical_repos() {
    let root = temp_dir("threads");
    let corpus = root.join("corpus");
    let out = wgr()
        .args(["gen", "--pages", "600", "--seed", "3", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    // Three builds: explicit --threads 1, explicit --threads 4, and
    // WGR_THREADS=2 with threads left on auto. All must write the same
    // bytes — parallelism must be invisible in the representation.
    let repo_serial = root.join("repo_serial");
    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&repo_serial)
        .args(["--threads", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "serial build failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("(1 threads,"));

    let repo_par = root.join("repo_par");
    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&repo_par)
        .args(["--threads", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "parallel build failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("(4 threads,"));

    let repo_env = root.join("repo_env");
    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&repo_env)
        .env("WGR_THREADS", "2")
        .output()
        .unwrap();
    assert!(out.status.success(), "env build failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("(2 threads,"));

    for other in [&repo_par, &repo_env] {
        let mut names: Vec<String> = std::fs::read_dir(&repo_serial)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert!(!names.is_empty());
        for n in &names {
            assert_eq!(
                std::fs::read(repo_serial.join(n)).unwrap(),
                std::fs::read(other.join(n)).unwrap(),
                "file {n} differs in {}",
                other.display()
            );
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bench_quick_writes_baseline_json() {
    let root = temp_dir("bench");
    let out_file = root.join("BENCH_build.json");
    let query_file = root.join("BENCH_query.json");
    let out = wgr()
        .args([
            "bench",
            "--quick",
            "--pages",
            "400",
            "--threads",
            "1,2",
            "--out",
        ])
        .arg(&out_file)
        .arg("--query-out")
        .arg(&query_file)
        .output()
        .unwrap();
    assert!(out.status.success(), "bench failed: {out:?}");
    let json = std::fs::read_to_string(&out_file).unwrap();
    assert!(json.contains("\"bench\": \"wgr build\""), "json: {json}");
    assert!(json.contains("\"identical_output\": true"), "json: {json}");
    assert!(json.contains("\"encode_secs\""), "json: {json}");
    assert!(json.contains("\"bits_per_edge\""), "json: {json}");

    // The query companion: every scheme's workload, with the two-pass
    // determinism verdict.
    let qjson = std::fs::read_to_string(&query_file).unwrap();
    assert!(qjson.contains("\"bench\": \"wgr query\""), "json: {qjson}");
    assert!(qjson.contains("\"deterministic\": true"), "json: {qjson}");
    for scheme in ["uncompressed-files", "relational-db", "link3", "s-node"] {
        assert!(qjson.contains(scheme), "missing {scheme}: {qjson}");
    }
    for key in [
        "pages_fetched",
        "intra_lists_decoded",
        "fingerprint",
        "wall_ns",
    ] {
        assert!(qjson.contains(key), "missing {key}: {qjson}");
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Strips every line carrying a time-valued field (`*_ns` histograms and
/// span durations) — what's left must be identical between runs.
fn strip_time_lines(s: &str) -> String {
    s.lines()
        .filter(|l| !l.contains("_ns"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn query_metrics_json_is_deterministic_across_runs() {
    let root = temp_dir("qmetrics");
    let corpus = root.join("corpus");
    let out = wgr()
        .args(["gen", "--pages", "1500", "--seed", "11", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let run = || {
        let out = wgr()
            .arg("query")
            .arg(&corpus)
            .arg("--metrics=json")
            .output()
            .unwrap();
        assert!(out.status.success(), "query failed: {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let a = run();
    let b = run();

    // The acceptance bar: per-query wall time, supernodes visited, lists
    // decoded, cache hits/misses, and pages fetched, for q1..q6.
    for q in ["\"q1\"", "\"q2\"", "\"q3\"", "\"q4\"", "\"q5\"", "\"q6\""] {
        assert!(a.contains(q), "missing {q} in: {a}");
    }
    for key in [
        "wall_ns",
        "supernodes_visited",
        "intra_lists_decoded",
        "super_lists_decoded",
        "cache_hits",
        "cache_misses",
        "pages_fetched",
    ] {
        assert!(a.contains(key), "missing {key} in: {a}");
    }
    // Registry snapshot rides along in the same document.
    assert!(a.contains("\"registry\""), "missing registry in: {a}");
    assert!(
        a.contains("core.cache.hits"),
        "missing core.cache.hits: {a}"
    );

    // Two consecutive runs: identical counters once timing lines go.
    assert_eq!(
        strip_time_lines(&a),
        strip_time_lines(&b),
        "query counters must be deterministic across runs"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn build_metrics_and_trace_and_stats_json() {
    let root = temp_dir("obsflags");
    let corpus = root.join("corpus");
    let repo = root.join("repo");
    let trace = root.join("trace.json");
    let out = wgr()
        .args(["gen", "--pages", "800", "--seed", "9", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&repo)
        .arg("--metrics=json")
        .arg("--trace")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "build failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Build-stage spans land in the registry as histograms.
    for key in [
        "core.build.refine_ns",
        "core.build.encode_ns",
        "core.build.total_ns",
    ] {
        assert!(stdout.contains(key), "missing {key} in: {stdout}");
    }
    // And as trace events in a Chrome trace-event file.
    let tjson = std::fs::read_to_string(&trace).unwrap();
    assert!(tjson.contains("\"traceEvents\""), "trace: {tjson}");
    assert!(tjson.contains("core.build.refine"), "trace: {tjson}");
    assert!(tjson.contains("\"ph\":\"X\""), "trace: {tjson}");

    // `wgr stats DIR --json` — positional dir, machine-readable output.
    let out = wgr()
        .arg("stats")
        .arg(&repo)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success(), "stats failed: {out:?}");
    let sjson = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"pages\": 800",
        "\"supernodes\"",
        "\"superedges\"",
        "\"domains\"",
    ] {
        assert!(sjson.contains(key), "missing {key} in: {sjson}");
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn build_codec_flag_round_trips() {
    let root = temp_dir("codecflag");
    let corpus = root.join("corpus");
    let out = wgr()
        .args(["gen", "--pages", "600", "--seed", "3", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    // The cell string round-trips through CodecConfig::parse → Display:
    // the build banner echoes the normalised `<intra>/<superedge>` form,
    // and the directory it writes decodes cleanly (verify re-reads the
    // codec from the meta.bin header).
    for (flag, echoed) in [
        ("g+st", "codec g+st/g+st"),
        ("z3+iv+cb/g", "codec z3+iv+cb/g"),
    ] {
        let repo = root.join(format!("repo_{}", flag.replace('/', "_")));
        let out = wgr()
            .args(["build", "--corpus"])
            .arg(&corpus)
            .arg("--out")
            .arg(&repo)
            .args(["--codec", flag])
            .output()
            .unwrap();
        assert!(out.status.success(), "build --codec {flag} failed: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(echoed),
            "missing {echoed:?} in: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        let out = wgr()
            .args(["verify", "--repo"])
            .arg(&repo)
            .output()
            .unwrap();
        assert!(out.status.success(), "verify {flag} failed: {out:?}");
    }

    // `--codec g` is the γ baseline spelled explicitly: byte-identical to
    // a default build.
    let repo_default = root.join("repo_default");
    let repo_g = root.join("repo_g");
    for (repo, extra) in [(&repo_default, None), (&repo_g, Some("g"))] {
        let mut cmd = wgr();
        cmd.args(["build", "--corpus"])
            .arg(&corpus)
            .arg("--out")
            .arg(repo);
        if let Some(c) = extra {
            cmd.args(["--codec", c]);
        }
        assert!(cmd.output().unwrap().status.success());
    }
    for entry in std::fs::read_dir(&repo_default).unwrap() {
        let name = entry.unwrap().file_name();
        assert_eq!(
            std::fs::read(repo_default.join(&name)).unwrap(),
            std::fs::read(repo_g.join(&name)).unwrap(),
            "file {name:?} differs between default and --codec g builds"
        );
    }

    // Unparseable cells are a usage error, not a panic.
    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(root.join("repo_bad"))
        .args(["--codec", "z99+zz"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "bad codec must exit 2: {out:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn build_stream_and_shards_flags_round_trip() {
    let root = temp_dir("stream_shards");
    let corpus = root.join("corpus");
    let repo_sharded = root.join("repo_sharded");
    let repo_plain = root.join("repo_plain");

    // --stream generates the corpus on disk before building; --shards
    // routes through the out-of-core pipeline and leaves a manifest.
    let out = wgr()
        .args(["build", "--stream", "--pages", "1500", "--seed", "9"])
        .arg("--corpus")
        .arg(&corpus)
        .arg("--out")
        .arg(&repo_sharded)
        .args(["--shards", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "streamed sharded build failed: {out:?}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("streamed 1500 pages"),
        "stream banner missing: {text}"
    );
    assert!(text.contains("3 shards"), "shard note missing: {text}");
    assert!(
        corpus.join("urls.txt").exists(),
        "streamed corpus not written"
    );
    assert!(
        repo_sharded.join("shards.bin").exists(),
        "shard manifest missing"
    );

    let out = wgr()
        .arg("verify")
        .arg("--repo")
        .arg(&repo_sharded)
        .output()
        .unwrap();
    assert!(out.status.success(), "sharded repo failed verify: {out:?}");

    // A plain in-memory build from the same streamed corpus must produce
    // byte-identical payload files — sharding only adds its manifest.
    let out = wgr()
        .arg("build")
        .arg("--corpus")
        .arg(&corpus)
        .arg("--out")
        .arg(&repo_plain)
        .output()
        .unwrap();
    assert!(out.status.success(), "plain build failed: {out:?}");
    for entry in std::fs::read_dir(&repo_plain).unwrap() {
        let path = entry.unwrap().path();
        if !path.is_file() {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name == "sums.bin" {
            continue;
        }
        let plain = std::fs::read(&path).unwrap();
        let sharded = std::fs::read(repo_sharded.join(&name)).unwrap();
        assert!(
            plain == sharded,
            "file {name:?} differs between plain and sharded builds"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_on_bad_subcommand() {
    let out = wgr().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
