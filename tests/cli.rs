//! End-to-end test of the `wgr` command-line tool: generate → build →
//! inspect, through real process invocations.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use std::process::Command;

fn wgr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wgr"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_cli_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn gen_build_inspect_round_trip() {
    let root = temp_dir("roundtrip");
    let corpus = root.join("corpus");
    let repo = root.join("repo");

    let out = wgr()
        .args(["gen", "--pages", "2000", "--seed", "5", "--out"])
        .arg(&corpus)
        .output()
        .expect("run wgr gen");
    assert!(out.status.success(), "gen failed: {out:?}");
    assert!(corpus.join("urls.txt").exists());
    assert!(corpus.join("edges.txt").exists());

    let out = wgr()
        .args(["build", "--corpus"])
        .arg(&corpus)
        .arg("--out")
        .arg(&repo)
        .output()
        .expect("run wgr build");
    assert!(out.status.success(), "build failed: {out:?}");
    assert!(repo.join("meta.bin").exists());
    assert!(repo.join("index_000.bin").exists());

    let out = wgr().args(["stats", "--repo"]).arg(&repo).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pages        : 2000"), "stats output: {text}");
    assert!(text.contains("supernodes"));

    let out = wgr()
        .args(["links", "--repo"])
        .arg(&repo)
        .args(["--page", "0"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("links to"));

    // Out-of-range page exits non-zero, cleanly.
    let out = wgr()
        .args(["links", "--repo"])
        .arg(&repo)
        .args(["--page", "999999"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = wgr()
        .args(["verify", "--repo"])
        .arg(&repo)
        .output()
        .unwrap();
    assert!(out.status.success(), "verify failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("OK:"));

    let out = wgr()
        .args(["top", "--repo"])
        .arg(&repo)
        .arg("--corpus")
        .arg(&corpus)
        .args(["-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PageRank"));

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_on_bad_subcommand() {
    let out = wgr().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
