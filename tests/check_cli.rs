//! End-to-end test of `wgr check`: a representation with several injected
//! corruptions must report every one with its stable code through the
//! `--json` interface, and the exit codes must follow the contract
//! (0 clean, 1 denied warnings, 2 corrupt).

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;
use webgraph_repr::bitio::BitWriter;
use webgraph_repr::corpus::{Corpus, CorpusConfig};
use webgraph_repr::snode::codec::{CodecConfig, ListCodec};
use webgraph_repr::snode::disk::{GraphLocator, IndexFileWriter, SNodeMeta};
use webgraph_repr::snode::refenc::{encode_lists, RefMode};
use webgraph_repr::snode::subgraphs::{encode_intranode, encode_superedge, SuperedgePolicy};
use webgraph_repr::snode::supergraph::SupernodeGraph;
use webgraph_repr::snode::{build_snode, RepoInput, SNodeConfig};

fn wgr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wgr"))
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_checkcli_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn build_clean(dir: &Path) {
    let corpus = Corpus::generate(CorpusConfig::scaled(800, 3));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    build_snode(input, &SNodeConfig::default(), dir).unwrap();
}

/// Injects four corruptions: an empty PageID range (SN001), a zero-link
/// superedge (SN010), a negative encoding larger than its positive form
/// (SN030), and trailing index-file garbage (SN060).
fn craft_corrupt(dir: &Path) {
    let supergraph = SupernodeGraph {
        adj: vec![vec![2], vec![], vec![0]],
    };
    let cap = 1u64 << 20;
    let mut w = IndexFileWriter::create(dir, cap).unwrap();
    let mut intranode_loc = Vec::new();
    let mut superedge_loc: Vec<Vec<GraphLocator>> = Vec::new();

    let intra0 = encode_intranode(&[vec![1], vec![2], vec![]], RefMode::None, ListCodec::GAMMA);
    intranode_loc.push(w.append(&intra0.bytes, intra0.bit_len).unwrap());
    let se02 = encode_superedge(
        &[vec![], vec![], vec![]],
        2,
        RefMode::None,
        SuperedgePolicy::EncodedSize,
        ListCodec::GAMMA,
    );
    superedge_loc.push(vec![w.append(&se02.bytes, se02.bit_len).unwrap()]);

    let intra1 = encode_intranode(&[], RefMode::None, ListCodec::GAMMA);
    intranode_loc.push(w.append(&intra1.bytes, intra1.bit_len).unwrap());
    superedge_loc.push(vec![]);

    let intra2 = encode_intranode(&[vec![1], vec![]], RefMode::None, ListCodec::GAMMA);
    intranode_loc.push(w.append(&intra2.bytes, intra2.bit_len).unwrap());
    let neg_lists = vec![vec![1u32, 2], vec![0, 1, 2]];
    let mut bw = BitWriter::new();
    bw.write_bit(true);
    let enc = encode_lists(&neg_lists, 3, RefMode::None, ListCodec::GAMMA);
    bw.append(&enc.bytes, enc.bit_len);
    let (bytes, bits) = bw.finish();
    superedge_loc.push(vec![w.append(&bytes, bits).unwrap()]);
    w.finish().unwrap();

    let meta = SNodeMeta {
        num_pages: 5,
        range_start: vec![0, 3, 3, 5],
        supergraph,
        supergraph_bits: 0,
        intranode_loc,
        superedge_loc,
        domain_supernodes: vec![vec![0, 1, 2]],
        max_file_bytes: cap,
        codec: CodecConfig::GAMMA,
    };
    meta.write(dir).unwrap();

    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("index_000.bin"))
        .unwrap();
    f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
}

#[test]
fn check_reports_all_injected_corruptions_as_json() {
    let repo = temp_dir("corrupt");
    craft_corrupt(&repo);

    let out = wgr()
        .arg("check")
        .arg(&repo)
        .arg("--json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "errors must exit 2: {out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    for code in ["SN001", "SN010", "SN030", "SN060"] {
        assert!(json.contains(code), "{code} missing from: {json}");
    }
    for name in [
        "pageid-gap",
        "empty-superedge",
        "negative-superedge-not-smaller",
        "index-file-oversize",
    ] {
        assert!(json.contains(name), "{name} missing from: {json}");
    }
    assert!(json.contains("\"summary\""));
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn check_exit_codes_follow_contract() {
    let repo = temp_dir("exitcodes");
    build_clean(&repo);

    // Clean: exit 0 in both renderings.
    let out = wgr().arg("check").arg(&repo).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = wgr()
        .arg("check")
        .arg(&repo)
        .arg("--json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"diagnostics\":[]"));

    // Warning only (trailing index-file bytes): tolerated by default,
    // denied with --deny warn.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(repo.join("index_000.bin"))
        .unwrap();
    f.write_all(&[0u8; 5]).unwrap();
    drop(f);
    let out = wgr().arg("check").arg(&repo).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "warnings tolerated: {out:?}");
    let out = wgr()
        .arg("check")
        .arg(&repo)
        .args(["--deny", "warn"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "warnings denied: {out:?}");

    // Corrupt metadata: fatal, exit 2.
    std::fs::write(repo.join("meta.bin"), b"junk").unwrap();
    let out = wgr().arg("check").arg(&repo).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn verify_wrapper_keeps_pass_fail_contract() {
    let repo = temp_dir("verify");
    build_clean(&repo);
    let out = wgr()
        .args(["verify", "--repo"])
        .arg(&repo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("OK:"));

    // An injected error (truncate the last index file) must flip it to
    // FAILED with exit 1.
    let idx = repo.join("index_000.bin");
    let bytes = std::fs::read(&idx).unwrap();
    std::fs::write(&idx, &bytes[..bytes.len() / 2]).unwrap();
    let out = wgr()
        .args(["verify", "--repo"])
        .arg(&repo)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("FAILED"));
    std::fs::remove_dir_all(&repo).ok();
}
