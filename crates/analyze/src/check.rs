//! The multi-pass walk over an on-disk S-Node representation.
//!
//! Pass 1 audits the resident metadata (PageID tiling, domain index, the
//! stored supernode-graph stream). Pass 2 audits the physical index files
//! against the locator tables. Pass 3 decodes every intranode and
//! superedge graph and checks the per-graph invariants. Unlike
//! `wg_snode::verify`, nothing here stops at the first finding: the only
//! fatal condition is `meta.bin` itself being unreadable, because every
//! other check is rooted in it.

use crate::{Code, Diagnostic, Location, Report};
use std::path::Path;
use wg_snode::disk::{index_file_path, GraphLocator, IndexFileReader, SNodeMeta};
use wg_snode::refenc::{ListsIndex, Universe, MAX_REF_CHAIN};
use wg_snode::subgraphs::{SuperedgeIndex, SuperedgeKind};
use wg_snode::supergraph::SupernodeGraph;

/// Aggregate facts about the representation, reported alongside the
/// diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    pub num_pages: u32,
    pub num_supernodes: u32,
    pub num_superedges: u64,
    /// Page-level links decoded from intranode graphs.
    pub intranode_edges: u64,
    /// Page-level links decoded from superedge graphs (positive count).
    pub superedge_edges: u64,
    pub num_index_files: u32,
    pub index_bytes: u64,
}

impl Summary {
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"num_pages\":{},\"num_supernodes\":{},\"num_superedges\":{},\
             \"intranode_edges\":{},\"superedge_edges\":{},\
             \"num_index_files\":{},\"index_bytes\":{}}}",
            self.num_pages,
            self.num_supernodes,
            self.num_superedges,
            self.intranode_edges,
            self.superedge_edges,
            self.num_index_files,
            self.index_bytes
        ));
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pages, {} supernodes, {} superedges, {} intranode + {} superedge edges, {} index files ({} bytes)",
            self.num_pages,
            self.num_supernodes,
            self.num_superedges,
            self.intranode_edges,
            self.superedge_edges,
            self.num_index_files,
            self.index_bytes
        )
    }
}

/// Runs every pass over the representation in `dir` and returns all
/// findings.
///
/// `Err` is reserved for a representation so damaged that nothing can be
/// audited: `meta.bin` missing, truncated, or undecodable. Everything
/// else — missing index files, corrupt graphs, broken invariants — comes
/// back as diagnostics inside the `Ok` report.
pub fn check(dir: &Path) -> wg_snode::Result<Report> {
    let meta = SNodeMeta::read(dir)?;
    let mut diags = Vec::new();
    let mut summary = Summary {
        num_pages: meta.num_pages,
        num_supernodes: meta.num_supernodes(),
        num_superedges: meta.supergraph.num_superedges(),
        ..Summary::default()
    };

    check_page_ranges(&meta, &mut diags);
    check_domain_index(&meta, &mut diags);
    check_supergraph_stream(dir, &mut diags);
    let files = check_index_files(dir, &meta, &mut diags, &mut summary);
    check_graphs(dir, &meta, &files, &mut diags, &mut summary);

    Ok(Report {
        diagnostics: diags,
        summary,
    })
}

// --- Pass 1: resident metadata ---------------------------------------------

/// SN001: `SNodeMeta::read` requires the ranges to tile `0..num_pages`
/// monotonically, but tolerates empty ranges; the builder never produces a
/// supernode that owns no pages.
fn check_page_ranges(meta: &SNodeMeta, diags: &mut Vec<Diagnostic>) {
    for (s, w) in meta.range_start.windows(2).enumerate() {
        if w[0] == w[1] {
            diags.push(Diagnostic::new(
                Code::PageidGap,
                Location::Meta,
                format!(
                    "supernode {s} owns no pages (PageID range {}..{})",
                    w[0], w[1]
                ),
            ));
        }
    }
}

/// SN002: every supernode belongs to exactly one domain, and each domain's
/// supernode list is strictly ascending.
fn check_domain_index(meta: &SNodeMeta, diags: &mut Vec<Diagnostic>) {
    let n = meta.num_supernodes() as usize;
    let mut seen = vec![0u32; n];
    for (d, list) in meta.domain_supernodes.iter().enumerate() {
        let mut prev: Option<u32> = None;
        for &s in list {
            if let Some(p) = prev {
                if s <= p {
                    diags.push(Diagnostic::new(
                        Code::DomainIndexInvalid,
                        Location::DomainIndex,
                        format!("domain {d} supernode list is not strictly ascending at {s}"),
                    ));
                }
            }
            prev = Some(s);
            if let Some(c) = seen.get_mut(s as usize) {
                *c += 1;
            } else {
                diags.push(Diagnostic::new(
                    Code::DomainIndexInvalid,
                    Location::DomainIndex,
                    format!("domain {d} names supernode {s} but only {n} exist"),
                ));
            }
        }
    }
    let missing = seen.iter().filter(|&&c| c == 0).count();
    let duplicated = seen.iter().filter(|&&c| c > 1).count();
    if missing > 0 {
        diags.push(Diagnostic::new(
            Code::DomainIndexInvalid,
            Location::DomainIndex,
            format!("{missing} supernode(s) belong to no domain"),
        ));
    }
    if duplicated > 0 {
        diags.push(Diagnostic::new(
            Code::DomainIndexInvalid,
            Location::DomainIndex,
            format!("{duplicated} supernode(s) appear in more than one domain"),
        ));
    }
}

/// SN040 + SN050 on the supernode-graph stream inside `meta.bin`: the
/// stored Huffman length table must be the canonical one implied by the
/// decoded in-degrees (the decoder re-derives code words from lengths, so
/// a non-canonical table still decodes — it is just not what the builder
/// writes), and the stream must end exactly at its declared bit length.
fn check_supergraph_stream(dir: &Path, diags: &mut Vec<Diagnostic>) {
    let (bytes, bits) = match SNodeMeta::read_supergraph_section(dir) {
        Ok(v) => v,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::DecodeError,
                Location::Supergraph,
                format!("could not re-read supergraph stream: {e}"),
            ));
            return;
        }
    };
    match SupernodeGraph::decode_full(&bytes, bits) {
        Ok((graph, stored_lengths, end)) => {
            let canonical = graph.canonical_code();
            if stored_lengths != canonical.lengths() {
                diags.push(Diagnostic::new(
                    Code::HuffmanNonCanonical,
                    Location::Supergraph,
                    "stored Huffman length table differs from the canonical table \
                     implied by the supernode in-degrees"
                        .to_string(),
                ));
            }
            if end < bits {
                diags.push(Diagnostic::new(
                    Code::TrailingBits,
                    Location::Supergraph,
                    format!("decode consumed {end} of {bits} declared bits"),
                ));
            }
        }
        Err(e) => {
            // `SNodeMeta::read` decodes this same stream, so reaching here
            // means the two reads raced with a concurrent writer.
            diags.push(Diagnostic::new(
                Code::DecodeError,
                Location::Supergraph,
                format!("supergraph stream failed to decode: {e}"),
            ));
        }
    }
}

// --- Pass 2: index files ----------------------------------------------------

/// On-disk index-file sizes, in file-number order.
struct IndexFiles {
    sizes: Vec<u64>,
}

impl IndexFiles {
    /// True when `loc` names an existing file and lies within it.
    fn contains(&self, loc: &GraphLocator) -> bool {
        self.sizes
            .get(loc.file as usize)
            .is_some_and(|&size| loc.offset.saturating_add(loc.byte_len) <= size)
    }
}

/// SN060 + the bounds half of SN070/SN013: stats every `index_NNN.bin`,
/// cross-checks sizes against the locator tables, and flags files that
/// break the rotation discipline.
fn check_index_files(
    dir: &Path,
    meta: &SNodeMeta,
    diags: &mut Vec<Diagnostic>,
    summary: &mut Summary,
) -> IndexFiles {
    let mut sizes = Vec::new();
    while let Ok(m) = std::fs::metadata(index_file_path(dir, sizes.len() as u32)) {
        sizes.push(m.len());
    }
    summary.num_index_files = sizes.len() as u32;
    summary.index_bytes = sizes.iter().sum();
    let files = IndexFiles { sizes };

    // Referenced extent and graph count per file.
    let mut extent = vec![0u64; files.sizes.len()];
    let mut graphs = vec![0u32; files.sizes.len()];
    let all_locs = meta
        .intranode_loc
        .iter()
        .chain(meta.superedge_loc.iter().flatten());
    for loc in all_locs {
        if let Some(e) = extent.get_mut(loc.file as usize) {
            *e = (*e).max(loc.offset.saturating_add(loc.byte_len));
            graphs[loc.file as usize] += 1;
        }
    }
    for (no, &size) in files.sizes.iter().enumerate() {
        let loc = Location::IndexFile(no as u32);
        if graphs[no] == 0 {
            diags.push(Diagnostic::new(
                Code::IndexFileOversize,
                loc,
                format!("{size} bytes on disk but no locator references this file"),
            ));
            continue;
        }
        if size > extent[no] {
            diags.push(Diagnostic::new(
                Code::IndexFileOversize,
                loc,
                format!(
                    "{} trailing byte(s) beyond the last referenced graph",
                    size - extent[no]
                ),
            ));
        }
        // A single graph larger than the cap legitimately gets a file to
        // itself; two or more graphs must respect the rotation rule.
        if size > meta.max_file_bytes && graphs[no] > 1 {
            diags.push(Diagnostic::new(
                Code::IndexFileOversize,
                loc,
                format!(
                    "{size} bytes exceeds the {} byte cap with {} graphs inside",
                    meta.max_file_bytes, graphs[no]
                ),
            ));
        }
    }
    files
}

// --- Pass 3: every graph ----------------------------------------------------

/// Accumulates per-list violations so one bad graph yields a bounded
/// number of diagnostics instead of one per list.
#[derive(Default)]
struct ListAudit {
    out_of_range: u64,
    first_out_of_range: Option<(u32, u32)>,
    not_monotone: u64,
    first_not_monotone: Option<u32>,
}

impl ListAudit {
    fn scan(&mut self, list_id: u32, list: &[u32], universe: u64) {
        let mut prev: Option<u32> = None;
        for &x in list {
            if u64::from(x) >= universe {
                self.out_of_range += 1;
                if self.first_out_of_range.is_none() {
                    self.first_out_of_range = Some((list_id, x));
                }
            }
            if let Some(p) = prev {
                if x <= p {
                    self.not_monotone += 1;
                    if self.first_not_monotone.is_none() {
                        self.first_not_monotone = Some(list_id);
                    }
                }
            }
            prev = Some(x);
        }
    }

    fn emit(&self, universe: u64, loc: Location, diags: &mut Vec<Diagnostic>) {
        if let Some((l, v)) = self.first_out_of_range {
            diags.push(Diagnostic::new(
                Code::EntryOutOfRange,
                loc,
                format!(
                    "{} entr(ies) outside universe {universe} (first: list {l} holds {v})",
                    self.out_of_range
                ),
            ));
        }
        if let Some(l) = self.first_not_monotone {
            diags.push(Diagnostic::new(
                Code::ListNotMonotone,
                loc,
                format!(
                    "{} entr(ies) break strict ascending order (first in list {l})",
                    self.not_monotone
                ),
            ));
        }
    }
}

/// SN020/SN021 + the parent half of SN012: walks the reference forest of
/// one encoded list collection, detecting cycles and measuring depth.
fn audit_ref_chains(parents: &[Option<u32>], loc: Location, diags: &mut Vec<Diagnostic>) {
    let n = parents.len();
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut on_path = vec![false; n];
    let mut cycle_reported = false;
    let mut deepest = 0u32;
    enum End {
        Plain,
        Memo(u32),
        Cycle(usize),
        BadParent(usize, u32),
    }
    for i in 0..n {
        if depth[i].is_some() {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = i;
        let end = loop {
            if let Some(d) = depth[cur] {
                break End::Memo(d);
            }
            if on_path[cur] {
                break End::Cycle(cur);
            }
            on_path[cur] = true;
            path.push(cur);
            match parents[cur] {
                None => break End::Plain,
                Some(p) if (p as usize) >= n => break End::BadParent(cur, p),
                Some(p) => cur = p as usize,
            }
        };
        for &v in &path {
            on_path[v] = false;
        }
        match end {
            End::Plain => {
                let mut d = 0u32;
                for &v in path.iter().rev() {
                    depth[v] = Some(d);
                    deepest = deepest.max(d);
                    d = d.saturating_add(1);
                }
            }
            End::Memo(base) => {
                let mut d = base.saturating_add(1);
                for &v in path.iter().rev() {
                    depth[v] = Some(d);
                    deepest = deepest.max(d);
                    d = d.saturating_add(1);
                }
            }
            End::Cycle(at) => {
                if !cycle_reported {
                    diags.push(Diagnostic::new(
                        Code::RefChainCycle,
                        loc,
                        format!("reference chain from list {i} revisits list {at}"),
                    ));
                    cycle_reported = true;
                }
                for &v in &path {
                    depth[v] = Some(0);
                }
            }
            End::BadParent(v, p) => {
                diags.push(Diagnostic::new(
                    Code::EntryOutOfRange,
                    loc,
                    format!("list {v} references parent {p} but only {n} lists exist"),
                ));
                for &v in &path {
                    depth[v] = Some(0);
                }
            }
        }
    }
    if deepest > MAX_REF_CHAIN {
        diags.push(Diagnostic::new(
            Code::RefChainTooDeep,
            loc,
            format!("deepest reference chain is {deepest} (windowed-mode cap {MAX_REF_CHAIN})"),
        ));
    }
}

/// Decodes every intranode and superedge graph and audits the per-graph
/// invariants (SN010–SN050, plus the missing-graph half of SN070/SN013).
fn check_graphs(
    dir: &Path,
    meta: &SNodeMeta,
    files: &IndexFiles,
    diags: &mut Vec<Diagnostic>,
    summary: &mut Summary,
) {
    let total_graphs =
        meta.intranode_loc.len() + meta.superedge_loc.iter().map(Vec::len).sum::<usize>();
    if files.sizes.is_empty() {
        if total_graphs > 0 {
            diags.push(Diagnostic::new(
                Code::DecodeError,
                Location::Meta,
                format!("no index files on disk; {total_graphs} graph(s) are unreadable"),
            ));
        }
        return;
    }
    let reader = match IndexFileReader::open(dir) {
        Ok(r) => r,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::DecodeError,
                Location::Meta,
                format!("could not open index files: {e}"),
            ));
            return;
        }
    };

    let n = meta.num_supernodes();
    for s in 0..n {
        let ni = u64::from(meta.supernode_size(s));
        check_intranode(meta, files, &reader, s, ni, diags, summary);
        for (k, &j) in meta.supergraph.adj[s as usize].iter().enumerate() {
            let nj = if (j as usize) < meta.range_start.len() - 1 {
                u64::from(meta.supernode_size(j))
            } else {
                // Target out of range is caught at supergraph decode; be
                // defensive anyway.
                0
            };
            let loc = meta.superedge_loc[s as usize][k];
            check_superedge(meta, files, &reader, s, j, ni, nj, &loc, diags, summary);
        }
    }
}

fn check_intranode(
    meta: &SNodeMeta,
    files: &IndexFiles,
    reader: &IndexFileReader,
    s: u32,
    ni: u64,
    diags: &mut Vec<Diagnostic>,
    summary: &mut Summary,
) {
    let here = Location::Intranode(s);
    let loc = meta.intranode_loc[s as usize];
    if !files.contains(&loc) {
        diags.push(Diagnostic::new(
            Code::DecodeError,
            here,
            format!(
                "locator (file {}, offset {}, {} bytes) lies outside the index files",
                loc.file, loc.offset, loc.byte_len
            ),
        ));
        return;
    }
    let bytes = match reader.read(&loc) {
        Ok(b) => b,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::DecodeError,
                here,
                format!("read failed: {e}"),
            ));
            return;
        }
    };
    let (index, lists) =
        match ListsIndex::load(&bytes, loc.bit_len, Universe::SameAsCount, meta.codec.intra) {
            Ok(v) => v,
            Err(e) => {
                diags.push(Diagnostic::new(
                    Code::DecodeError,
                    here,
                    format!("undecodable: {e}"),
                ));
                return;
            }
        };
    if u64::from(index.num_lists()) != ni {
        diags.push(Diagnostic::new(
            Code::IntranodeSizeMismatch,
            here,
            format!(
                "{} adjacency lists stored but supernode {s} owns {ni} pages",
                index.num_lists()
            ),
        ));
    }
    let mut audit = ListAudit::default();
    for (i, list) in lists.iter().enumerate() {
        summary.intranode_edges += list.len() as u64;
        audit.scan(i as u32, list, index.universe());
    }
    audit.emit(index.universe(), here, diags);
    match index.reference_parents(&bytes, loc.bit_len) {
        Ok(parents) => audit_ref_chains(&parents, here, diags),
        Err(e) => diags.push(Diagnostic::new(
            Code::DecodeError,
            here,
            format!("reference directory unreadable: {e}"),
        )),
    }
    if index.end_bit() < loc.bit_len {
        diags.push(Diagnostic::new(
            Code::TrailingBits,
            here,
            format!(
                "decode consumed {} of {} declared bits",
                index.end_bit(),
                loc.bit_len
            ),
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn check_superedge(
    meta: &SNodeMeta,
    files: &IndexFiles,
    reader: &IndexFileReader,
    s: u32,
    j: u32,
    ni: u64,
    nj: u64,
    loc: &GraphLocator,
    diags: &mut Vec<Diagnostic>,
    summary: &mut Summary,
) {
    let here = Location::Superedge(s, j);
    if !files.contains(loc) {
        diags.push(Diagnostic::new(
            Code::MissingSuperedgeGraph,
            here,
            format!(
                "supernode graph has edge {s}->{j} but its locator \
                 (file {}, offset {}, {} bytes) lies outside the index files",
                loc.file, loc.offset, loc.byte_len
            ),
        ));
        return;
    }
    let bytes = match reader.read(loc) {
        Ok(b) => b,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::MissingSuperedgeGraph,
                here,
                format!("supernode graph has edge {s}->{j} but the graph is unreadable: {e}"),
            ));
            return;
        }
    };
    let index = match SuperedgeIndex::parse(&bytes, loc.bit_len, ni, nj, meta.codec.superedge) {
        Ok(i) => i,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::DecodeError,
                here,
                format!("undecodable: {e}"),
            ));
            return;
        }
    };
    // Decode every stored list once; all per-list checks run off this.
    let mut stored = Vec::with_capacity(index.num_stored_lists() as usize);
    for i in 0..index.num_stored_lists() {
        match index.stored_list(&bytes, loc.bit_len, i) {
            Ok(l) => stored.push(l),
            Err(e) => {
                diags.push(Diagnostic::new(
                    Code::DecodeError,
                    here,
                    format!("list {i} undecodable: {e}"),
                ));
                return;
            }
        }
    }
    let stored_edges: u64 = stored.iter().map(|l| l.len() as u64).sum();
    let mut audit = ListAudit::default();
    for (i, list) in stored.iter().enumerate() {
        audit.scan(i as u32, list, nj.max(1));
    }
    audit.emit(nj.max(1), here, diags);

    match index.kind {
        SuperedgeKind::Positive => {
            if index.sources().len() != stored.len() {
                diags.push(Diagnostic::new(
                    Code::DecodeError,
                    here,
                    format!(
                        "{} source ids but {} stored lists",
                        index.sources().len(),
                        stored.len()
                    ),
                ));
            }
            let mut src_audit = ListAudit::default();
            src_audit.scan(u32::MAX, index.sources(), ni.max(1));
            if src_audit.first_out_of_range.is_some() {
                diags.push(Diagnostic::new(
                    Code::EntryOutOfRange,
                    here,
                    format!("{} source id(s) outside 0..{ni}", src_audit.out_of_range),
                ));
            }
            if src_audit.first_not_monotone.is_some() {
                diags.push(Diagnostic::new(
                    Code::ListNotMonotone,
                    here,
                    "source id list is not strictly ascending".to_string(),
                ));
            }
            summary.superedge_edges += stored_edges;
            if stored_edges == 0 {
                diags.push(Diagnostic::new(
                    Code::EmptySuperedge,
                    here,
                    "superedge graph encodes zero links".to_string(),
                ));
            }
        }
        SuperedgeKind::Negative => {
            if stored.len() as u64 != ni {
                diags.push(Diagnostic::new(
                    Code::DecodeError,
                    here,
                    format!(
                        "negative encoding stores {} lists for {ni} source pages",
                        stored.len()
                    ),
                ));
            }
            let pos_edges = (ni * nj).saturating_sub(stored_edges);
            summary.superedge_edges += pos_edges;
            if pos_edges == 0 {
                diags.push(Diagnostic::new(
                    Code::EmptySuperedge,
                    here,
                    "superedge graph encodes zero links".to_string(),
                ));
            }
            // §2: the builder only goes negative when the complement is
            // strictly smaller.
            if stored_edges >= pos_edges {
                diags.push(Diagnostic::new(
                    Code::NegativeNotSmaller,
                    here,
                    format!(
                        "negative encoding stores {stored_edges} edges but the positive \
                         form would store {pos_edges}"
                    ),
                ));
            }
        }
    }

    // The single-target dictionary layout has no reference directory to
    // audit; its slots were validated during parse.
    if let Some(lists) = index.lists() {
        match lists.reference_parents(&bytes, loc.bit_len) {
            Ok(parents) => audit_ref_chains(&parents, here, diags),
            Err(e) => diags.push(Diagnostic::new(
                Code::DecodeError,
                here,
                format!("reference directory unreadable: {e}"),
            )),
        }
    }
    if index.end_bit() < loc.bit_len {
        diags.push(Diagnostic::new(
            Code::TrailingBits,
            here,
            format!(
                "decode consumed {} of {} declared bits",
                index.end_bit(),
                loc.bit_len
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ref_chain_forest_is_clean() {
        let mut diags = Vec::new();
        // 0 plain, 1 -> 0, 2 -> 1, 3 plain.
        let parents = vec![None, Some(0u32), Some(1), None];
        audit_ref_chains(&parents, Location::Intranode(0), &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn ref_chain_cycle_detected_once() {
        let mut diags = Vec::new();
        // 0 -> 1 -> 2 -> 0 plus a tail 3 -> 0 into the cycle.
        let parents = vec![Some(1u32), Some(2), Some(0), Some(0)];
        audit_ref_chains(&parents, Location::Intranode(0), &mut diags);
        assert_eq!(codes(&diags), vec![Code::RefChainCycle]);
    }

    #[test]
    fn ref_chain_depth_warns_past_cap() {
        let mut diags = Vec::new();
        // A chain of MAX_REF_CHAIN + 1 references.
        let n = MAX_REF_CHAIN as usize + 2;
        let mut parents: Vec<Option<u32>> = vec![None];
        for i in 1..n {
            parents.push(Some(i as u32 - 1));
        }
        audit_ref_chains(&parents, Location::Intranode(0), &mut diags);
        assert_eq!(codes(&diags), vec![Code::RefChainTooDeep]);
    }

    #[test]
    fn ref_chain_bad_parent_flagged() {
        let mut diags = Vec::new();
        let parents = vec![None, Some(9u32)];
        audit_ref_chains(&parents, Location::Intranode(0), &mut diags);
        assert_eq!(codes(&diags), vec![Code::EntryOutOfRange]);
    }

    #[test]
    fn list_audit_aggregates() {
        let mut audit = ListAudit::default();
        audit.scan(0, &[1, 5, 3, 99], 10);
        audit.scan(1, &[2, 2], 10);
        let mut diags = Vec::new();
        audit.emit(10, Location::Intranode(0), &mut diags);
        assert_eq!(
            codes(&diags),
            vec![Code::EntryOutOfRange, Code::ListNotMonotone]
        );
        assert_eq!(audit.out_of_range, 1);
        assert_eq!(audit.not_monotone, 2);
    }
}
