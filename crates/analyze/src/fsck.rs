//! Physical integrity walk (`wgr fsck`): verifies every checksummed
//! section of an S-Node directory against its `sums.bin` manifest and
//! reports a per-section verdict.
//!
//! Three granularities are checked, coarsest first:
//!
//! 1. **Whole files** — every manifest-listed file's length and CRC-32C
//!    (SN103/SN105). This catches damage anywhere, including bytes no
//!    finer-grained record covers (blob padding, locator gaps).
//! 2. **`meta.bin` sections** — the four logical sections (header,
//!    supergraph, size table, domain index) at their recorded byte
//!    ranges (SN102), localising metadata damage.
//! 3. **Graph blobs** — each intranode and superedge blob at its locator
//!    (SN104), attributing index-file damage to the supernode or
//!    superedge whose queries it would poison. Blob checks need the
//!    locator tables, so they run only when `meta.bin` itself verified.
//!
//! Unlike [`crate::check`], which audits *logical* invariants by decoding
//! everything, this pass is purely physical: it never decodes a bitstream,
//! so it is cheap and cannot itself be confused by corrupt encodings. A
//! directory without a manifest (pre-checksum v1 layout) yields a single
//! SN100 warning — there is nothing to verify against.

use crate::{Code, Diagnostic, Location, Severity};
use std::path::Path;
use wg_snode::disk::{GraphLocator, IndexFileReader, SNodeMeta};
use wg_snode::integrity::META_SECTION_NAMES;
use wg_snode::{IntegrityCounters, IntegrityManifest};

/// Everything one `fsck` run found.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Per-section verdicts (only failures and the SN100 warning are
    /// recorded; verified sections are counted, not listed).
    pub diagnostics: Vec<Diagnostic>,
    /// Checksummed units verified: whole files + meta sections + blobs.
    pub sections_checked: u64,
    /// True when a manifest was present and usable — without one the
    /// directory's bytes are unverifiable and `sections_checked` is 0.
    pub verified: bool,
}

impl FsckReport {
    /// Number of error-severity findings (actual damage).
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when no damage was found (a missing-manifest warning on a v1
    /// directory still counts as clean — there is nothing to fail).
    pub fn is_clean(&self) -> bool {
        self.num_errors() == 0
    }

    /// Machine-readable form, one stable JSON object (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"verified\":{},\"sections_checked\":{},\"errors\":{},\"warnings\":{},\
             \"diagnostics\":[",
            self.verified,
            self.sections_checked,
            self.num_errors(),
            self.num_warnings()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"name\":\"");
            out.push_str(d.code.name());
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"location\":\"");
            crate::json_escape_into(&mut out, &d.location.to_string());
            out.push_str("\",\"message\":\"");
            crate::json_escape_into(&mut out, &d.message);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} section(s) checked, {} error(s), {} warning(s)",
            self.sections_checked,
            self.num_errors(),
            self.num_warnings()
        )
    }
}

/// Best-effort location for a manifest-listed file name.
fn file_location(name: &str) -> Location {
    if name == "meta.bin" {
        Location::Meta
    } else if name == "pagemap.bin" {
        Location::Pagemap
    } else if let Some(no) = name
        .strip_prefix("index_")
        .and_then(|r| r.strip_suffix(".bin"))
        .and_then(|n| n.parse().ok())
    {
        Location::IndexFile(no)
    } else {
        Location::Manifest
    }
}

/// Location of `meta.bin` section `i` (see [`META_SECTION_NAMES`]).
fn section_location(i: usize) -> Location {
    match i {
        0 => Location::Meta,
        1 => Location::Supergraph,
        2 => Location::SizeTable,
        _ => Location::DomainIndex,
    }
}

/// Walks every checksummed section of the S-Node directory at `dir`.
///
/// Infallible by design: every problem, up to and including a missing or
/// corrupt manifest, is a diagnostic in the report, so callers get one
/// uniform verdict list. Verifications and failures are also counted on
/// the `integrity.checks` / `integrity.failures` wg-obs counters when
/// metrics are enabled.
pub fn fsck(dir: &Path) -> FsckReport {
    let counters = IntegrityCounters::new();
    let mut diags = Vec::new();
    let manifest = match IntegrityManifest::read(dir) {
        Ok(Some(m)) => m,
        Ok(None) => {
            diags.push(Diagnostic::new(
                Code::MissingManifest,
                Location::Manifest,
                "no integrity manifest (pre-checksum v1 directory); nothing to verify",
            ));
            return FsckReport {
                diagnostics: diags,
                sections_checked: 0,
                verified: false,
            };
        }
        Err(e) => {
            counters.check();
            counters.failure();
            diags.push(Diagnostic::new(
                Code::ManifestCorrupt,
                Location::Manifest,
                format!("integrity manifest unreadable: {e}"),
            ));
            return FsckReport {
                diagnostics: diags,
                sections_checked: 1,
                verified: false,
            };
        }
    };
    counters.check(); // the manifest's own self-checksum, verified by read
    let mut checked = 1u64;

    // Pass 1: whole files.
    let mut meta_bytes: Option<Vec<u8>> = None;
    let mut meta_file_ok = false;
    for fsum in &manifest.files {
        checked += 1;
        counters.check();
        let before = diags.len();
        match wg_fault::read_file(&dir.join(&fsum.name)) {
            Err(e) => diags.push(Diagnostic::new(
                Code::TruncatedFile,
                file_location(&fsum.name),
                format!("{}: unreadable: {e}", fsum.name),
            )),
            Ok(bytes) => {
                if bytes.len() as u64 != fsum.len {
                    diags.push(Diagnostic::new(
                        Code::TruncatedFile,
                        file_location(&fsum.name),
                        format!(
                            "{}: {} byte(s) on disk, manifest records {}",
                            fsum.name,
                            bytes.len(),
                            fsum.len
                        ),
                    ));
                } else if wg_fault::crc32c(&bytes) != fsum.crc {
                    diags.push(Diagnostic::new(
                        Code::FileChecksum,
                        file_location(&fsum.name),
                        format!(
                            "whole-file checksum mismatch ({} bytes, {})",
                            fsum.len, fsum.name
                        ),
                    ));
                } else if fsum.name == "meta.bin" {
                    meta_file_ok = true;
                }
                if fsum.name == "meta.bin" {
                    meta_bytes = Some(bytes);
                }
            }
        }
        if diags.len() > before {
            counters.failure();
        }
    }

    // Pass 2: meta.bin sections, localising damage inside the file. The
    // section bounds come from the manifest (recorded at build time), so
    // this works even when the damaged header no longer parses.
    if let Some(bytes) = &meta_bytes {
        for (i, sec) in manifest.meta_sections.iter().enumerate() {
            checked += 1;
            counters.check();
            let name = META_SECTION_NAMES.get(i).copied().unwrap_or("section");
            let slice = sec
                .start
                .checked_add(sec.len)
                .and_then(|end| bytes.get(sec.start as usize..end as usize));
            match slice {
                Some(sl) if wg_fault::crc32c(sl) == sec.crc => {}
                Some(_) => {
                    counters.failure();
                    diags.push(Diagnostic::new(
                        Code::MetaSectionChecksum,
                        section_location(i),
                        format!(
                            "meta.bin {name} section ({} bytes at offset {}) checksum mismatch",
                            sec.len, sec.start
                        ),
                    ));
                }
                None => {
                    counters.failure();
                    // Only report once: the whole-file pass already flagged
                    // a short meta.bin unless the manifest itself is off.
                    if meta_file_ok {
                        diags.push(Diagnostic::new(
                            Code::ManifestCorrupt,
                            section_location(i),
                            format!(
                                "manifest places the {name} section at {}..{} but meta.bin \
                                 holds {} byte(s)",
                                sec.start,
                                sec.start.saturating_add(sec.len),
                                bytes.len()
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Pass 3: graph blobs. The locator tables live in meta.bin, so blob
    // verdicts are only trustworthy when it verified. The parse also
    // validates the v2 header's codec-id word — checksums prove the bytes
    // are the ones the builder wrote, not that a (buggy or newer) builder
    // wrote a codec this tool can decode.
    if meta_file_ok {
        if let Some(bytes) = &meta_bytes {
            checked += 1;
            counters.check();
            match SNodeMeta::parse(bytes) {
                Ok(meta) => {
                    check_blobs(dir, &meta, &manifest, &counters, &mut diags, &mut checked);
                }
                Err(e) => {
                    counters.failure();
                    diags.push(Diagnostic::new(
                        Code::DecodeError,
                        Location::Meta,
                        format!("meta.bin verified but did not parse (header or codec id): {e}"),
                    ));
                }
            }
        }
    }

    FsckReport {
        diagnostics: diags,
        sections_checked: checked,
        verified: true,
    }
}

/// Verifies every intranode and superedge blob against the manifest's
/// blob table, in the builder's linear order.
fn check_blobs(
    dir: &Path,
    meta: &SNodeMeta,
    manifest: &IntegrityManifest,
    counters: &IntegrityCounters,
    diags: &mut Vec<Diagnostic>,
    checked: &mut u64,
) {
    let reader = match IndexFileReader::open(dir) {
        Ok(r) => r,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::DecodeError,
                Location::Meta,
                format!("could not open index files: {e}"),
            ));
            return;
        }
    };
    let mut blob_idx = 0usize;
    let mut verify = |loc: &GraphLocator, at: Location, idx: usize| {
        let Some(&want) = manifest.blob_crc.get(idx) else {
            return; // count mismatch reported once below
        };
        *checked += 1;
        counters.check();
        match reader.read(loc) {
            Ok(bytes) if wg_fault::crc32c(&bytes) == want => {}
            Ok(_) => {
                counters.failure();
                diags.push(Diagnostic::new(
                    Code::BlobChecksum,
                    at,
                    format!(
                        "encoded graph ({} bytes in index_{:03}.bin at offset {}) \
                         checksum mismatch",
                        loc.byte_len, loc.file, loc.offset
                    ),
                ));
            }
            Err(e) => {
                counters.failure();
                diags.push(Diagnostic::new(
                    Code::TruncatedFile,
                    at,
                    format!("encoded graph unreadable: {e}"),
                ));
            }
        }
    };
    for s in 0..meta.num_supernodes() {
        verify(
            &meta.intranode_loc[s as usize],
            Location::Intranode(s),
            blob_idx,
        );
        blob_idx += 1;
        for (k, &j) in meta.supergraph.adj[s as usize].iter().enumerate() {
            verify(
                &meta.superedge_loc[s as usize][k],
                Location::Superedge(s, j),
                blob_idx,
            );
            blob_idx += 1;
        }
    }
    if blob_idx != manifest.blob_crc.len() {
        diags.push(Diagnostic::new(
            Code::ManifestCorrupt,
            Location::Manifest,
            format!(
                "manifest records {} blob checksum(s) but the directory holds {} graph(s)",
                manifest.blob_crc.len(),
                blob_idx
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_snode::{build_snode, RepoInput, SNodeConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("wg_fsck_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// A small two-domain repository with intranode and cross links.
    fn build_fixture(dir: &Path) {
        let urls: Vec<String> = (0..40)
            .map(|i| format!("http://d{}.example/p{i}", i / 20))
            .collect();
        let domains: Vec<u32> = (0..40u32).map(|i| i / 20).collect();
        let g = wg_graph::Graph::from_edges(
            40,
            (0..40u32).flat_map(|i| [(i, (i + 1) % 40), (i, (i + 7) % 40)]),
        );
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let input = RepoInput {
            urls: &url_refs,
            domains: &domains,
            graph: &g,
        };
        build_snode(input, &SNodeConfig::default(), dir).unwrap();
    }

    #[test]
    fn clean_directory_is_clean() {
        let dir = temp_dir("clean");
        build_fixture(&dir);
        let r = fsck(&dir);
        assert!(r.verified);
        assert!(r.is_clean(), "unexpected findings: {r}");
        assert!(r.diagnostics.is_empty());
        assert!(r.sections_checked > 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_single_warning() {
        let dir = temp_dir("nomanifest");
        build_fixture(&dir);
        std::fs::remove_file(dir.join("sums.bin")).unwrap();
        let r = fsck(&dir);
        assert!(!r.verified);
        assert!(r.is_clean());
        assert_eq!(r.num_warnings(), 1);
        assert_eq!(r.diagnostics[0].code, Code::MissingManifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let dir = temp_dir("flips");
        build_fixture(&dir);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "sums.bin")
            .collect();
        names.sort();
        // Flip one bit at a spread of offsets in every data file; each
        // flip must surface as at least one error, and restoring the byte
        // must return the directory to clean.
        for name in names {
            let path = dir.join(&name);
            let orig = std::fs::read(&path).unwrap();
            let step = (orig.len() / 13).max(1);
            for pos in (0..orig.len()).step_by(step) {
                let mut bytes = orig.clone();
                bytes[pos] ^= 1 << (pos % 8);
                std::fs::write(&path, &bytes).unwrap();
                let r = fsck(&dir);
                assert!(
                    r.num_errors() > 0,
                    "flip at {name}:{pos} went undetected: {r}"
                );
            }
            std::fs::write(&path, &orig).unwrap();
        }
        assert!(fsck(&dir).is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_and_corrupt_manifest_reported() {
        let dir = temp_dir("trunc");
        build_fixture(&dir);
        // Truncate an index file.
        let idx = dir.join("index_000.bin");
        let orig = std::fs::read(&idx).unwrap();
        std::fs::write(&idx, &orig[..orig.len() - 1]).unwrap();
        let r = fsck(&dir);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::TruncatedFile && d.location == Location::IndexFile(0)));
        std::fs::write(&idx, &orig).unwrap();
        // Damage the manifest itself.
        let sums = dir.join("sums.bin");
        let mut bytes = std::fs::read(&sums).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&sums, &bytes).unwrap();
        let r = fsck(&dir);
        assert!(!r.verified);
        assert_eq!(r.diagnostics[0].code, Code::ManifestCorrupt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_codec_id_in_verified_header_is_reported() {
        let dir = temp_dir("codec");
        build_fixture(&dir);
        // meta.bin v2 header layout: magic u32, version u32, codec u32.
        let path = dir.join("meta.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        // Re-manifest so every checksum matches: the damage is purely
        // logical now and only the codec-id validation can catch it.
        let m = wg_snode::IntegrityManifest::read(&dir).unwrap().unwrap();
        wg_snode::IntegrityManifest::compute(&dir, m.blob_crc.clone())
            .unwrap()
            .write(&dir)
            .unwrap();
        let r = fsck(&dir);
        assert!(!r.is_clean(), "bad codec id must fail fsck: {r}");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == Code::DecodeError && d.message.contains("codec")),
            "{r}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blob_damage_is_attributed_to_its_graph() {
        let dir = temp_dir("blob");
        build_fixture(&dir);
        // Flip a bit inside the first supernode's intranode blob.
        let meta = SNodeMeta::read(&dir).unwrap();
        let loc = meta.intranode_loc[0];
        let path = dir.join(format!("index_{:03}.bin", loc.file));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[loc.offset as usize] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let r = fsck(&dir);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::BlobChecksum && d.location == Location::Intranode(0)));
        // The containing file also fails its whole-file check.
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::FileChecksum && d.location == Location::IndexFile(loc.file)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
