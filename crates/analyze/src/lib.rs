//! `wg-analyze` — a multi-pass static analyzer for on-disk S-Node
//! representations.
//!
//! The paper's S-Node format (§2, §4) is a tower of invariants: the PageID
//! index must tile `0..num_pages`, a superedge graph exists iff at least one
//! cross link does, reference chains must be acyclic and shallow, negative
//! encodings must actually be smaller, and every bitstream must end where
//! its directory says it does. `wg_snode::verify` checks a subset of these
//! fail-fast and stops at the first problem; this crate walks the whole
//! representation, **collects every finding**, and reports each one as a
//! [`Diagnostic`] with a stable code — machine-readable via
//! [`Report::to_json`], human-readable via [`std::fmt::Display`].
//!
//! See `DESIGN.md` (appendix "Diagnostic codes") for the full code table,
//! the invariant each code enforces, and the paper section it comes from.

#![forbid(unsafe_code)]

mod check;
mod fsck;
pub mod lint;
pub mod model;

pub use check::{check, Summary};
pub use fsck::{fsck, FsckReport};
pub use lint::{lint_workspace, LintCode, LintFinding, LintReport};

/// How bad a finding is.
///
/// `Error` means the representation violates a structural invariant and
/// readers may fail or return wrong data. `Warning` means the data decodes
/// correctly but breaks a convention the builder always upholds (wasted
/// bytes, non-canonical tables, suboptimal encodings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. The numeric part groups by layer: `SN00x`
/// resident metadata, `SN01x` graph structure, `SN02x` reference chains,
/// `SN03x`/`SN04x` encoding choices, `SN05x` bitstream hygiene, `SN06x`
/// index files, `SN07x` cross-layer consistency, `SN1xx` physical
/// integrity (checksums, truncation — the `wgr fsck` pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// SN001: a supernode's page range is empty (gap in the PageID tiling).
    PageidGap,
    /// SN002: the domain index does not map each supernode to exactly one
    /// domain.
    DomainIndexInvalid,
    /// SN010: a superedge graph encodes zero edges (§2: a superedge exists
    /// iff at least one page-level cross link does).
    EmptySuperedge,
    /// SN011: an intranode graph's list count differs from its supernode's
    /// page count.
    IntranodeSizeMismatch,
    /// SN012: a decoded entry (target page, source id, or reference parent)
    /// lies outside its declared universe.
    EntryOutOfRange,
    /// SN013: a graph's bitstream failed to decode at all.
    DecodeError,
    /// SN014: a decoded adjacency list is not strictly ascending.
    ListNotMonotone,
    /// SN020: a reference chain in an encoded list collection is cyclic.
    RefChainCycle,
    /// SN021: a reference chain exceeds the windowed-mode depth cap
    /// ([`wg_snode::refenc::MAX_REF_CHAIN`]).
    RefChainTooDeep,
    /// SN030: a negative superedge encoding stores at least as many edges
    /// as its positive complement would.
    NegativeNotSmaller,
    /// SN040: the stored supernode-graph Huffman table differs from the
    /// canonical table implied by the decoded in-degrees.
    HuffmanNonCanonical,
    /// SN050: a bitstream's decode ends before its declared bit length.
    TrailingBits,
    /// SN060: an index file breaks the size discipline (over the rotation
    /// cap with multiple graphs, unreferenced trailing bytes, or no
    /// referenced graphs at all).
    IndexFileOversize,
    /// SN070: the supernode graph names a superedge whose encoded graph is
    /// missing from or out of bounds in the index files.
    MissingSuperedgeGraph,
    /// SN100: the directory carries no `sums.bin` integrity manifest
    /// (a pre-checksum v1 directory) — nothing can be verified.
    MissingManifest,
    /// SN101: the integrity manifest itself is unreadable (bad magic,
    /// unsupported version, truncation, or failed self-checksum) or
    /// inconsistent with the directory it describes.
    ManifestCorrupt,
    /// SN102: a `meta.bin` section's CRC-32C differs from the manifest.
    MetaSectionChecksum,
    /// SN103: a whole file's CRC-32C differs from the manifest.
    FileChecksum,
    /// SN104: an encoded graph blob's CRC-32C differs from the manifest.
    BlobChecksum,
    /// SN105: a manifest-listed file is missing, unreadable, or has a
    /// different length than recorded.
    TruncatedFile,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PageidGap => "SN001",
            Code::DomainIndexInvalid => "SN002",
            Code::EmptySuperedge => "SN010",
            Code::IntranodeSizeMismatch => "SN011",
            Code::EntryOutOfRange => "SN012",
            Code::DecodeError => "SN013",
            Code::ListNotMonotone => "SN014",
            Code::RefChainCycle => "SN020",
            Code::RefChainTooDeep => "SN021",
            Code::NegativeNotSmaller => "SN030",
            Code::HuffmanNonCanonical => "SN040",
            Code::TrailingBits => "SN050",
            Code::IndexFileOversize => "SN060",
            Code::MissingSuperedgeGraph => "SN070",
            Code::MissingManifest => "SN100",
            Code::ManifestCorrupt => "SN101",
            Code::MetaSectionChecksum => "SN102",
            Code::FileChecksum => "SN103",
            Code::BlobChecksum => "SN104",
            Code::TruncatedFile => "SN105",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Code::PageidGap => "pageid-gap",
            Code::DomainIndexInvalid => "domain-index-invalid",
            Code::EmptySuperedge => "empty-superedge",
            Code::IntranodeSizeMismatch => "intranode-size-mismatch",
            Code::EntryOutOfRange => "entry-out-of-range",
            Code::DecodeError => "decode-error",
            Code::ListNotMonotone => "list-not-monotone",
            Code::RefChainCycle => "ref-chain-cycle",
            Code::RefChainTooDeep => "ref-chain-too-deep",
            Code::NegativeNotSmaller => "negative-superedge-not-smaller",
            Code::HuffmanNonCanonical => "huffman-table-non-canonical",
            Code::TrailingBits => "trailing-bits",
            Code::IndexFileOversize => "index-file-oversize",
            Code::MissingSuperedgeGraph => "supernode-edge-without-superedge-graph",
            Code::MissingManifest => "missing-integrity-manifest",
            Code::ManifestCorrupt => "integrity-manifest-corrupt",
            Code::MetaSectionChecksum => "meta-section-checksum-mismatch",
            Code::FileChecksum => "file-checksum-mismatch",
            Code::BlobChecksum => "graph-blob-checksum-mismatch",
            Code::TruncatedFile => "file-truncated",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            Code::PageidGap
            | Code::DomainIndexInvalid
            | Code::EmptySuperedge
            | Code::IntranodeSizeMismatch
            | Code::EntryOutOfRange
            | Code::DecodeError
            | Code::ListNotMonotone
            | Code::RefChainCycle
            | Code::MissingSuperedgeGraph
            | Code::ManifestCorrupt
            | Code::MetaSectionChecksum
            | Code::FileChecksum
            | Code::BlobChecksum
            | Code::TruncatedFile => Severity::Error,
            Code::RefChainTooDeep
            | Code::NegativeNotSmaller
            | Code::HuffmanNonCanonical
            | Code::TrailingBits
            | Code::IndexFileOversize
            | Code::MissingManifest => Severity::Warning,
        }
    }
}

/// Where in the representation a finding is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// The resident metadata (`meta.bin`) as a whole.
    Meta,
    /// The domain → supernodes index inside `meta.bin`.
    DomainIndex,
    /// The encoded supernode graph inside `meta.bin`.
    Supergraph,
    /// The per-supernode size table inside `meta.bin`.
    SizeTable,
    /// The page renumbering file (`pagemap.bin`).
    Pagemap,
    /// The integrity manifest (`sums.bin`).
    Manifest,
    /// An index file (`index_NNN.bin`).
    IndexFile(u32),
    /// The intranode graph of one supernode.
    Intranode(u32),
    /// The superedge graph between two supernodes.
    Superedge(u32, u32),
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Location::Meta => write!(f, "meta"),
            Location::DomainIndex => write!(f, "domain-index"),
            Location::Supergraph => write!(f, "supergraph"),
            Location::SizeTable => write!(f, "size-table"),
            Location::Pagemap => write!(f, "pagemap.bin"),
            Location::Manifest => write!(f, "sums.bin"),
            Location::IndexFile(no) => write!(f, "index_{no:03}.bin"),
            Location::Intranode(s) => write!(f, "intranode {s}"),
            Location::Superedge(i, j) => write!(f, "superedge {i}->{j}"),
        }
    }
}

/// One finding: a stable code, its severity, where, and a human message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub location: Location,
    pub message: String,
}

impl Diagnostic {
    pub fn new(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} {}] {}: {}",
            self.severity.as_str(),
            self.code.as_str(),
            self.code.name(),
            self.location,
            self.message
        )
    }
}

/// Everything one `check` run found.
#[derive(Debug, Clone)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub summary: Summary,
}

impl Report {
    /// Number of error-severity findings.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable form, one stable JSON object (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"summary\":");
        self.summary.write_json(&mut out);
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"name\":\"");
            out.push_str(d.code.name());
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.as_str());
            out.push_str("\",\"location\":\"");
            json_escape_into(&mut out, &d.location.to_string());
            out.push_str("\",\"message\":\"");
            json_escape_into(&mut out, &d.message);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s); {}",
            self.num_errors(),
            self.num_warnings(),
            self.summary
        )
    }
}

pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}
