//! Source model for the `wg-lint` static analyzer (`wgr lint`).
//!
//! A lightweight, dependency-free Rust tokenizer and item parser — the
//! same zero-dependency discipline as `wg-obs` — that extracts exactly
//! what the SN2xx rules in [`crate::lint`] need: per file, the `impl`
//! blocks, method signatures (receiver mutability, visibility), a
//! conservative name-based call graph, and the special call sites
//! (allocations, lock acquisitions, panics, raw `Instant`s, raw file
//! reads, `Corrupt` message literals). It is *not* a Rust parser: it
//! tracks braces, attributes, and item headers token by token, which is
//! sufficient for rustfmt-formatted workspace code and — crucially —
//! never panics on arbitrary byte soup (property-tested).
//!
//! Everything here is decode-path code in the conventions sense: the
//! input is untrusted text, so no `unwrap`/`expect`/`panic!` outside
//! tests.

use std::path::Path;

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

/// One lexical token. Comments are skipped by the tokenizer; string
/// contents are preserved (rule SN214 compares `Corrupt` messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (contents, escapes left as written).
    Str(String),
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Life,
    /// Any single punctuation character, including braces.
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Tokenizes Rust source, skipping comments (line and nested block).
/// Total function: unterminated literals or comments consume to EOF.
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();
    let at = |i: usize| chars.get(i).copied();
    while i < n {
        let c = match at(i) {
            Some(c) => c,
            None => break,
        };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                while i < n && at(i) != Some('\n') {
                    i += 1;
                }
            }
            '/' if at(i + 1) == Some('*') => {
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    match (at(i), at(i + 1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        (Some('\n'), _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '"' => {
                let (s, ni, nl) = read_string(&chars, i + 1, line);
                toks.push(Token {
                    kind: Tok::Str(s),
                    line,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                let (ni, nl) = read_raw_string(&chars, i, line, &mut toks);
                i = ni;
                line = nl;
            }
            '\'' => {
                let (tok, ni, nl) = read_quote(&chars, i, line);
                toks.push(Token { kind: tok, line });
                i = ni;
                line = nl;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && at(i).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                toks.push(Token {
                    kind: Tok::Ident(ident),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Consume a numeric literal; '.' continues it only when a
                // digit follows, so `self.0.method(` and `0..n` split
                // correctly (tuple-field method calls feed the call graph).
                i += 1;
                while i < n {
                    match at(i) {
                        Some(d) if d.is_alphanumeric() || d == '_' => i += 1,
                        Some('.') if at(i + 1).is_some_and(|d| d.is_ascii_digit()) => i += 2,
                        _ => break,
                    }
                }
                toks.push(Token {
                    kind: Tok::Num,
                    line,
                });
            }
            c => {
                toks.push(Token {
                    kind: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Reads a `"..."` body starting just after the opening quote. Returns
/// (contents, next index, next line).
fn read_string(chars: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let mut out = String::new();
    while let Some(c) = chars.get(i).copied() {
        match c {
            '\\' => {
                out.push('\\');
                if let Some(e) = chars.get(i + 1) {
                    out.push(*e);
                    if *e == '\n' {
                        line += 1;
                    }
                }
                i += 2;
            }
            '"' => return (out, i + 1, line),
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, i, line)
}

/// True when position `i` starts `r"`, `r#`, `b"`, `br"`, or `br#`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    } else if j > i {
        // b"..." byte string (not raw, but handled by the same reader).
        return chars.get(j) == Some(&'"');
    }
    matches!(chars.get(j), Some('"') | Some('#'))
}

/// Reads `r#*"..."#*` / `b"..."` forms starting at the `r`/`b`. Pushes one
/// `Tok::Str`. Returns (next index, next line).
fn read_raw_string(
    chars: &[char],
    mut i: usize,
    mut line: u32,
    toks: &mut Vec<Token>,
) -> (usize, u32) {
    let start_line = line;
    let mut raw = false;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        // Not actually a string (`r#foo` raw identifier): emit the ident.
        let mut ident = String::new();
        while let Some(c) = chars.get(i).copied() {
            if c.is_alphanumeric() || c == '_' {
                ident.push(c);
                i += 1;
            } else {
                break;
            }
        }
        toks.push(Token {
            kind: Tok::Ident(ident),
            line: start_line,
        });
        return (i, line);
    }
    i += 1;
    let mut out = String::new();
    while let Some(c) = chars.get(i).copied() {
        if c == '\n' {
            line += 1;
        }
        if c == '"' {
            // A raw string closes on `"` followed by `hashes` hashes; a
            // plain byte string closes immediately (escapes as in strings).
            if !raw {
                i += 1;
                break;
            }
            let mut k = 0usize;
            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                i += 1 + hashes;
                break;
            }
        }
        if !raw && c == '\\' {
            out.push('\\');
            if let Some(e) = chars.get(i + 1) {
                out.push(*e);
            }
            i += 2;
            continue;
        }
        out.push(c);
        i += 1;
    }
    toks.push(Token {
        kind: Tok::Str(out),
        line: start_line,
    });
    (i, line)
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal),
/// starting at the `'`. Returns (token, next index, next line).
fn read_quote(chars: &[char], i: usize, line: u32) -> (Tok, usize, u32) {
    match chars.get(i + 1).copied() {
        Some('\\') => {
            // Escaped char literal: consume to the closing quote.
            let mut j = i + 2;
            let mut nl = line;
            while let Some(c) = chars.get(j).copied() {
                if c == '\n' {
                    nl += 1;
                }
                j += 1;
                if c == '\'' {
                    break;
                }
            }
            (Tok::Char, j, nl)
        }
        Some(c) if chars.get(i + 2) == Some(&'\'') && c != '\'' => (Tok::Char, i + 3, line),
        Some(c) if c.is_alphabetic() || c == '_' => {
            // Lifetime: consume identifier characters.
            let mut j = i + 1;
            while chars
                .get(j)
                .is_some_and(|c| c.is_alphanumeric() || *c == '_')
            {
                j += 1;
            }
            (Tok::Life, j, line)
        }
        _ => (Tok::Punct('\''), i + 1, line),
    }
}

// ---------------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------------

/// Function visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub` (or a `pub trait` method, which is callable by trait users).
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)`.
    PubScoped,
    /// No visibility keyword.
    Private,
}

/// Receiver of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function / associated function without `self`.
    None,
    /// `self` / `mut self` (by value).
    Owned,
    /// `&self`.
    Shared,
    /// `&mut self`.
    Mut,
}

impl Receiver {
    /// Rendered as it appears in a signature.
    pub fn as_str(self) -> &'static str {
        match self {
            Receiver::None => "",
            Receiver::Owned => "self",
            Receiver::Shared => "&self",
            Receiver::Mut => "&mut self",
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Called name (for macros the `!` is included, e.g. `panic!`).
    pub name: String,
    /// Immediately preceding path qualifier (`Vec` in `Vec::new(`).
    pub qualifier: Option<String>,
    /// True for `.name(` method-call syntax.
    pub is_method: bool,
    /// 1-based line.
    pub line: u32,
}

/// One function (free, inherent, or trait method — with or without body).
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// Visibility (trait methods count as `Pub`).
    pub vis: Visibility,
    /// Receiver mutability.
    pub receiver: Receiver,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Calls made directly by this function's body.
    pub calls: Vec<Call>,
}

impl FnModel {
    /// `Type::name` or bare `name` for free functions.
    pub fn symbol(&self) -> String {
        match &self.owner {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// What a special call site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Heap allocation (`Vec::new`, `to_vec`, `collect`, …).
    Alloc,
    /// Lock acquisition or interior-mutability construction.
    Sync,
    /// `unwrap` / `expect` / `panic!`.
    Panic,
    /// A raw `std::time::Instant` mention.
    Instant,
    /// Raw file read (`read_exact`, `read_to_end`, `fs::read`).
    RawRead,
}

/// One flagged site with enough context to report and baseline it.
#[derive(Debug, Clone)]
pub struct Site {
    /// Classification.
    pub kind: SiteKind,
    /// The offending token, as written (`Vec::new`, `.lock`, `panic!`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// True inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Index into [`FileModel::fns`] of the innermost enclosing function.
    pub fn_idx: Option<usize>,
}

/// Everything the rules need to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Whether the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// All functions, in source order.
    pub fns: Vec<FnModel>,
    /// All special call sites, in source order.
    pub sites: Vec<Site>,
    /// `Corrupt("...")` message literals: (message, line, in_test).
    pub corrupt_msgs: Vec<(String, u32, bool)>,
    /// True for vendored stand-in crates (only SN213 applies).
    pub vendored: bool,
}

/// The parsed workspace.
#[derive(Debug, Clone, Default)]
pub struct SourceModel {
    /// One entry per parsed `.rs` file, sorted by path.
    pub files: Vec<FileModel>,
}

const ALLOC_METHODS: &[&str] = &["to_vec", "collect", "to_string", "to_owned"];
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
];
const ALLOC_MACROS: &[&str] = &["vec!", "format!"];
const SYNC_TYPES: &[&str] = &["Mutex", "RwLock", "RefCell", "Cell", "Condvar", "OnceLock"];
const SYNC_METHODS: &[&str] = &["lock", "borrow_mut"];
const RAW_READ_METHODS: &[&str] = &["read_exact", "read_to_end"];
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "as", "move", "else",
    "unsafe", "ref", "mut", "box", "dyn", "impl", "where", "Some", "Ok", "Err", "None",
];

/// What kind of scope a `{` opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    Impl,
    Trait,
    Mod,
    Fn(usize),
}

#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    owner: Option<String>,
    is_test: bool,
}

/// Parses one file's tokens into a [`FileModel`]. Total and panic-free.
pub fn parse_file(path: &str, src: &str) -> FileModel {
    let toks = tokenize(src);
    let mut file = FileModel {
        path: path.to_string(),
        ..FileModel::default()
    };
    let mut stack: Vec<Scope> = Vec::new();
    // Tokens accumulated since the last item boundary (`;`, `{`, `}`) at
    // the current nesting level — the "pending item header".
    let mut pending: Vec<Token> = Vec::new();
    let mut pending_test_attr = false;
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        let Some(t) = toks.get(i) else { break };
        match &t.kind {
            Tok::Punct('#') => {
                // Attribute: `#[...]` or inner `#![...]`.
                let inner = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('!')));
                let open = i + 1 + usize::from(inner);
                if matches!(toks.get(open).map(|t| &t.kind), Some(Tok::Punct('['))) {
                    let close = match_bracket(&toks, open);
                    let attr = &toks[open + 1..close.min(n)];
                    if inner && attr_is(attr, "forbid", "unsafe_code") {
                        file.has_forbid_unsafe = true;
                    }
                    if attr_is(attr, "cfg", "test") || attr_names(attr, "test") {
                        pending_test_attr = true;
                    }
                    i = close.saturating_add(1);
                } else {
                    i += 1;
                }
            }
            Tok::Punct('{') => {
                let in_test = pending_test_attr || stack.iter().any(|s| s.is_test);
                let scope = classify_header(&pending, &mut file, in_test, &stack, t.line);
                stack.push(scope);
                pending.clear();
                pending_test_attr = false;
                i += 1;
            }
            Tok::Punct('}') => {
                stack.pop();
                pending.clear();
                i += 1;
            }
            Tok::Punct(';') => {
                // A bodiless `fn` (trait required method) still matters.
                if pending.iter().any(|p| p.kind == Tok::Ident("fn".into())) {
                    let in_test = pending_test_attr || stack.iter().any(|s| s.is_test);
                    record_fn(&pending, &mut file, in_test, &stack);
                    pending_test_attr = false;
                }
                pending.clear();
                i += 1;
            }
            _ => {
                scan_site(&toks, i, &mut file, &stack);
                pending.push(t.clone());
                i += 1;
            }
        }
    }
    file
}

/// True when the attribute tokens are `name(arg)` (possibly with more
/// arguments, e.g. `cfg(all(test, ...))` matches ("cfg", "test")).
/// `cfg(not(...))` never matches: that is live-only code.
fn attr_is(attr: &[Token], name: &str, arg: &str) -> bool {
    let has_name = matches!(attr.first().map(|t| &t.kind), Some(Tok::Ident(s)) if s == name);
    has_name
        && !attr
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == "not"))
        && attr
            .iter()
            .skip(1)
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == arg))
}

/// True when the attribute is exactly the single identifier `name`.
fn attr_names(attr: &[Token], name: &str) -> bool {
    attr.len() == 1 && matches!(attr.first().map(|t| &t.kind), Some(Tok::Ident(s)) if s == name)
}

/// Index of the `]` matching the `[` at `open` (or `toks.len()`).
fn match_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        match t.kind {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth <= 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Decides what scope a `{` opens from the pending header tokens, and
/// records a function if the header is a `fn` signature.
fn classify_header(
    pending: &[Token],
    file: &mut FileModel,
    in_test: bool,
    stack: &[Scope],
    line: u32,
) -> Scope {
    let has = |kw: &str| {
        pending
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(s) if s == kw))
    };
    let owner = stack.iter().rev().find_map(|s| s.owner.clone());
    if has("fn") {
        let idx = record_fn(pending, file, in_test, stack);
        return Scope {
            kind: ScopeKind::Fn(idx),
            owner,
            is_test: in_test,
        };
    }
    if has("impl") {
        let name = impl_type_name(pending);
        return Scope {
            kind: ScopeKind::Impl,
            owner: name,
            is_test: in_test,
        };
    }
    if has("trait") {
        let name = ident_after(pending, "trait");
        return Scope {
            kind: ScopeKind::Trait,
            owner: name,
            is_test: in_test,
        };
    }
    if has("mod") {
        return Scope {
            kind: ScopeKind::Mod,
            owner: None,
            is_test: in_test,
        };
    }
    let _ = line;
    Scope {
        kind: ScopeKind::Block,
        owner,
        is_test: in_test,
    }
}

/// The identifier right after keyword `kw` in `pending`.
fn ident_after(pending: &[Token], kw: &str) -> Option<String> {
    let pos = pending
        .iter()
        .position(|t| matches!(&t.kind, Tok::Ident(s) if s == kw))?;
    pending[pos + 1..].iter().find_map(|t| match &t.kind {
        Tok::Ident(s) => Some(s.clone()),
        _ => None,
    })
}

/// The self type of an `impl` header: `impl Foo` → `Foo`,
/// `impl Trait for Foo` → `Foo`, generics skipped.
fn impl_type_name(pending: &[Token]) -> Option<String> {
    let pos = pending
        .iter()
        .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "impl"))?;
    let rest = &pending[pos + 1..];
    // Skip a leading balanced `<...>` generic parameter list.
    let mut i = 0usize;
    if matches!(rest.first().map(|t| &t.kind), Some(Tok::Punct('<'))) {
        let mut depth = 0i64;
        while let Some(t) = rest.get(i) {
            match t.kind {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let after_for = rest[i.min(rest.len())..]
        .iter()
        .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "for"))
        .map(|p| i + p + 1);
    let from = after_for.unwrap_or(i);
    rest.get(from..).and_then(|r| {
        r.iter().find_map(|t| match &t.kind {
            Tok::Ident(s) if s != "for" => Some(s.clone()),
            _ => None,
        })
    })
}

/// Records a function from its header tokens; returns its index.
fn record_fn(pending: &[Token], file: &mut FileModel, in_test: bool, stack: &[Scope]) -> usize {
    let fn_pos = pending
        .iter()
        .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "fn"))
        .unwrap_or(0);
    let line = pending.get(fn_pos).map_or(0, |t| t.line);
    let name = pending[fn_pos + 1..]
        .iter()
        .find_map(|t| match &t.kind {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    let in_trait = stack
        .last()
        .is_some_and(|s| matches!(s.kind, ScopeKind::Trait));
    let vis = {
        let pub_pos = pending[..fn_pos]
            .iter()
            .position(|t| matches!(&t.kind, Tok::Ident(s) if s == "pub"));
        match pub_pos {
            Some(p) => {
                if matches!(pending.get(p + 1).map(|t| &t.kind), Some(Tok::Punct('('))) {
                    Visibility::PubScoped
                } else {
                    Visibility::Pub
                }
            }
            None if in_trait => Visibility::Pub,
            None => Visibility::Private,
        }
    };
    let receiver = parse_receiver(&pending[fn_pos..]);
    let owner = stack.iter().rev().find_map(|s| s.owner.clone());
    file.fns.push(FnModel {
        name,
        owner,
        vis,
        receiver,
        line,
        in_test,
        calls: Vec::new(),
    });
    file.fns.len() - 1
}

/// Receiver from the tokens of `fn name(...)`: inspects the first
/// parameter slot inside the parens.
fn parse_receiver(sig: &[Token]) -> Receiver {
    let open = match sig.iter().position(|t| matches!(t.kind, Tok::Punct('('))) {
        Some(p) => p,
        None => return Receiver::None,
    };
    // First parameter: tokens until the first `,` or `)` at depth 1.
    let mut first: Vec<&Tok> = Vec::new();
    let mut depth = 0i64;
    for t in &sig[open..] {
        match &t.kind {
            Tok::Punct('(') => {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            }
            Tok::Punct(')') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            Tok::Punct(',') if depth == 1 => break,
            _ => {}
        }
        if depth >= 1 {
            first.push(&t.kind);
        }
    }
    let is = |t: &&Tok, s: &str| matches!(t, Tok::Ident(x) if x == s);
    let has_self = first.iter().any(|t| is(t, "self"));
    if !has_self {
        return Receiver::None;
    }
    let has_amp = first.iter().any(|t| matches!(t, Tok::Punct('&')));
    let has_mut = first.iter().any(|t| is(t, "mut"));
    match (has_amp, has_mut) {
        (true, true) => Receiver::Mut,
        (true, false) => Receiver::Shared,
        (false, _) => Receiver::Owned,
    }
}

/// Looks at token `i` and records call edges and special sites.
fn scan_site(toks: &[Token], i: usize, file: &mut FileModel, stack: &[Scope]) {
    let Some(t) = toks.get(i) else { return };
    let Tok::Ident(name) = &t.kind else {
        return;
    };
    let in_test = stack.iter().any(|s| s.is_test);
    let fn_idx = stack.iter().rev().find_map(|s| match s.kind {
        ScopeKind::Fn(idx) => Some(idx),
        _ => None,
    });
    // `Instant` counts when used as a path qualifier (`Instant::now()` et
    // al.) — the raw-timing pattern. A bare mention (imports, an enum
    // variant that happens to share the name) is not a timing call.
    if name == "Instant"
        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct(':')))
        && matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Punct(':')))
        && matches!(toks.get(i + 3).map(|t| &t.kind), Some(Tok::Ident(_)))
    {
        file.sites.push(Site {
            kind: SiteKind::Instant,
            what: "Instant".to_string(),
            line: t.line,
            in_test,
            fn_idx,
        });
    }
    // `Corrupt("...")` message literal.
    if name == "Corrupt" {
        if let (Some(Tok::Punct('(')), Some(Tok::Str(msg))) = (
            toks.get(i + 1).map(|t| &t.kind),
            toks.get(i + 2).map(|t| &t.kind),
        ) {
            file.corrupt_msgs.push((msg.clone(), t.line, in_test));
        }
    }
    // Call detection: `name(`, `name!(`/`name![`/`name!{`, with optional
    // `.`-method or `Qual::` prefixes.
    let next = toks.get(i + 1).map(|t| &t.kind);
    let is_macro = matches!(next, Some(Tok::Punct('!')))
        && matches!(
            toks.get(i + 2).map(|t| &t.kind),
            Some(Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{'))
        );
    let is_call = matches!(next, Some(Tok::Punct('(')));
    if !is_call && !is_macro {
        return;
    }
    if KEYWORDS.contains(&name.as_str()) {
        return;
    }
    let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind);
    let is_method = matches!(prev, Some(Tok::Punct('.')));
    let qualifier = if matches!(prev, Some(Tok::Punct(':')))
        && matches!(
            i.checked_sub(2).and_then(|p| toks.get(p)).map(|t| &t.kind),
            Some(Tok::Punct(':'))
        ) {
        i.checked_sub(3)
            .and_then(|p| toks.get(p))
            .and_then(|t| match &t.kind {
                Tok::Ident(q) => Some(q.clone()),
                _ => None,
            })
    } else {
        None
    };
    let mac_name = if is_macro {
        format!("{name}!")
    } else {
        name.clone()
    };
    let call = Call {
        name: mac_name.clone(),
        qualifier: qualifier.clone(),
        is_method,
        line: t.line,
    };
    if let Some(idx) = fn_idx {
        if let Some(f) = file.fns.get_mut(idx) {
            f.calls.push(call);
        }
    }
    // Classify special sites.
    let site = |kind: SiteKind, what: String| Site {
        kind,
        what,
        line: t.line,
        in_test,
        fn_idx,
    };
    if is_macro {
        if mac_name == "panic!" {
            file.sites.push(site(SiteKind::Panic, mac_name));
        } else if ALLOC_MACROS.contains(&mac_name.as_str()) {
            file.sites.push(site(SiteKind::Alloc, mac_name));
        }
        return;
    }
    if is_method {
        if name == "unwrap" || name == "expect" {
            file.sites.push(site(SiteKind::Panic, format!(".{name}")));
        } else if ALLOC_METHODS.contains(&name.as_str()) {
            file.sites.push(site(SiteKind::Alloc, format!(".{name}")));
        } else if SYNC_METHODS.contains(&name.as_str()) {
            file.sites.push(site(SiteKind::Sync, format!(".{name}")));
        } else if RAW_READ_METHODS.contains(&name.as_str()) {
            file.sites.push(site(SiteKind::RawRead, format!(".{name}")));
        }
        return;
    }
    if let Some(q) = &qualifier {
        let pair = (q.as_str(), name.as_str());
        if ALLOC_QUALIFIED.contains(&pair) {
            file.sites
                .push(site(SiteKind::Alloc, format!("{q}::{name}")));
        } else if SYNC_TYPES.contains(&q.as_str()) || q.starts_with("Atomic") {
            file.sites
                .push(site(SiteKind::Sync, format!("{q}::{name}")));
        } else if pair == ("fs", "read") {
            file.sites
                .push(site(SiteKind::RawRead, "fs::read".to_string()));
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Parses the workspace rooted at `root`: `src/`, `examples/`, and every
/// `crates/*/src` tree, plus `vendor/*/src/lib.rs` crate roots (marked
/// [`FileModel::vendored`]; only the `forbid(unsafe_code)` rule applies to
/// them). Integration-test trees (`crates/*/tests`, `tests/`) are not
/// modeled — they may panic and allocate freely. Returns an error string
/// when `root` has no `crates/` directory at all.
pub fn parse_workspace(root: &Path) -> Result<SourceModel, String> {
    let mut files = Vec::new();
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut paths);
    collect_rs(&root.join("examples"), &mut paths);
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    for e in entries.flatten() {
        collect_rs(&e.path().join("src"), &mut paths);
    }
    paths.sort();
    for p in &paths {
        let Ok(src) = std::fs::read_to_string(p) else {
            continue;
        };
        files.push(parse_file(&rel(root, p), &src));
    }
    if let Ok(vendors) = std::fs::read_dir(root.join("vendor")) {
        let mut vendor_roots: Vec<std::path::PathBuf> = vendors
            .flatten()
            .map(|e| e.path().join("src/lib.rs"))
            .filter(|p| p.is_file())
            .collect();
        vendor_roots.sort();
        for p in &vendor_roots {
            let Ok(src) = std::fs::read_to_string(p) else {
                continue;
            };
            let mut f = parse_file(&rel(root, p), &src);
            f.vendored = true;
            files.push(f);
        }
    }
    Ok(SourceModel { files })
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Workspace-relative display path with forward slashes.
pub fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .display()
        .to_string()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_basics() {
        let toks = tokenize("fn a() { b.c(1); } // x\n\"s\"");
        let idents: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, ["fn", "a", "b", "c"]);
        assert!(toks.iter().any(|t| t.kind == Tok::Str("s".into())));
    }

    #[test]
    fn tuple_field_method_call_splits() {
        let f = parse_file(
            "x.rs",
            "fn f(&mut self) { self.0.out_neighbors_into(p, out); }",
        );
        assert!(f.fns[0]
            .calls
            .iter()
            .any(|c| c.name == "out_neighbors_into" && c.is_method));
    }

    #[test]
    fn receiver_and_visibility() {
        let f = parse_file(
            "x.rs",
            "impl Foo { pub fn a(&mut self) {} fn b(&self) {} pub(crate) fn c(self) {} }\n\
             pub fn free(x: u32) {}",
        );
        let by_name = |n: &str| f.fns.iter().find(|m| m.name == n).unwrap();
        assert_eq!(by_name("a").receiver, Receiver::Mut);
        assert_eq!(by_name("a").vis, Visibility::Pub);
        assert_eq!(by_name("a").owner.as_deref(), Some("Foo"));
        assert_eq!(by_name("b").receiver, Receiver::Shared);
        assert_eq!(by_name("b").vis, Visibility::Private);
        assert_eq!(by_name("c").receiver, Receiver::Owned);
        assert_eq!(by_name("c").vis, Visibility::PubScoped);
        assert_eq!(by_name("free").receiver, Receiver::None);
        assert_eq!(by_name("free").owner, None);
    }

    #[test]
    fn trait_methods_and_bodiless_fns() {
        let f = parse_file(
            "x.rs",
            "pub trait T { fn req(&mut self, p: u32) -> u32; fn opt(&self) {} }",
        );
        let req = f.fns.iter().find(|m| m.name == "req").unwrap();
        assert_eq!(req.receiver, Receiver::Mut);
        assert_eq!(req.vis, Visibility::Pub);
        assert_eq!(req.owner.as_deref(), Some("T"));
    }

    #[test]
    fn impl_trait_for_type_owner() {
        let f = parse_file(
            "x.rs",
            "impl<'a> GraphRep for SNodeRep<'a> { fn go(&mut self) { self.cache.get(k); } }",
        );
        let go = f.fns.iter().find(|m| m.name == "go").unwrap();
        assert_eq!(go.owner.as_deref(), Some("SNodeRep"));
        assert!(go.calls.iter().any(|c| c.name == "get" && c.is_method));
    }

    #[test]
    fn cfg_test_is_excluded() {
        let f = parse_file(
            "x.rs",
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }",
        );
        let panics: Vec<bool> = f
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Panic)
            .map(|s| s.in_test)
            .collect();
        assert_eq!(panics, [false, true]);
    }

    #[test]
    fn sites_classified() {
        let f = parse_file(
            "x.rs",
            "fn f() { let v = Vec::new(); let m = Mutex::new(0); m.lock(); \
             r.read_exact(&mut b); std::fs::read(p); let t = Instant::now(); \
             Err(SNodeError::Corrupt(\"bad magic\")) }",
        );
        let kinds: Vec<SiteKind> = f.sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SiteKind::Alloc));
        assert!(kinds.contains(&SiteKind::Sync));
        assert!(kinds.contains(&SiteKind::RawRead));
        assert!(kinds.contains(&SiteKind::Instant));
        assert_eq!(f.corrupt_msgs.len(), 1);
        assert_eq!(f.corrupt_msgs[0].0, "bad magic");
        assert_eq!(
            f.sites
                .iter()
                .filter(|s| s.kind == SiteKind::RawRead)
                .count(),
            2
        );
    }

    #[test]
    fn forbid_unsafe_inner_attr() {
        assert!(parse_file("x.rs", "#![forbid(unsafe_code)]\nfn a() {}").has_forbid_unsafe);
        assert!(!parse_file("x.rs", "fn a() {}").has_forbid_unsafe);
    }

    #[test]
    fn raw_strings_and_chars_do_not_confuse() {
        let f = parse_file(
            "x.rs",
            "fn f() { let s = r#\"panic!( .unwrap( \"#; let c = '\\n'; let l: &'static str = \"x\"; }",
        );
        assert!(f.sites.iter().all(|s| s.kind != SiteKind::Panic));
    }
}
