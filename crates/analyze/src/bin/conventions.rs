//! `conventions` — thin wrapper over the SN210–SN214 rules of `wg-lint`
//! (`wgr lint`), kept for CI scripts and muscle memory.
//!
//! The five rules this binary historically implemented with substring
//! scans now live in `wg_analyze::lint` on the token-level source model,
//! with file/line spans and stable codes:
//!
//! 1. `#![forbid(unsafe_code)]` in every crate root → **SN213**.
//! 2. No `.unwrap(` / `.expect(` / `panic!(` outside tests on the decode
//!    path → **SN210**. The decode path is now *discovered* (every file
//!    under the decode crates' `src/`, minus an explicit exclusion list)
//!    instead of a hardcoded file list, so a newly added file is checked
//!    by default.
//! 3. Unique `SNodeError::Corrupt("...")` messages → **SN214**.
//! 4. No raw `std::time::Instant` outside `crates/obs` → **SN211**.
//! 5. No raw reads outside `crates/fault` → **SN212**.
//!
//! Usage: `conventions [--root DIR] [--json]`. Exit-code contract matches
//! `wgr check`: 0 clean, 1 violations found, 2 fatal (unreadable root).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use wg_analyze::lint::{self, LintCode, LintReport};

/// The legacy rule subset this wrapper reports on.
const CONVENTION_CODES: &[LintCode] = &[
    LintCode::DecodePathPanic,
    LintCode::RawInstant,
    LintCode::RawRead,
    LintCode::MissingForbidUnsafe,
    LintCode::DuplicateCorruptMessage,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map_or_else(default_root, PathBuf::from);
    let json = args.iter().any(|a| a == "--json");

    let report = match lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            if json {
                println!(
                    "{{\"fatal\":\"{}\"}}",
                    e.replace('\\', "\\\\").replace('"', "\\\"")
                );
            } else {
                eprintln!("fatal: {e}");
            }
            std::process::exit(2);
        }
    };
    let subset = LintReport {
        findings: report
            .findings
            .into_iter()
            .filter(|f| CONVENTION_CODES.contains(&f.code))
            .collect(),
        worklist: Vec::new(),
        files_scanned: report.files_scanned,
        fns_modeled: report.fns_modeled,
    };
    if json {
        println!("{}", subset.to_json());
    } else if subset.findings.is_empty() {
        println!(
            "conventions: ok ({} files, {} functions)",
            subset.files_scanned, subset.fns_modeled
        );
    } else {
        for f in &subset.findings {
            eprintln!("{f}");
        }
        eprintln!("conventions: {} violation(s)", subset.findings.len());
    }
    std::process::exit(i32::from(!subset.findings.is_empty()));
}

/// The workspace root is two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or(manifest)
}
