//! `conventions` — a dependency-free source lint for workspace rules that
//! clippy cannot express.
//!
//! Rules:
//!
//! 1. Every crate root (`src/lib.rs` of each workspace member, plus the
//!    umbrella `src/lib.rs`) carries `#![forbid(unsafe_code)]`.
//! 2. Decode-path library files contain no `.unwrap(`, `.expect(`, or
//!    `panic!(` outside `#[cfg(test)]` modules: corrupt input must come
//!    back as `SNodeError::Corrupt`, never a panic. (`assert!` on encoder
//!    preconditions and `unreachable!` on proven-impossible branches stay
//!    allowed.)
//! 3. Every `SNodeError::Corrupt("...")` message is unique across the
//!    workspace, so a reported corruption pins down its origin.
//! 4. No raw `std::time::Instant` outside `crates/obs`, vendored code,
//!    and test code: every duration must flow through `wg_obs::Stopwatch`
//!    so it can land in the metrics registry and the trace ring.
//! 5. No raw file-read call sites (`.read_exact(`, `.read_to_end(`,
//!    `fs::read(`) outside `crates/fault` (the I/O shim) and test code:
//!    every data-path read must go through `wg_fault::read_exact_at` /
//!    `wg_fault::read_file` so fault injection covers it and transient
//!    errors get the shim's bounded retry.
//!
//! Exit 0 when clean; exit 1 with one line per violation otherwise.
//! Usage: `conventions [--root DIR]` (defaults to the workspace root,
//! found relative to this crate's manifest).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Library files on the decode path: everything that parses untrusted
/// bytes. Kept explicit so a new panic cannot sneak in via a new helper.
const DECODE_PATH_FILES: &[&str] = &[
    "crates/core/src/disk.rs",
    "crates/core/src/refenc.rs",
    "crates/core/src/subgraphs.rs",
    "crates/core/src/supergraph.rs",
    "crates/core/src/repr.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/verify.rs",
    "crates/bitio/src/bitstream.rs",
    "crates/bitio/src/codes.rs",
    "crates/bitio/src/zeta.rs",
    "crates/bitio/src/gaps.rs",
    "crates/bitio/src/rle.rs",
    "crates/bitio/src/huffman.rs",
    "crates/store/src/pager.rs",
    "crates/store/src/buffer.rs",
    "crates/store/src/btree.rs",
    "crates/store/src/heap.rs",
    "crates/store/src/files.rs",
    "crates/store/src/relational.rs",
    "crates/analyze/src/check.rs",
    "crates/analyze/src/fsck.rs",
    "crates/analyze/src/lib.rs",
    "crates/core/src/integrity.rs",
    "crates/fault/src/crc32c.rs",
    "crates/fault/src/io.rs",
];

const BANNED_TOKENS: &[&str] = &[".unwrap(", ".expect(", "panic!("];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map_or_else(default_root, PathBuf::from);
    let mut violations = Vec::new();

    check_forbid_unsafe(&root, &mut violations);
    check_no_panics(&root, &mut violations);
    check_unique_corrupt_messages(&root, &mut violations);
    check_no_raw_instant(&root, &mut violations);
    check_no_raw_reads(&root, &mut violations);

    if violations.is_empty() {
        println!("conventions: ok");
        std::process::exit(0);
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("conventions: {} violation(s)", violations.len());
    std::process::exit(1);
}

/// The workspace root is two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

// --- Rule 1: #![forbid(unsafe_code)] in every crate root --------------------

fn check_forbid_unsafe(root: &Path, violations: &mut Vec<String>) {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for parent in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(parent)) else {
            continue;
        };
        for e in entries.flatten() {
            let lib = e.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    for lib in roots {
        let Ok(src) = std::fs::read_to_string(&lib) else {
            violations.push(format!("{}: unreadable crate root", rel(root, &lib)));
            continue;
        };
        if !src.contains("#![forbid(unsafe_code)]") {
            violations.push(format!(
                "{}: missing #![forbid(unsafe_code)]",
                rel(root, &lib)
            ));
        }
    }
}

// --- Rule 2: no panics on the decode path -----------------------------------

fn check_no_panics(root: &Path, violations: &mut Vec<String>) {
    for file in DECODE_PATH_FILES {
        let path = root.join(file);
        let Ok(src) = std::fs::read_to_string(&path) else {
            violations.push(format!("{file}: decode-path file missing"));
            continue;
        };
        for (lineno, line) in non_test_lines(&src) {
            let code = strip_line_comment(line);
            for tok in BANNED_TOKENS {
                if code.contains(tok) {
                    violations.push(format!(
                        "{file}:{lineno}: `{}` in non-test decode-path code",
                        tok.trim_start_matches('.')
                    ));
                }
            }
        }
    }
}

/// Yields `(1-based line, text)` for lines outside `#[cfg(test)]` blocks.
///
/// A textual brace-tracker, not a parser: when a line contains
/// `#[cfg(test)]`, everything until the matching close brace of the block
/// that starts next is skipped. Good enough for rustfmt-formatted code,
/// which is what the workspace contains (CI runs `cargo fmt --check`).
fn non_test_lines(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut depth: i64 = 0; // brace depth inside a cfg(test) region; 0 = outside
    let mut in_test = false;
    let mut armed = false; // saw #[cfg(test)], waiting for its opening brace
    for (i, line) in src.lines().enumerate() {
        if !in_test && !armed && line.contains("#[cfg(test)]") {
            armed = true;
            continue;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if armed {
            if opens > 0 {
                in_test = true;
                armed = false;
                depth = opens - closes;
                if depth <= 0 {
                    in_test = false;
                }
            }
            continue;
        }
        if in_test {
            depth += opens - closes;
            if depth <= 0 {
                in_test = false;
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

/// Drops a trailing `// ...` comment (string literals containing `//` are
/// rare enough in this codebase that the approximation is acceptable —
/// a false *negative* only, never a false positive, for the banned
/// tokens, which never appear inside the workspace's string literals).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

// --- Rule 4: no raw Instant outside crates/obs ------------------------------

/// Only `crates/obs` (home of the sanctioned `Stopwatch` wrapper),
/// vendored third-party code, and test code may use `std::time::Instant`
/// directly; everything else must time through `wg_obs` so durations can
/// land in the metrics registry and the trace ring.
fn check_no_raw_instant(root: &Path, violations: &mut Vec<String>) {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    collect_rs_files(&root.join("examples"), &mut files);
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for e in crates.flatten() {
            if e.file_name() == "obs" {
                continue;
            }
            collect_rs_files(&e.path(), &mut files);
        }
    }
    files.sort();
    for path in files {
        let name = rel(root, &path);
        // Integration-test trees time freely; `#[cfg(test)]` modules are
        // excluded by non_test_lines below. This file names the token in
        // order to ban it.
        if name.contains("/tests/") || name.ends_with("bin/conventions.rs") {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (lineno, line) in non_test_lines(&src) {
            if has_word(strip_line_comment(line), "Instant") {
                violations.push(format!(
                    "{name}:{lineno}: raw `Instant` outside crates/obs — use wg_obs::Stopwatch"
                ));
            }
        }
    }
}

// --- Rule 5: no raw file reads outside the fault shim -----------------------

/// Tokens that read file bytes without passing through the `wg-fault`
/// shim. Reads that bypass the shim dodge fault injection and skip the
/// bounded retry on transient errors, so new call sites are banned
/// everywhere but `crates/fault` itself and test code.
const RAW_READ_TOKENS: &[&str] = &[".read_exact(", ".read_to_end(", "fs::read("];

fn check_no_raw_reads(root: &Path, violations: &mut Vec<String>) {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    collect_rs_files(&root.join("examples"), &mut files);
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for e in crates.flatten() {
            if e.file_name() == "fault" {
                continue; // the shim is the one sanctioned home of raw reads
            }
            collect_rs_files(&e.path(), &mut files);
        }
    }
    files.sort();
    for path in files {
        let name = rel(root, &path);
        if name.contains("/tests/") || name.ends_with("bin/conventions.rs") {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (lineno, line) in non_test_lines(&src) {
            let code = strip_line_comment(line);
            for tok in RAW_READ_TOKENS {
                if code.contains(tok) {
                    violations.push(format!(
                        "{name}:{lineno}: raw `{}` outside crates/fault — read through \
                         wg_fault::read_exact_at / wg_fault::read_file",
                        tok.trim_start_matches('.').trim_end_matches('(')
                    ));
                }
            }
        }
    }
}

/// True when `word` occurs in `s` with no identifier character on either
/// side (so `Instantaneous` does not count as `Instant`).
fn has_word(s: &str, word: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(i) = s[start..].find(word) {
        let at = start + i;
        let before_ok = !s[..at].chars().next_back().is_some_and(ident);
        let after = at + word.len();
        let after_ok = !s[after..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

// --- Rule 3: unique Corrupt messages ----------------------------------------

fn check_unique_corrupt_messages(root: &Path, violations: &mut Vec<String>) {
    let mut seen: HashMap<String, String> = HashMap::new();
    let mut files: Vec<PathBuf> = Vec::new();
    let Ok(crates) = std::fs::read_dir(root.join("crates")) else {
        violations.push("crates/ directory missing".to_string());
        return;
    };
    for e in crates.flatten() {
        collect_rs_files(&e.path().join("src"), &mut files);
    }
    files.sort();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let name = rel(root, &path);
        // Flatten the non-test, comment-stripped lines so literals that
        // rustfmt wrapped onto the line after `Corrupt(` still match,
        // keeping a line map for reporting.
        let mut flat = String::new();
        let mut line_starts: Vec<(usize, usize)> = Vec::new(); // (offset, lineno)
        for (lineno, line) in non_test_lines(&src) {
            line_starts.push((flat.len(), lineno));
            flat.push_str(strip_line_comment(line));
            flat.push('\n');
        }
        let mut pos = 0usize;
        while let Some(found) = flat[pos..].find("Corrupt(") {
            let after = pos + found + "Corrupt(".len();
            pos = after;
            let Some(msg) = leading_string_literal(&flat[after..]) else {
                continue;
            };
            let lineno = line_starts
                .iter()
                .take_while(|&&(off, _)| off <= after)
                .last()
                .map_or(0, |&(_, l)| l);
            let here = format!("{name}:{lineno}");
            if let Some(prev) = seen.get(&msg) {
                violations.push(format!(
                    "{here}: duplicate Corrupt message {msg:?} (first at {prev})"
                ));
            } else {
                seen.insert(msg, here);
            }
        }
    }
}

/// Parses a leading `"..."` literal (no escapes needed for these messages).
fn leading_string_literal(s: &str) -> Option<String> {
    let s = s.trim_start();
    let rest = s.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .display()
        .to_string()
        .replace('\\', "/")
}
