//! `wg-lint` — SN2xx source diagnostics over the [`crate::model`] source
//! model (`wgr lint`).
//!
//! Where the SN0xx/SN1xx codes audit the *on-disk representation*, the
//! SN2xx codes audit the *source tree* — specifically its readiness for
//! shared-state (`&self`) concurrent reads, the blocker in front of the
//! wg-serve query service:
//!
//! * **SN200** `mut-escape` — a `&mut self` method transitively reachable
//!   from the public query/navigation surface. The full set, ordered by
//!   call depth, is the wg-serve refactor worklist: it must shrink
//!   monotonically and never grow.
//! * **SN201** `sync-outside-allowlist` — a lock-acquisition or
//!   interior-mutability site outside the sanctioned sync module
//!   (`crates/obs`). Shared mutability must stay auditable in one place.
//! * **SN202** `alloc-in-zero-alloc-path` — an allocation call inside a
//!   declared zero-alloc function (`out_neighbors_into`,
//!   `out_neighbors_batch`, `decode_list_into`, the bitio decoders).
//! * **SN203** `mut-shadows-shared` — a public `&mut self` API whose name
//!   exists elsewhere as a `&self` twin: evidence the exclusivity is
//!   incidental, not inherent.
//!
//! SN210–SN214 re-host the five legacy `conventions` rules onto the token
//! model, with file/line spans instead of substring matches. The
//! `conventions` binary is now a thin wrapper over this module.
//!
//! All SN2xx findings are warnings: the committed `LINT_baseline.json`
//! pins today's set, and CI (`wgr lint --deny warn --baseline …`) fails on
//! any finding not in the baseline.

use crate::model::{self, FnModel, Receiver, SiteKind, SourceModel, Visibility};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::path::Path;

// ---------------------------------------------------------------------------
// Policy: where the rules apply
// ---------------------------------------------------------------------------

/// The public query surface: every `pub fn` in these trees is an SN200
/// entry point.
const ENTRY_FILE_PREFIXES: &[&str] = &["crates/query/src/", "crates/serve/src/"];

/// Navigation entry points by name in these files (the core read path;
/// `nav.rs` is listed ahead of the planned split out of `repr.rs`).
const ENTRY_NAV_FILES: &[&str] = &["crates/core/src/repr.rs", "crates/core/src/nav.rs"];
const ENTRY_NAV_NAMES: &[&str] = &["out_neighbors", "out_neighbors_into", "out_neighbors_batch"];

/// Construction barrier for the SN200 walk: functions with these names
/// build, open, or generate state *before* any request is served, so the
/// steady-state read path never runs them. They are neither entry points
/// nor traversed — a `&mut self` reachable only through construction is
/// setup, not a serving-time exclusivity hazard.
const CONSTRUCTION_NAMES: &[&str] = &[
    "build",
    "build_with_layout",
    "create",
    "create_files",
    "open",
    "open_existing",
    "open_with_budget",
    "open_transpose",
    "open_degraded",
    "open_mode",
    "discover",
    "generate",
    // Store population: `BTree::insert` / `HeapFile::insert` fill the
    // relational scheme before serving begins (write-once, read-many).
    // Barring the name also cuts the false edges every `HashMap::insert`
    // call would otherwise add to the name-resolved graph.
    "insert",
];

/// `&mut self` owners exempt from SN200 reporting: per-call local *value*
/// types (readers, cursors, builders) constructed inside a request and
/// never shared across threads. Exclusive access to a stack-local value is
/// not exclusive access to the representation.
const MUT_VALUE_OWNERS: &[&str] = &[
    "BitReader",
    "BitWriter",
    "Cursor",
    "Cur",
    "Nav",
    "LocatorLayout",
    "Rng",
    "GraphBuilder",
    "IndexFileWriter",
    // One wg-serve client owns one socket; connections are never shared.
    "Client",
];

/// `&mut self` owners that live *inside* a shared-state lock: `Pager` is a
/// field of `PoolInner`, which only exists behind `BufferPool`'s mutex, so
/// every serving-time call (flush/clear housekeeping) already holds the
/// pool lock. Exclusivity is provided by the lock, not demanded of the
/// caller.
const MUT_LOCKED_OWNERS: &[&str] = &["Pager"];

/// Modules allowed to own locks and interior mutability (SN201): the
/// metrics registry plus the shared-read-path state (sharded caches,
/// scratch pools, buffer pool, degradation bookkeeping, the server).
const SYNC_ALLOW_PREFIXES: &[&str] = &[
    "crates/obs/src/",
    "crates/core/src/cache.rs",
    "crates/core/src/repr.rs",
    "crates/store/src/buffer.rs",
    "crates/query/src/reps.rs",
    "crates/serve/src/",
];

/// Declared zero-alloc functions by name (SN202), anywhere in the tree.
const ZERO_ALLOC_NAMES: &[&str] = &[
    "out_neighbors_into",
    "out_neighbors_batch",
    "decode_list_into",
];

/// In the bitio crate, every `read_*` decoder is a declared zero-alloc
/// path as well.
const ZERO_ALLOC_BITIO_PREFIX: &str = "crates/bitio/src/";

/// Crates whose sources parse untrusted bytes: every file under them is
/// on the decode path (SN210) unless explicitly excluded below.
const DECODE_CRATE_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/bitio/src/",
    "crates/store/src/",
    "crates/fault/src/",
    "crates/analyze/src/",
];

/// Explicit decode-path exclusions: build-side or tooling files that never
/// see untrusted bytes. Everything else under the decode crates is checked
/// by default, so a newly added file cannot silently escape SN210.
const DECODE_PATH_EXCLUDE: &[&str] = &[
    // Build side: consumes the in-memory corpus the generator produced.
    "crates/core/src/build.rs",
    "crates/core/src/kmeans.rs",
    "crates/core/src/partition.rs",
    "crates/core/src/lib.rs",
    // Fault-injection planner: test tooling that fabricates damage.
    "crates/fault/src/plan.rs",
    "crates/fault/src/lib.rs",
    // Crate roots that only re-export (no decode logic).
    "crates/bitio/src/lib.rs",
    "crates/store/src/lib.rs",
    // Disk-model calculator: arithmetic over trusted stats, no parsing.
    "crates/store/src/diskmodel.rs",
    // The conventions wrapper binary (reports on decode code, is not it).
    "crates/analyze/src/bin/conventions.rs",
];

/// Only `crates/obs` may touch `std::time::Instant` directly (SN211).
const INSTANT_ALLOW_PREFIXES: &[&str] = &["crates/obs/src/"];

/// Only `crates/fault` (the I/O shim) may issue raw *storage* reads
/// (SN212). `crates/serve` reads sockets, not files: wg-fault models disk
/// faults, while a broken peer is ordinary network failure handled by the
/// protocol layer, so the serve crate is exempt.
const RAW_READ_ALLOW_PREFIXES: &[&str] = &["crates/fault/src/", "crates/serve/src/"];

// ---------------------------------------------------------------------------
// Codes and findings
// ---------------------------------------------------------------------------

/// Stable source-diagnostic codes (`SN2xx`). See DESIGN.md appendix
/// "Diagnostic codes" for the full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// SN200: `&mut self` method reachable from the query surface.
    MutEscape,
    /// SN201: lock/interior-mutability site outside the sync allowlist.
    SyncOutsideAllowlist,
    /// SN202: allocation inside a declared zero-alloc function.
    AllocInZeroAllocPath,
    /// SN203: public `&mut self` API shadowing a `&self` twin.
    MutShadowsShared,
    /// SN210: panic token on the decode path (legacy conventions rule 2).
    DecodePathPanic,
    /// SN211: raw `Instant` outside `crates/obs` (legacy rule 4).
    RawInstant,
    /// SN212: raw file read outside `crates/fault` (legacy rule 5).
    RawRead,
    /// SN213: crate root missing `#![forbid(unsafe_code)]` (legacy rule 1).
    MissingForbidUnsafe,
    /// SN214: duplicate `Corrupt` message (legacy rule 3).
    DuplicateCorruptMessage,
}

impl LintCode {
    /// Stable code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::MutEscape => "SN200",
            LintCode::SyncOutsideAllowlist => "SN201",
            LintCode::AllocInZeroAllocPath => "SN202",
            LintCode::MutShadowsShared => "SN203",
            LintCode::DecodePathPanic => "SN210",
            LintCode::RawInstant => "SN211",
            LintCode::RawRead => "SN212",
            LintCode::MissingForbidUnsafe => "SN213",
            LintCode::DuplicateCorruptMessage => "SN214",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::MutEscape => "mut-escape",
            LintCode::SyncOutsideAllowlist => "sync-outside-allowlist",
            LintCode::AllocInZeroAllocPath => "alloc-in-zero-alloc-path",
            LintCode::MutShadowsShared => "mut-shadows-shared",
            LintCode::DecodePathPanic => "decode-path-panic",
            LintCode::RawInstant => "raw-instant",
            LintCode::RawRead => "raw-read",
            LintCode::MissingForbidUnsafe => "missing-forbid-unsafe",
            LintCode::DuplicateCorruptMessage => "duplicate-corrupt-message",
        }
    }

    /// All codes, for table rendering and counting.
    pub const ALL: [LintCode; 9] = [
        LintCode::MutEscape,
        LintCode::SyncOutsideAllowlist,
        LintCode::AllocInZeroAllocPath,
        LintCode::MutShadowsShared,
        LintCode::DecodePathPanic,
        LintCode::RawInstant,
        LintCode::RawRead,
        LintCode::MissingForbidUnsafe,
        LintCode::DuplicateCorruptMessage,
    ];
}

/// One SN2xx finding, anchored to a file/line span.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Stable code.
    pub code: LintCode,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing (or offending) function symbol, `-` when none.
    pub symbol: String,
    /// The offending token or name, `-` when not applicable.
    pub what: String,
    /// Human message.
    pub message: String,
}

impl LintFinding {
    /// Stable identity for baseline comparison: deliberately excludes the
    /// line number so unrelated edits that shift lines do not churn the
    /// baseline. New files, new symbols, or new token kinds are new keys.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.code.as_str(),
            self.file,
            self.symbol,
            self.what
        )
    }
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "warning [{} {}] {}:{}: {}",
            self.code.as_str(),
            self.code.name(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// One SN200 worklist entry: a `&mut self` method the wg-serve refactor
/// must convert to shared access, ordered by distance from the entry
/// points (shallowest first — the natural refactor order).
#[derive(Debug, Clone)]
pub struct WorklistEntry {
    /// `Type::method`.
    pub symbol: String,
    /// Defining file.
    pub file: String,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// BFS depth from the nearest entry point (0 = is an entry point).
    pub depth: u32,
    /// One witness caller (`-` for entry points themselves).
    pub via: String,
    /// True for `pub` items.
    pub public: bool,
}

/// Everything one `wgr lint` run produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by (code, file, line).
    pub findings: Vec<LintFinding>,
    /// The SN200 refactor worklist, ordered by (depth, file, line).
    pub worklist: Vec<WorklistEntry>,
    /// Files parsed into the model.
    pub files_scanned: usize,
    /// Functions modeled (non-test).
    pub fns_modeled: usize,
}

impl LintReport {
    /// Per-code finding counts.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for c in LintCode::ALL {
            m.insert(c.as_str(), 0usize);
        }
        for f in &self.findings {
            if let Some(v) = m.get_mut(f.code.as_str()) {
                *v += 1;
            }
        }
        m
    }

    /// Total number of findings.
    pub fn num_findings(&self) -> usize {
        self.findings.len()
    }

    /// Machine-readable form (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"summary\":{");
        out.push_str(&format!(
            "\"files\":{},\"functions\":{},\"findings\":{},\"worklist\":{},\"counts\":{{",
            self.files_scanned,
            self.fns_modeled,
            self.findings.len(),
            self.worklist.len()
        ));
        for (i, (code, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{code}\":{n}"));
        }
        out.push_str("}},\"worklist\":[");
        for (i, w) in self.worklist.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"symbol\":\"");
            crate::json_escape_into(&mut out, &w.symbol);
            out.push_str("\",\"file\":\"");
            crate::json_escape_into(&mut out, &w.file);
            out.push_str(&format!(
                "\",\"line\":{},\"depth\":{},\"via\":\"",
                w.line, w.depth
            ));
            crate::json_escape_into(&mut out, &w.via);
            out.push_str(&format!("\",\"public\":{}}}", w.public));
        }
        out.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(f.code.as_str());
            out.push_str("\",\"name\":\"");
            out.push_str(f.code.name());
            out.push_str("\",\"severity\":\"warning\",\"file\":\"");
            crate::json_escape_into(&mut out, &f.file);
            out.push_str(&format!("\",\"line\":{},\"symbol\":\"", f.line));
            crate::json_escape_into(&mut out, &f.symbol);
            out.push_str("\",\"what\":\"");
            crate::json_escape_into(&mut out, &f.what);
            out.push_str("\",\"key\":\"");
            crate::json_escape_into(&mut out, &f.key());
            out.push_str("\",\"message\":\"");
            crate::json_escape_into(&mut out, &f.message);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.findings {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} finding(s) over {} files, {} functions; SN200 worklist: {} method(s)",
            self.findings.len(),
            self.files_scanned,
            self.fns_modeled,
            self.worklist.len()
        )
    }
}

// ---------------------------------------------------------------------------
// The analysis
// ---------------------------------------------------------------------------

/// Runs every SN2xx rule over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let model = model::parse_workspace(root)?;
    Ok(lint_model(&model))
}

/// Runs every SN2xx rule over an already-parsed model (fixture tests call
/// this directly).
pub fn lint_model(model: &SourceModel) -> LintReport {
    let mut findings = Vec::new();
    let worklist = rule_mut_escape(model, &mut findings);
    rule_sync_allowlist(model, &mut findings);
    rule_zero_alloc(model, &mut findings);
    rule_mut_shadows_shared(model, &mut findings);
    rule_decode_panics(model, &mut findings);
    rule_raw_instant(model, &mut findings);
    rule_raw_reads(model, &mut findings);
    rule_forbid_unsafe(model, &mut findings);
    rule_corrupt_unique(model, &mut findings);
    findings.sort_by(|a, b| {
        (a.code, &a.file, a.line, &a.what).cmp(&(b.code, &b.file, b.line, &b.what))
    });
    LintReport {
        findings,
        worklist,
        files_scanned: model.files.len(),
        fns_modeled: model
            .files
            .iter()
            .filter(|f| !f.vendored)
            .map(|f| f.fns.iter().filter(|m| !m.in_test).count())
            .sum(),
    }
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// A node in the call graph: (file index, fn index).
type Node = (usize, usize);

fn fn_at(model: &SourceModel, n: Node) -> Option<&FnModel> {
    model.files.get(n.0).and_then(|f| f.fns.get(n.1))
}

/// SN200: BFS over the conservative name-based call graph from the public
/// query/navigation entry points; every reached `&mut self` method is a
/// worklist entry and a finding.
fn rule_mut_escape(model: &SourceModel, findings: &mut Vec<LintFinding>) -> Vec<WorklistEntry> {
    // Name indexes over non-test, non-vendored functions.
    let mut by_method: HashMap<&str, Vec<Node>> = HashMap::new();
    let mut by_free: HashMap<&str, Vec<Node>> = HashMap::new();
    let mut by_qual: HashMap<(&str, &str), Vec<Node>> = HashMap::new();
    let mut entries: Vec<Node> = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        if file.vendored {
            continue;
        }
        for (mi, m) in file.fns.iter().enumerate() {
            if m.in_test {
                continue;
            }
            let node = (fi, mi);
            if m.receiver == Receiver::None {
                by_free.entry(&m.name).or_default().push(node);
            } else {
                by_method.entry(&m.name).or_default().push(node);
            }
            if let Some(owner) = &m.owner {
                by_qual.entry((owner, &m.name)).or_default().push(node);
            }
            let is_entry = (m.vis == Visibility::Pub
                && starts_with_any(&file.path, ENTRY_FILE_PREFIXES))
                || (ENTRY_NAV_FILES.contains(&file.path.as_str())
                    && ENTRY_NAV_NAMES.contains(&m.name.as_str()));
            if is_entry && !CONSTRUCTION_NAMES.contains(&m.name.as_str()) {
                entries.push(node);
            }
        }
    }

    // BFS with parent tracking for witness chains.
    let mut depth: HashMap<Node, u32> = HashMap::new();
    let mut parent: HashMap<Node, Node> = HashMap::new();
    let mut queue: VecDeque<Node> = VecDeque::new();
    for &e in &entries {
        depth.entry(e).or_insert(0);
        queue.push_back(e);
    }
    while let Some(u) = queue.pop_front() {
        let Some(m) = fn_at(model, u) else { continue };
        let d = depth.get(&u).copied().unwrap_or(0);
        for call in &m.calls {
            let targets: Vec<Node> = if call.is_method {
                by_method
                    .get(call.name.as_str())
                    .cloned()
                    .unwrap_or_default()
            } else if let Some(q) = &call.qualifier {
                match by_qual.get(&(q.as_str(), call.name.as_str())) {
                    Some(v) => v.clone(),
                    None => by_free.get(call.name.as_str()).cloned().unwrap_or_default(),
                }
            } else {
                by_free.get(call.name.as_str()).cloned().unwrap_or_default()
            };
            for v in targets {
                if v == u || depth.contains_key(&v) {
                    continue;
                }
                // Construction barrier: build/open/discover style calls run
                // before serving, so the walk stops at them.
                if fn_at(model, v).is_some_and(|t| CONSTRUCTION_NAMES.contains(&t.name.as_str())) {
                    continue;
                }
                depth.insert(v, d + 1);
                parent.insert(v, u);
                queue.push_back(v);
            }
        }
    }

    // Collect reached &mut self methods, minus per-call local value types:
    // exclusivity over a stack-local reader/cursor/builder never blocks a
    // concurrent request.
    let mut reached: Vec<(Node, u32)> = depth
        .iter()
        .filter(|(&n, _)| {
            fn_at(model, n).is_some_and(|m| {
                m.receiver == Receiver::Mut
                    && !m.owner.as_deref().is_some_and(|o| {
                        MUT_VALUE_OWNERS.contains(&o) || MUT_LOCKED_OWNERS.contains(&o)
                    })
            })
        })
        .map(|(&n, &d)| (n, d))
        .collect();
    reached.sort_by_key(|&((fi, mi), d)| {
        let (file, line) = model
            .files
            .get(fi)
            .map(|f| (f.path.clone(), f.fns.get(mi).map_or(0, |m| m.line)))
            .unwrap_or_default();
        (d, file, line)
    });
    let mut worklist = Vec::new();
    for (node, d) in reached {
        let Some(m) = fn_at(model, node) else {
            continue;
        };
        let Some(file) = model.files.get(node.0) else {
            continue;
        };
        let via = parent
            .get(&node)
            .and_then(|&p| fn_at(model, p))
            .map_or_else(|| "-".to_string(), FnModel::symbol);
        let symbol = m.symbol();
        findings.push(LintFinding {
            code: LintCode::MutEscape,
            file: file.path.clone(),
            line: m.line,
            symbol: symbol.clone(),
            what: "-".to_string(),
            message: format!(
                "`{symbol}` takes `&mut self` and is reachable from the query surface \
                 (depth {d}, via {via}) — exclusive access blocks wg-serve"
            ),
        });
        worklist.push(WorklistEntry {
            symbol,
            file: file.path.clone(),
            line: m.line,
            depth: d,
            via,
            public: m.vis == Visibility::Pub,
        });
    }
    worklist
}

/// SN201: sync sites outside the allowlisted module.
fn rule_sync_allowlist(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    for file in &model.files {
        if file.vendored || starts_with_any(&file.path, SYNC_ALLOW_PREFIXES) {
            continue;
        }
        for s in &file.sites {
            if s.kind != SiteKind::Sync || s.in_test {
                continue;
            }
            let symbol = s
                .fn_idx
                .and_then(|i| file.fns.get(i))
                .map_or_else(|| "-".to_string(), FnModel::symbol);
            findings.push(LintFinding {
                code: LintCode::SyncOutsideAllowlist,
                file: file.path.clone(),
                line: s.line,
                symbol,
                what: s.what.clone(),
                message: format!(
                    "`{}` acquires a lock or constructs interior mutability outside \
                     the sanctioned sync module (crates/obs)",
                    s.what
                ),
            });
        }
    }
}

/// SN202: allocation calls inside declared zero-alloc functions.
fn rule_zero_alloc(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    for file in &model.files {
        if file.vendored {
            continue;
        }
        for s in &file.sites {
            if s.kind != SiteKind::Alloc || s.in_test {
                continue;
            }
            let Some(m) = s.fn_idx.and_then(|i| file.fns.get(i)) else {
                continue;
            };
            let declared = ZERO_ALLOC_NAMES.contains(&m.name.as_str())
                || (file.path.starts_with(ZERO_ALLOC_BITIO_PREFIX) && m.name.starts_with("read_"));
            if !declared || m.in_test {
                continue;
            }
            findings.push(LintFinding {
                code: LintCode::AllocInZeroAllocPath,
                file: file.path.clone(),
                line: s.line,
                symbol: m.symbol(),
                what: s.what.clone(),
                message: format!(
                    "`{}` allocates inside declared zero-alloc path `{}`",
                    s.what,
                    m.symbol()
                ),
            });
        }
    }
}

/// SN203: public `&mut self` APIs with a `&self` twin elsewhere.
fn rule_mut_shadows_shared(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    let mut shared_by_name: HashMap<&str, Vec<String>> = HashMap::new();
    for file in &model.files {
        if file.vendored {
            continue;
        }
        for m in &file.fns {
            if !m.in_test && m.receiver == Receiver::Shared {
                shared_by_name.entry(&m.name).or_default().push(m.symbol());
            }
        }
    }
    for file in &model.files {
        if file.vendored {
            continue;
        }
        for m in &file.fns {
            if m.in_test || m.receiver != Receiver::Mut || m.vis != Visibility::Pub {
                continue;
            }
            // Intentional exclusivity is not a shadow: build-side writers
            // (construction names), per-call value types, and lock-guarded
            // interiors keep `&mut self` by design.
            if CONSTRUCTION_NAMES.contains(&m.name.as_str())
                || m.owner.as_deref().is_some_and(|o| {
                    MUT_VALUE_OWNERS.contains(&o) || MUT_LOCKED_OWNERS.contains(&o)
                })
            {
                continue;
            }
            let Some(twins) = shared_by_name.get(m.name.as_str()) else {
                continue;
            };
            let sym = m.symbol();
            let Some(twin) = twins.iter().find(|t| **t != sym) else {
                continue;
            };
            findings.push(LintFinding {
                code: LintCode::MutShadowsShared,
                file: file.path.clone(),
                line: m.line,
                symbol: sym.clone(),
                what: "-".to_string(),
                message: format!(
                    "`{sym}` takes `&mut self` but `{twin}` offers the same operation \
                     under `&self` — the exclusivity is probably incidental"
                ),
            });
        }
    }
}

/// True when `path` is on the decode path (SN210).
pub fn is_decode_path(path: &str) -> bool {
    starts_with_any(path, DECODE_CRATE_PREFIXES) && !DECODE_PATH_EXCLUDE.contains(&path)
}

/// SN210: panic tokens on the decode path.
fn rule_decode_panics(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    for file in &model.files {
        if file.vendored || !is_decode_path(&file.path) {
            continue;
        }
        for s in &file.sites {
            if s.kind != SiteKind::Panic || s.in_test {
                continue;
            }
            let symbol = s
                .fn_idx
                .and_then(|i| file.fns.get(i))
                .map_or_else(|| "-".to_string(), FnModel::symbol);
            findings.push(LintFinding {
                code: LintCode::DecodePathPanic,
                file: file.path.clone(),
                line: s.line,
                symbol,
                what: s.what.clone(),
                message: format!(
                    "`{}` in non-test decode-path code — corrupt input must surface as \
                     SNodeError::Corrupt, never a panic",
                    s.what
                ),
            });
        }
    }
}

/// SN211: raw `Instant` outside `crates/obs`.
fn rule_raw_instant(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    for file in &model.files {
        if file.vendored || starts_with_any(&file.path, INSTANT_ALLOW_PREFIXES) {
            continue;
        }
        for s in &file.sites {
            if s.kind != SiteKind::Instant || s.in_test {
                continue;
            }
            let symbol = s
                .fn_idx
                .and_then(|i| file.fns.get(i))
                .map_or_else(|| "-".to_string(), FnModel::symbol);
            findings.push(LintFinding {
                code: LintCode::RawInstant,
                file: file.path.clone(),
                line: s.line,
                symbol,
                what: "Instant".to_string(),
                message: "raw `Instant` outside crates/obs — time through wg_obs::Stopwatch \
                          so durations reach the metrics registry"
                    .to_string(),
            });
        }
    }
}

/// SN212: raw reads outside the fault shim.
fn rule_raw_reads(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    for file in &model.files {
        if file.vendored || starts_with_any(&file.path, RAW_READ_ALLOW_PREFIXES) {
            continue;
        }
        for s in &file.sites {
            if s.kind != SiteKind::RawRead || s.in_test {
                continue;
            }
            let symbol = s
                .fn_idx
                .and_then(|i| file.fns.get(i))
                .map_or_else(|| "-".to_string(), FnModel::symbol);
            findings.push(LintFinding {
                code: LintCode::RawRead,
                file: file.path.clone(),
                line: s.line,
                symbol,
                what: s.what.clone(),
                message: format!(
                    "raw `{}` outside crates/fault — read through wg_fault::read_exact_at / \
                     wg_fault::read_file so fault injection covers it",
                    s.what
                ),
            });
        }
    }
}

/// SN213: crate roots must carry `#![forbid(unsafe_code)]`.
fn rule_forbid_unsafe(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    for file in &model.files {
        let is_root = file.path == "src/lib.rs"
            || (file.path.ends_with("/src/lib.rs")
                && (file.path.starts_with("crates/") || file.path.starts_with("vendor/")));
        if !is_root {
            continue;
        }
        if !file.has_forbid_unsafe {
            findings.push(LintFinding {
                code: LintCode::MissingForbidUnsafe,
                file: file.path.clone(),
                line: 1,
                symbol: "-".to_string(),
                what: "-".to_string(),
                message: "crate root missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

/// SN214: every `Corrupt("...")` message is unique workspace-wide, so a
/// reported corruption pins down its origin. Only `crates/*/src` files
/// participate (matching the legacy rule's scope).
fn rule_corrupt_unique(model: &SourceModel, findings: &mut Vec<LintFinding>) {
    let mut seen: HashMap<&str, (&str, u32)> = HashMap::new();
    for file in &model.files {
        if file.vendored || !file.path.starts_with("crates/") {
            continue;
        }
        for (msg, line, in_test) in &file.corrupt_msgs {
            if *in_test {
                continue;
            }
            match seen.get(msg.as_str()) {
                Some((first_file, first_line)) => {
                    findings.push(LintFinding {
                        code: LintCode::DuplicateCorruptMessage,
                        file: file.path.clone(),
                        line: *line,
                        symbol: "-".to_string(),
                        what: msg.clone(),
                        message: format!(
                            "duplicate Corrupt message {msg:?} (first at {first_file}:{first_line})"
                        ),
                    });
                }
                None => {
                    seen.insert(msg, (&file.path, *line));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Extracts the set of finding keys from a baseline JSON file previously
/// written by [`LintReport::to_json`] (or `wgr lint --json`). A minimal
/// scanner, not a JSON parser: it collects every `"key":"..."` value,
/// which is exactly what the writer emits and all the gate needs.
pub fn baseline_keys(json: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let needle = "\"key\":\"";
    let mut pos = 0usize;
    while let Some(found) = json.get(pos..).and_then(|s| s.find(needle)) {
        let start = pos + found + needle.len();
        let mut out = String::new();
        let mut chars = json.get(start..).map(str::chars);
        let mut consumed = 0usize;
        if let Some(ref mut it) = chars {
            let mut escaped = false;
            for c in it.by_ref() {
                consumed += c.len_utf8();
                if escaped {
                    out.push(c);
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    break;
                } else {
                    out.push(c);
                }
            }
        }
        keys.insert(out);
        pos = start + consumed.max(1);
    }
    keys
}

/// Splits a report against a baseline: findings whose [`LintFinding::key`]
/// is not in the baseline. An empty result means the gate passes.
pub fn new_findings<'r>(
    report: &'r LintReport,
    baseline: &BTreeSet<String>,
) -> Vec<&'r LintFinding> {
    let mut seen_dup: HashSet<String> = HashSet::new();
    report
        .findings
        .iter()
        .filter(|f| {
            let k = f.key();
            !baseline.contains(&k) && seen_dup.insert(k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;

    fn model_of(files: &[(&str, &str)]) -> SourceModel {
        SourceModel {
            files: files.iter().map(|(p, s)| parse_file(p, s)).collect(),
        }
    }

    #[test]
    fn mut_escape_reaches_through_chain() {
        let m = model_of(&[
            (
                "crates/query/src/reps.rs",
                "impl Rep { pub fn out_neighbors(&mut self, p: u32) { self.inner.navigate(p); } }",
            ),
            (
                "crates/core/src/repr.rs",
                "impl SNode { pub fn navigate(&mut self, p: u32) { self.cache.get(p); } }\n\
                 impl GraphCache { pub fn get(&mut self, k: u32) {} }",
            ),
        ]);
        let r = lint_model(&m);
        let syms: Vec<&str> = r.worklist.iter().map(|w| w.symbol.as_str()).collect();
        assert!(syms.contains(&"Rep::out_neighbors"));
        assert!(syms.contains(&"SNode::navigate"));
        assert!(syms.contains(&"GraphCache::get"));
        // Depth ordering: the entry point first.
        assert_eq!(r.worklist[0].symbol, "Rep::out_neighbors");
        assert_eq!(r.worklist[0].depth, 0);
    }

    #[test]
    fn unreachable_mut_method_not_in_worklist() {
        let m = model_of(&[
            ("crates/query/src/lib.rs", "impl Q { pub fn run(&self) {} }"),
            (
                "crates/core/src/cache.rs",
                "impl GraphCache { pub fn insert(&mut self, k: u32) {} }",
            ),
        ]);
        let r = lint_model(&m);
        assert!(r.worklist.is_empty());
    }

    #[test]
    fn baseline_round_trip() {
        // disk.rs: not in SYNC_ALLOW_PREFIXES (cache.rs now is — it holds
        // the sharded shared-read caches).
        let m = model_of(&[(
            "crates/core/src/disk.rs",
            "impl C { fn f(&mut self) { let m = Mutex::new(0); m.lock(); } }",
        )]);
        let r = lint_model(&m);
        assert!(r
            .findings
            .iter()
            .any(|f| f.code == LintCode::SyncOutsideAllowlist));
        let keys = baseline_keys(&r.to_json());
        assert_eq!(keys.len(), r.findings.len());
        assert!(
            new_findings(&r, &keys).is_empty(),
            "own report baselines itself"
        );
        // A fresh finding not in the baseline is caught.
        let m2 = model_of(&[(
            "crates/core/src/other.rs",
            "impl D { fn g(&mut self) { let m = Mutex::new(0); } }",
        )]);
        let r2 = lint_model(&m2);
        assert_eq!(new_findings(&r2, &keys).len(), 1);
    }
}
