//! End-to-end analyzer tests: a freshly built representation is clean, and
//! a representation with several injected corruptions reports every one of
//! them with its stable code.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use wg_analyze::{check, Code};
use wg_bitio::BitWriter;
use wg_corpus::{Corpus, CorpusConfig};
use wg_snode::codec::{CodecConfig, ListCodec};
use wg_snode::disk::{GraphLocator, IndexFileWriter, SNodeMeta};
use wg_snode::refenc::{encode_lists, RefMode};
use wg_snode::subgraphs::{encode_intranode, encode_superedge, SuperedgePolicy};
use wg_snode::supergraph::SupernodeGraph;
use wg_snode::{build_snode, RepoInput, SNodeConfig};

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_analyze_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn built_representation_is_clean() {
    let dir = temp_dir("clean");
    let corpus = Corpus::generate(CorpusConfig::scaled(1_200, 7));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    build_snode(input, &SNodeConfig::default(), &dir).unwrap();

    let report = check(&dir).unwrap();
    assert!(report.is_clean(), "expected a clean report, got:\n{report}");
    assert_eq!(report.summary.num_pages, 1_200);
    assert!(report.summary.num_supernodes > 0);
    assert!(report.summary.intranode_edges + report.summary.superedge_edges > 0);
    // Totals must agree with the fail-fast verifier.
    let v = wg_snode::verify(&dir).unwrap();
    assert_eq!(report.summary.intranode_edges, v.intranode_edges);
    assert_eq!(report.summary.superedge_edges, v.superedge_edges);
    std::fs::remove_dir_all(&dir).ok();
}

/// Hand-builds a representation with four distinct injected corruptions:
///
/// * SN001 — supernode 1 owns an empty PageID range;
/// * SN010 — superedge 0→2 encodes zero links;
/// * SN030 — superedge 2→0 is stored negative although the complement is
///   larger than the positive form;
/// * SN060 — `index_000.bin` carries trailing unreferenced bytes.
fn craft_corrupt(dir: &std::path::Path) {
    let supergraph = SupernodeGraph {
        adj: vec![vec![2], vec![], vec![0]],
    };
    let cap = 1u64 << 20;
    let mut w = IndexFileWriter::create(dir, cap).unwrap();
    let mut intranode_loc = Vec::new();
    let mut superedge_loc: Vec<Vec<GraphLocator>> = Vec::new();

    // Linear order: intra0, se(0→2), intra1, intra2, se(2→0).
    let intra0 = encode_intranode(&[vec![1], vec![2], vec![]], RefMode::None, ListCodec::GAMMA);
    intranode_loc.push(w.append(&intra0.bytes, intra0.bit_len).unwrap());
    let se02 = encode_superedge(
        &[vec![], vec![], vec![]],
        2,
        RefMode::None,
        SuperedgePolicy::EncodedSize,
        ListCodec::GAMMA,
    );
    superedge_loc.push(vec![w.append(&se02.bytes, se02.bit_len).unwrap()]);

    let intra1 = encode_intranode(&[], RefMode::None, ListCodec::GAMMA);
    intranode_loc.push(w.append(&intra1.bytes, intra1.bit_len).unwrap());
    superedge_loc.push(vec![]);

    let intra2 = encode_intranode(&[vec![1], vec![]], RefMode::None, ListCodec::GAMMA);
    intranode_loc.push(w.append(&intra2.bytes, intra2.bit_len).unwrap());
    // Negative encoding of se(2→0): positive form would store 1 edge
    // (source 0 → target 0); the complement stores 5.
    let neg_lists = vec![vec![1u32, 2], vec![0, 1, 2]];
    let mut bw = BitWriter::new();
    bw.write_bit(true); // kind = negative
    let enc = encode_lists(&neg_lists, 3, RefMode::None, ListCodec::GAMMA);
    bw.append(&enc.bytes, enc.bit_len);
    let (bytes, bits) = bw.finish();
    superedge_loc.push(vec![w.append(&bytes, bits).unwrap()]);
    w.finish().unwrap();

    let meta = SNodeMeta {
        num_pages: 5,
        range_start: vec![0, 3, 3, 5], // supernode 1 is empty
        supergraph,
        supergraph_bits: 0, // recomputed on write
        intranode_loc,
        superedge_loc,
        domain_supernodes: vec![vec![0, 1, 2]],
        max_file_bytes: cap,
        codec: CodecConfig::GAMMA,
    };
    meta.write(dir).unwrap();

    // Trailing garbage past the last referenced graph.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("index_000.bin"))
        .unwrap();
    f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
}

#[test]
fn injected_corruptions_all_reported() {
    let dir = temp_dir("corrupt");
    craft_corrupt(&dir);

    let report = check(&dir).unwrap();
    let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&Code::PageidGap), "missing SN001: {report}");
    assert!(
        codes.contains(&Code::EmptySuperedge),
        "missing SN010: {report}"
    );
    assert!(
        codes.contains(&Code::NegativeNotSmaller),
        "missing SN030: {report}"
    );
    assert!(
        codes.contains(&Code::IndexFileOversize),
        "missing SN060: {report}"
    );
    assert_eq!(codes.len(), 4, "unexpected extra findings: {report}");
    assert_eq!(report.num_errors(), 2);
    assert_eq!(report.num_warnings(), 2);

    // Stable codes surface verbatim in the JSON rendering.
    let json = report.to_json();
    for code in ["SN001", "SN010", "SN030", "SN060"] {
        assert!(json.contains(code), "{code} absent from JSON: {json}");
    }
    assert!(json.contains("\"severity\":\"error\""));
    assert!(json.contains("\"severity\":\"warning\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_meta_is_fatal() {
    let dir = temp_dir("fatal");
    assert!(check(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_index_files_are_diagnosed_not_fatal() {
    let dir = temp_dir("noindex");
    craft_corrupt(&dir);
    for no in 0..3 {
        std::fs::remove_file(wg_snode::disk::index_file_path(&dir, no)).ok();
    }
    let report = check(&dir).unwrap();
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::DecodeError),
        "expected an unreadable-graphs diagnostic: {report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
