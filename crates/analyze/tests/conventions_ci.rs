//! Runs the `conventions` source lint as part of the test suite, so
//! `cargo test` enforces the workspace rules without extra CI plumbing.

#[test]
fn conventions_lint_passes() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_conventions"))
        .output()
        .expect("run conventions binary");
    assert!(
        out.status.success(),
        "conventions lint failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
