//! Runs the `conventions` wrapper (SN210–SN214 via `wg-lint`) as part of
//! the test suite, so `cargo test` enforces the workspace rules without
//! extra CI plumbing — and pins the wrapper's exit-code and `--json`
//! contract.

#[test]
fn conventions_lint_passes() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_conventions"))
        .output()
        .expect("run conventions binary");
    assert!(
        out.status.success(),
        "conventions lint failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.starts_with("conventions: ok"),
        "unexpected output: {text}"
    );
}

#[test]
fn conventions_json_reports_zero_findings() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_conventions"))
        .arg("--json")
        .output()
        .expect("run conventions binary");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"findings\":0"),
        "expected clean tree: {text}"
    );
    assert!(
        text.contains("\"SN210\":0"),
        "JSON must carry per-code counts: {text}"
    );
}

#[test]
fn conventions_exits_2_on_unreadable_root() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_conventions"))
        .args(["--root", "/nonexistent/workspace/path"])
        .output()
        .expect("run conventions binary");
    assert_eq!(out.status.code(), Some(2), "fatal errors must exit 2");
}

#[test]
fn conventions_exits_1_on_violations() {
    // The lint fixture workspace has one deliberate violation per rule.
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badws");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_conventions"))
        .args(["--root", fixture.to_str().expect("utf8 path")])
        .output()
        .expect("run conventions binary");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let text = String::from_utf8_lossy(&out.stderr);
    for code in ["SN210", "SN211", "SN212", "SN213", "SN214"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
}
