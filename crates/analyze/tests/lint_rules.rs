//! SN2xx rule coverage: fixture-based tests (one known-bad snippet per
//! diagnostic, asserting exact code/file/line), tokenizer fuzz, and a
//! self-check against the live workspace pinning that the analysis sees
//! the known exclusivity chains.

use proptest::prelude::*;
use std::path::PathBuf;
use wg_analyze::lint::{self, LintCode, LintReport};
use wg_analyze::model;

/// `crates/analyze/tests/fixtures/badws` — a miniature workspace with one
/// deliberate violation per SN2xx rule.
fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badws")
}

/// The real workspace root (two levels above this crate's manifest).
fn live_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn fixture_report() -> LintReport {
    lint::lint_workspace(&fixture_root()).expect("fixture workspace parses")
}

/// (file, line) pairs for `code`, sorted.
fn spans(report: &LintReport, code: LintCode) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.code == code)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

#[test]
fn sn200_flags_each_reachable_mut_method_once() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::MutEscape),
        vec![
            ("crates/core/src/cache.rs".into(), 8),
            ("crates/core/src/repr.rs".into(), 6),
            ("crates/query/src/lib.rs".into(), 8),
        ]
    );
}

#[test]
fn sn200_worklist_is_depth_ordered_with_witnesses() {
    let r = fixture_report();
    let syms: Vec<&str> = r.worklist.iter().map(|w| w.symbol.as_str()).collect();
    assert_eq!(
        syms,
        vec![
            "SNode::out_neighbors_into",
            "Engine::run",
            "GraphCache::get"
        ]
    );
    assert_eq!(r.worklist[0].depth, 0);
    assert_eq!(r.worklist[0].via, "-");
    assert_eq!(r.worklist[2].depth, 1);
    assert_eq!(r.worklist[2].via, "Engine::run");
}

#[test]
fn sn201_flags_lock_and_interior_mutability_sites() {
    let r = fixture_report();
    // cache.rs also holds sync sites, but it is allowlisted now: it is
    // one of the sanctioned shared-read-path modules. disk.rs is not.
    assert_eq!(
        spans(&r, LintCode::SyncOutsideAllowlist),
        vec![
            ("crates/core/src/disk.rs".into(), 9),
            ("crates/core/src/disk.rs".into(), 16),
        ]
    );
}

#[test]
fn sn202_flags_allocations_in_zero_alloc_paths() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::AllocInZeroAllocPath),
        vec![
            ("crates/bitio/src/zeta.rs".into(), 2),
            ("crates/core/src/repr.rs".into(), 7),
        ]
    );
}

#[test]
fn sn203_flags_mut_api_with_shared_twin() {
    let r = fixture_report();
    let found = spans(&r, LintCode::MutShadowsShared);
    assert_eq!(found, vec![("crates/core/src/cache.rs".into(), 8)]);
    let f = r
        .findings
        .iter()
        .find(|f| f.code == LintCode::MutShadowsShared)
        .expect("SN203 present");
    assert_eq!(f.symbol, "GraphCache::get");
    assert!(f.message.contains("Snapshot::get"), "{}", f.message);
}

#[test]
fn sn210_flags_decode_path_panics() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::DecodePathPanic),
        vec![
            ("crates/bitio/src/zeta.rs".into(), 4),
            ("crates/core/src/repr.rs".into(), 8),
        ]
    );
}

#[test]
fn sn211_flags_raw_instant_usage() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::RawInstant),
        vec![("crates/bitio/src/zeta.rs".into(), 10)]
    );
}

#[test]
fn sn212_flags_raw_reads() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::RawRead),
        vec![("crates/bitio/src/zeta.rs".into(), 12)]
    );
}

#[test]
fn sn213_flags_missing_forbid_unsafe() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::MissingForbidUnsafe),
        vec![("src/lib.rs".into(), 1)]
    );
}

#[test]
fn sn214_flags_duplicate_corrupt_messages() {
    let r = fixture_report();
    assert_eq!(
        spans(&r, LintCode::DuplicateCorruptMessage),
        vec![("crates/bitio/src/zeta.rs".into(), 21)]
    );
    let f = r
        .findings
        .iter()
        .find(|f| f.code == LintCode::DuplicateCorruptMessage)
        .expect("SN214 present");
    assert!(f.message.contains("zeta.rs:17"), "{}", f.message);
}

#[test]
fn json_report_baselines_itself() {
    let r = fixture_report();
    assert!(!r.findings.is_empty());
    let keys = lint::baseline_keys(&r.to_json());
    assert!(lint::new_findings(&r, &keys).is_empty());
    // Dropping one key exposes exactly the findings that carried it.
    let mut partial = keys.clone();
    let removed = partial.pop_first().expect("non-empty");
    let fresh = lint::new_findings(&r, &partial);
    assert!(fresh.iter().all(|f| f.key() == removed));
    assert!(!fresh.is_empty());
}

// ---------------------------------------------------------------------------
// Self-check against the live workspace
// ---------------------------------------------------------------------------

/// The shared-read-path refactor's exit criterion, held for good: the
/// SN200 worklist shrank from 75 (seed) to the handful of lock-mediated
/// residuals below, and CI must fail if it ever grows past 10 again.
#[test]
fn live_worklist_stays_within_shared_read_budget() {
    let r = lint::lint_workspace(&live_root()).expect("live workspace parses");
    let syms: Vec<&str> = r.worklist.iter().map(|w| w.symbol.as_str()).collect();
    assert!(
        r.worklist.len() <= 10,
        "SN200 worklist regrew past the shared-read budget ({} > 10): {syms:?}",
        r.worklist.len()
    );
    // The pre-refactor chains are gone: GraphCache and BufferPool now
    // serve navigation under `&self`.
    assert!(
        !syms
            .iter()
            .any(|s| s.starts_with("GraphCache::") || s.starts_with("BufferPool::")),
        "shared-state chains must stay off the worklist: {syms:?}"
    );
    // What remains is the known lock-mediated residue: memo `put`s called
    // under cache/scratch locks, the quarantine bookkeeping behind its
    // RwLock, and `HistData` — an owned by-value telemetry aggregate whose
    // `&mut self` is plain value mutation, not shared-state exclusivity
    // (the name-based call graph links it through `Histogram::record`).
    // Anything else is a new exclusivity hazard.
    for w in &r.worklist {
        assert!(
            w.symbol.ends_with("::put")
                || w.symbol.starts_with("DegradeState::")
                || w.symbol.starts_with("HistData::"),
            "unexpected SN200 worklist entry {} ({}:{})",
            w.symbol,
            w.file,
            w.line
        );
    }
    // Depth-ordered: the report reads entry-points-first.
    assert!(r.worklist.windows(2).all(|w| w[0].depth <= w[1].depth));
}

#[test]
fn live_tree_passes_rehosted_conventions_rules() {
    let r = lint::lint_workspace(&live_root()).expect("live workspace parses");
    for code in [
        LintCode::DecodePathPanic,
        LintCode::RawInstant,
        LintCode::RawRead,
        LintCode::MissingForbidUnsafe,
        LintCode::DuplicateCorruptMessage,
    ] {
        let hits = spans(&r, code);
        assert!(
            hits.is_empty(),
            "legacy rule {} must stay clean on the live tree: {hits:?}",
            code.as_str()
        );
    }
}

#[test]
fn live_baseline_file_tolerates_current_findings() {
    let path = live_root().join("LINT_baseline.json");
    let text = std::fs::read_to_string(&path).expect("LINT_baseline.json is committed");
    let keys = lint::baseline_keys(&text);
    let r = lint::lint_workspace(&live_root()).expect("live workspace parses");
    let fresh = lint::new_findings(&r, &keys);
    assert!(
        fresh.is_empty(),
        "findings not in LINT_baseline.json (regenerate with `wgr lint --json > LINT_baseline.json`): {:?}",
        fresh.iter().map(|f| f.key()).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// Tokenizer fuzz: never panic, on anything
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tokenizer_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let toks = model::tokenize(&text);
        // Parsing the token stream into a file model must not panic either.
        let file = model::parse_file("soup.rs", &text);
        let _ = (toks.len(), file.fns.len(), file.sites.len());
    }

    #[test]
    fn tokenizer_never_panics_on_rust_like_soup(
        seed in any::<u64>(),
        len in 0usize..64,
    ) {
        // Splice fragments that exercise every tokenizer state machine.
        const FRAGMENTS: &[&str] = &[
            "fn ", "impl ", "&mut self", "\"str", "r#\"raw\"#", "'c'", "'a ",
            "//", "/*", "*/", "#[cfg(test)]", "{", "}", "(", ")", "0.5",
            "x.0.y(", "::", "!", ";", "mod ", "pub ", "Corrupt(", "\\",
        ];
        let mut s = String::new();
        let mut state = seed | 1;
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(FRAGMENTS[(state >> 33) as usize % FRAGMENTS.len()]);
        }
        let _ = model::tokenize(&s);
        let _ = model::parse_file("soup.rs", &s);
    }
}
