#![forbid(unsafe_code)]

pub struct Engine {
    nav: u32,
}

impl Engine {
    pub fn run(&mut self, p: u32) -> u32 {
        self.get(p) + self.nav
    }
}
