pub fn read_zeta(bits: &[u8]) -> Vec<u8> {
    let out: Vec<u8> = bits.iter().copied().collect();
    if out.is_empty() {
        panic!("empty zeta stream");
    }
    out
}

pub fn read_file_header(mut r: impl std::io::Read) -> std::time::Duration {
    let started = Instant::now();
    let mut buf = [0u8; 4];
    let _ = r.read_exact(&mut buf);
    started.elapsed()
}

pub fn corrupt_a() -> SNodeError {
    SNodeError::Corrupt("duplicate message fixture")
}

pub fn corrupt_b() -> SNodeError {
    SNodeError::Corrupt("duplicate message fixture")
}
