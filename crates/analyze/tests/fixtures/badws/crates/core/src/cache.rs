use parking_lot::Mutex;

pub struct GraphCache {
    memo: Mutex<u32>,
}

impl GraphCache {
    pub fn get(&mut self, k: u32) -> u32 {
        let _guard = self.memo.lock();
        k
    }
}

pub struct Snapshot;

impl Snapshot {
    pub fn get(&self, k: u32) -> u32 {
        k
    }
}

pub fn fresh() -> GraphCache {
    GraphCache { memo: Mutex::new(0) }
}
