use std::sync::Mutex;

pub struct DiskQueue {
    inner: Mutex<u32>,
}

impl DiskQueue {
    pub fn push_slot(&self, v: u32) {
        if let Ok(mut g) = self.inner.lock() {
            *g = v;
        }
    }
}

pub fn fresh_queue() -> DiskQueue {
    DiskQueue { inner: Mutex::new(0) }
}
