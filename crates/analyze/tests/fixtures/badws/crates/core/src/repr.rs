pub struct SNode {
    lists: Vec<u32>,
}

impl SNode {
    pub fn out_neighbors_into(&mut self, p: u32, out: &mut Vec<u32>) {
        let scratch: Vec<u32> = Vec::new();
        out.push(self.lists.first().copied().unwrap());
        out.push(scratch.len() as u32 + p);
    }
}
