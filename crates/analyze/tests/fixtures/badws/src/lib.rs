pub fn umbrella() {}
