//! Robustness fuzz: `wg_analyze::check` must never panic, whatever bytes
//! it finds on disk. Each case takes a pristine representation, flips one
//! bit or truncates one file at an arbitrary position, and runs the full
//! analyzer. Any outcome — clean, diagnostics, fatal error — is fine;
//! only a panic (or abort via unclamped allocation) fails the test.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use wg_corpus::{Corpus, CorpusConfig};
use wg_snode::{build_snode, RepoInput, SNodeConfig};

static BASE: OnceLock<PathBuf> = OnceLock::new();
static CASE: AtomicUsize = AtomicUsize::new(0);

/// Builds the pristine representation once per test process.
fn base_dir() -> &'static Path {
    BASE.get_or_init(|| {
        let mut dir = std::env::temp_dir();
        dir.push(format!("wg_analyze_fuzz_base_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = Corpus::generate(CorpusConfig::scaled(400, 11));
        let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
        let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &corpus.graph,
        };
        build_snode(input, &SNodeConfig::default(), &dir).unwrap();
        dir
    })
}

fn fresh_copy() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let mut dst = std::env::temp_dir();
    dst.push(format!("wg_analyze_fuzz_case_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dst).ok();
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(base_dir()).unwrap().flatten() {
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

/// Applies one mutation: bit flip (truncate = false) or truncation.
fn mutate(dir: &Path, file_pick: usize, pos: u64, bit: u8, truncate: bool) {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    files.sort();
    let path = &files[file_pick % files.len()];
    let mut bytes = std::fs::read(path).unwrap();
    if truncate {
        let keep = (pos % (bytes.len() as u64 + 1)) as usize;
        bytes.truncate(keep);
    } else if !bytes.is_empty() {
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1u8 << (bit % 8);
    }
    std::fs::write(path, bytes).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn check_never_panics_on_mutated_bytes(
        file_pick in 0usize..64,
        pos in 0u64..10_000_000,
        bit in proptest::prelude::any::<u8>(),
        truncate in proptest::prelude::any::<bool>(),
    ) {
        let dir = fresh_copy();
        mutate(&dir, file_pick, pos, bit, truncate);
        // Any Result is acceptable; reaching this line at all is the test.
        if let Ok(report) = wg_analyze::check(&dir) {
            let _ = report.to_json();
            let _ = report.to_string();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
