//! Community trawling: small complete-bipartite-core enumeration.
//!
//! "Mining for communities" is the fourth global-access workload the paper
//! names in §1.2, citing Kumar et al.'s *Trawling the Web for emerging
//! cyber-communities* (its reference [15]). Trawling's signature of an
//! emerging community is an `(s, t)`-core: `s` *fan* pages that all link to
//! the same `t` *centre* pages. This module implements the iterative
//! pruning + enumeration pipeline of that paper, sized for the cores the
//! original hunted (s, t ≤ ~10):
//!
//! 1. **Pruning**: repeatedly discard potential fans with out-degree < `t`
//!    and potential centres with in-degree < `s` (each removal can trigger
//!    more), shrinking the graph to the part that can still hold cores.
//! 2. **Enumeration**: for each surviving fan, consider the `t`-subsets of
//!    its (pruned) adjacency list; a centre set shared by ≥ `s` fans is a
//!    core. To stay polynomial we enumerate per-fan candidate centre sets
//!    only when the fan's pruned degree is small (the Kumar et al.
//!    inclusion-exclusion argument shows pruning leaves mostly small
//!    degrees), capping the per-fan subset fan-out.

use crate::{Graph, PageId};
use std::collections::HashMap;

/// One discovered `(s, t)`-core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    /// Fan pages (each links to every centre). Sorted, length ≥ `s`.
    pub fans: Vec<PageId>,
    /// Centre pages. Sorted, length == `t`.
    pub centers: Vec<PageId>,
}

/// Parameters for [`trawl`].
#[derive(Debug, Clone, Copy)]
pub struct TrawlParams {
    /// Minimum number of fans.
    pub s: u32,
    /// Number of centres.
    pub t: u32,
    /// Skip fans whose pruned out-degree exceeds this (keeps the subset
    /// enumeration polynomial; Kumar et al. prune to small degrees too).
    pub max_fan_degree: u32,
    /// Stop after this many cores (0 = unlimited).
    pub max_cores: usize,
}

impl Default for TrawlParams {
    fn default() -> Self {
        Self {
            s: 3,
            t: 3,
            max_fan_degree: 24,
            max_cores: 1000,
        }
    }
}

/// Enumerates `(s, t)`-cores of `g`.
///
/// Returned cores are maximal in their fan sets (all fans sharing the
/// centre set are listed) and deduplicated by centre set.
pub fn trawl(g: &Graph, params: &TrawlParams) -> Vec<Core> {
    let n = g.num_nodes() as usize;
    let (s, t) = (params.s.max(1), params.t.max(1));

    // --- Iterative pruning ---------------------------------------------------
    // alive_fan[v]: v may still be a fan; alive_center[v]: may be a centre.
    let transpose = g.transpose();
    let mut alive_fan = vec![true; n];
    let mut alive_center = vec![true; n];
    let mut changed = true;
    let mut fan_deg: Vec<u32> = (0..n as u32).map(|v| g.out_degree(v)).collect();
    let mut center_deg: Vec<u32> = (0..n as u32).map(|v| transpose.out_degree(v)).collect();
    while changed {
        changed = false;
        for v in 0..n {
            if alive_fan[v] && fan_deg[v] < t {
                alive_fan[v] = false;
                changed = true;
                for &c in g.neighbors(v as PageId) {
                    center_deg[c as usize] = center_deg[c as usize].saturating_sub(1);
                }
            }
            if alive_center[v] && center_deg[v] < s {
                alive_center[v] = false;
                changed = true;
                for &f in transpose.neighbors(v as PageId) {
                    fan_deg[f as usize] = fan_deg[f as usize].saturating_sub(1);
                }
            }
        }
    }

    // --- Enumeration ----------------------------------------------------------
    // Candidate centre-set → fans sharing it.
    let mut by_centers: HashMap<Vec<PageId>, Vec<PageId>> = HashMap::new();
    for v in 0..n as u32 {
        if !alive_fan[v as usize] {
            continue;
        }
        let targets: Vec<PageId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&c| alive_center[c as usize])
            .collect();
        if (targets.len() as u32) < t || targets.len() as u32 > params.max_fan_degree {
            continue;
        }
        // All t-subsets of this fan's centres.
        for_each_subset(&targets, t as usize, &mut |subset| {
            by_centers.entry(subset.to_vec()).or_default().push(v);
        });
    }

    let mut cores: Vec<Core> = by_centers
        .into_iter()
        .filter(|(_, fans)| fans.len() as u32 >= s)
        .map(|(centers, mut fans)| {
            fans.sort_unstable();
            Core { fans, centers }
        })
        .collect();
    cores.sort_by(|a, b| a.centers.cmp(&b.centers));
    if params.max_cores > 0 {
        cores.truncate(params.max_cores);
    }
    cores
}

/// Calls `f` with every `k`-subset of `items` (lexicographic order).
fn for_each_subset(items: &[PageId], k: usize, f: &mut impl FnMut(&[PageId])) {
    if k == 0 || k > items.len() {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let mut buf: Vec<PageId> = idx.iter().map(|&i| items[i]).collect();
    loop {
        f(&buf);
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
        for (j, &ij) in idx.iter().enumerate() {
            buf[j] = items[ij];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_planted_3x3_core() {
        // Fans 0,1,2 all link to centres 10,11,12 (plus noise).
        let mut edges = vec![];
        for f in 0..3u32 {
            for c in 10..13u32 {
                edges.push((f, c));
            }
        }
        edges.push((0, 5));
        edges.push((4, 10));
        let g = Graph::from_edges(13, edges);
        let cores = trawl(&g, &TrawlParams::default());
        assert_eq!(cores.len(), 1, "exactly the planted core: {cores:?}");
        assert_eq!(cores[0].centers, vec![10, 11, 12]);
        assert_eq!(cores[0].fans, vec![0, 1, 2]);
    }

    #[test]
    fn no_core_in_a_sparse_path() {
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1)));
        assert!(trawl(&g, &TrawlParams::default()).is_empty());
    }

    #[test]
    fn pruning_removes_underqualified_pages() {
        // Only 2 fans share 3 centres; with s=3 nothing qualifies.
        let mut edges = vec![];
        for f in 0..2u32 {
            for c in 5..8u32 {
                edges.push((f, c));
            }
        }
        let g = Graph::from_edges(8, edges);
        assert!(trawl(&g, &TrawlParams::default()).is_empty());
        // With s=2 the same structure is a core.
        let cores = trawl(
            &g,
            &TrawlParams {
                s: 2,
                ..Default::default()
            },
        );
        assert_eq!(cores.len(), 1);
        assert_eq!(cores[0].fans, vec![0, 1]);
    }

    #[test]
    fn overlapping_cores_are_both_found() {
        // Fans {0,1,2} → {10,11,12}; fans {1,2,3} → {11,12,13}.
        let mut edges = vec![];
        for f in 0..3u32 {
            for c in 10..13u32 {
                edges.push((f, c));
            }
        }
        for f in 1..4u32 {
            for c in 11..14u32 {
                edges.push((f, c));
            }
        }
        let g = Graph::from_edges(14, edges);
        let cores = trawl(&g, &TrawlParams::default());
        let center_sets: Vec<&Vec<u32>> = cores.iter().map(|c| &c.centers).collect();
        assert!(center_sets.contains(&&vec![10, 11, 12]));
        assert!(center_sets.contains(&&vec![11, 12, 13]));
    }

    #[test]
    fn max_cores_caps_output() {
        // A 6-fan × 6-centre biclique holds C(6,3)=20 centre subsets.
        let mut edges = vec![];
        for f in 0..6u32 {
            for c in 10..16u32 {
                edges.push((f, c));
            }
        }
        let g = Graph::from_edges(16, edges);
        let cores = trawl(
            &g,
            &TrawlParams {
                max_cores: 5,
                ..Default::default()
            },
        );
        assert_eq!(cores.len(), 5);
    }

    #[test]
    fn huge_degree_fan_is_pruned_down_and_joins_the_core() {
        // Fan 0 links to 399 centres, but only centres 1–3 survive pruning
        // (the rest have in-degree 1 < s). Fan 0's *pruned* list is then
        // {1,2,3}, so it legitimately joins the core — and enumeration
        // never touches the 399-wide raw list (no combinatorial blow-up).
        let mut edges: Vec<(u32, u32)> = (1..400u32).map(|c| (0, c)).collect();
        for f in 400..403u32 {
            for c in 1..4u32 {
                edges.push((f, c));
            }
        }
        let g = Graph::from_edges(403, edges);
        let cores = trawl(&g, &TrawlParams::default());
        assert_eq!(cores.len(), 1);
        assert_eq!(cores[0].centers, vec![1, 2, 3]);
        assert_eq!(cores[0].fans, vec![0, 400, 401, 402]);
    }

    #[test]
    fn raw_degree_cap_applies_after_pruning() {
        // 30 fans × 30 centres biclique: every fan's pruned degree is 30,
        // above max_fan_degree=24, so enumeration skips them all rather
        // than exploding into C(30,3) subsets per fan.
        let mut edges = vec![];
        for f in 0..30u32 {
            for c in 30..60u32 {
                edges.push((f, c));
            }
        }
        let g = Graph::from_edges(60, edges);
        let cores = trawl(&g, &TrawlParams::default());
        assert!(cores.is_empty(), "oversized fans are skipped by design");
    }

    #[test]
    fn subset_enumeration_is_correct() {
        let items = [1u32, 2, 3, 4];
        let mut seen = Vec::new();
        for_each_subset(&items, 2, &mut |s| seen.push(s.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
        // Degenerate cases.
        let mut count = 0;
        for_each_subset(&items, 0, &mut |_| count += 1);
        for_each_subset(&items, 5, &mut |_| count += 1);
        assert_eq!(count, 0);
    }
}
