//! Effective-diameter estimation — one of the paper's canonical
//! "global access" computations (§1.2 lists "computing the Web graph
//! diameter" next to SCC and PageRank).
//!
//! Exact diameter needs all-pairs BFS; Web-graph practice (Broder et al.,
//! whom the paper cites for Web structure) samples sources and reports the
//! distance distribution. [`estimate_diameter`] runs BFS from a
//! deterministic sample and returns the maximum observed finite distance
//! plus the effective (90th-percentile) diameter.

use crate::traversal::bfs_distances;
use crate::{Graph, PageId};

/// Result of a sampled diameter estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiameterEstimate {
    /// Largest finite distance observed from any sampled source.
    pub max_distance: u32,
    /// 90th percentile of observed finite distances (the "effective
    /// diameter" of the Web-measurement literature).
    pub effective_diameter: u32,
    /// Sources actually sampled.
    pub sources_sampled: u32,
    /// Finite (reachable) distances observed in total.
    pub pairs_observed: u64,
}

/// Estimates the diameter by BFS from `samples` deterministic sources
/// (evenly spread over the id space).
pub fn estimate_diameter(g: &Graph, samples: u32) -> DiameterEstimate {
    let n = g.num_nodes();
    if n == 0 || samples == 0 {
        return DiameterEstimate {
            max_distance: 0,
            effective_diameter: 0,
            sources_sampled: 0,
            pairs_observed: 0,
        };
    }
    let samples = samples.min(n);
    let stride = (n / samples).max(1);
    let mut histogram: Vec<u64> = Vec::new();
    let mut max_distance = 0u32;
    let mut pairs = 0u64;
    let mut sampled = 0u32;
    let mut src: PageId = 0;
    while src < n && sampled < samples {
        let dist = bfs_distances(g, src);
        for &d in &dist {
            if d != u32::MAX && d > 0 {
                if histogram.len() <= d as usize {
                    histogram.resize(d as usize + 1, 0);
                }
                histogram[d as usize] += 1;
                pairs += 1;
                max_distance = max_distance.max(d);
            }
        }
        sampled += 1;
        src = src.saturating_add(stride);
    }
    // Effective diameter: smallest d with ≥90% of finite pairs within d.
    let target = (pairs as f64 * 0.9).ceil() as u64;
    let mut acc = 0u64;
    let mut effective = 0u32;
    for (d, &c) in histogram.iter().enumerate() {
        acc += c;
        if acc >= target {
            effective = d as u32;
            break;
        }
    }
    DiameterEstimate {
        max_distance,
        effective_diameter: effective,
        sources_sampled: sampled,
        pairs_observed: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_diameter() {
        // 0 -> 1 -> ... -> 9: from source 0 the farthest node is 9 hops.
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1)));
        let est = estimate_diameter(&g, 10);
        assert_eq!(est.max_distance, 9);
        assert!(est.effective_diameter <= 9);
        assert_eq!(est.sources_sampled, 10);
    }

    #[test]
    fn cycle_diameter() {
        let n = 12u32;
        let g = Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
        let est = estimate_diameter(&g, n);
        assert_eq!(est.max_distance, n - 1, "directed cycle: farthest is n-1");
    }

    #[test]
    fn clique_has_diameter_one() {
        let n = 8u32;
        let edges = (0..n).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)));
        let g = Graph::from_edges(n, edges);
        let est = estimate_diameter(&g, n);
        assert_eq!(est.max_distance, 1);
        assert_eq!(est.effective_diameter, 1);
    }

    #[test]
    fn disconnected_pairs_are_ignored() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let est = estimate_diameter(&g, 4);
        assert_eq!(est.max_distance, 1);
        assert_eq!(est.pairs_observed, 2);
    }

    #[test]
    fn empty_graph_and_zero_samples() {
        let g = Graph::from_edges(0, []);
        assert_eq!(estimate_diameter(&g, 5).sources_sampled, 0);
        let g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(estimate_diameter(&g, 0).sources_sampled, 0);
    }

    #[test]
    fn effective_diameter_is_at_most_max() {
        let g = Graph::from_edges(30, (0..29).map(|i| (i, i + 1)));
        let est = estimate_diameter(&g, 7);
        assert!(est.effective_diameter <= est.max_distance);
        assert!(est.pairs_observed > 0);
    }
}
