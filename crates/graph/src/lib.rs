//! In-memory Web-graph kernel.
//!
//! Everything in this workspace manipulates directed graphs whose vertices
//! are Web pages identified by dense [`PageId`]s. This crate provides the
//! uncompressed substrate those systems are built on and compared against:
//!
//! * [`Graph`] — an immutable compressed-sparse-row adjacency structure with
//!   O(1) list access, plus a [`GraphBuilder`] for incremental construction.
//! * [`traversal`] — BFS, bounded neighbourhoods and frontier expansion (the
//!   primitive operations behind the paper's six complex queries).
//! * [`scc`] — iterative Tarjan strongly-connected components (a "global
//!   access" task from §1.2).
//! * [`pagerank`] — power-iteration PageRank (used both as a global-access
//!   workload and as the ranking index consumed by the query layer).
//! * [`diameter`] — sampled effective-diameter estimation (another §1.2
//!   global task).
//! * [`bowtie`] — Broder-style bow-tie decomposition (the structural
//!   picture the paper's Observation citations rest on).
//! * [`trawl`] — Kumar et al. community trawling (§1.2's "mining for
//!   communities"): complete-bipartite-core enumeration with pruning.
//! * [`hits`] — Kleinberg's HITS over a base set (Query 3 of Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bowtie;
pub mod csr;
pub mod diameter;
pub mod hits;
pub mod pagerank;
pub mod scc;
pub mod traversal;
pub mod trawl;

pub use csr::{Graph, GraphBuilder};

/// Dense page identifier.
///
/// The paper renumbers pages so each supernode owns a contiguous id range
/// (§3.3); ids are therefore plain integers, not URLs. `u32` supports
/// repositories of up to ~4.2 billion pages, far beyond the 115 M pages the
/// paper's largest data set uses.
pub type PageId = u32;
