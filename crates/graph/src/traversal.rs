//! Breadth-first traversal and bounded neighbourhood operations.
//!
//! The six complex queries of Table 3 are all built from a handful of graph
//! navigation primitives: out-/in-neighbourhoods of a page *set*, bounded
//! BFS, and induced subgraphs. This module provides them for the plain CSR
//! graph; the compressed representations implement the same operations
//! through the `GraphRep` trait in `wg-query`.

use crate::{Graph, PageId};
use std::collections::VecDeque;

/// The union of the out-neighbours of every page in `sources`, excluding the
/// sources themselves. Returned sorted and deduplicated.
pub fn out_neighborhood(g: &Graph, sources: &[PageId]) -> Vec<PageId> {
    let mut out: Vec<PageId> = sources
        .iter()
        .flat_map(|&s| g.neighbors(s).iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    let source_set: std::collections::HashSet<PageId> = sources.iter().copied().collect();
    out.retain(|v| !source_set.contains(v));
    out
}

/// Breadth-first search from `start`, returning `dist[v]` (`u32::MAX` for
/// unreachable vertices).
pub fn bfs_distances(g: &Graph, start: PageId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes() as usize];
    let mut queue = VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All vertices within `radius` hops of any page in `sources` (following
/// out-edges), including the sources. Sorted ascending.
pub fn ball(g: &Graph, sources: &[PageId], radius: u32) -> Vec<PageId> {
    let mut dist = vec![u32::MAX; g.num_nodes() as usize];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    let mut out = Vec::new();
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        out.push(u);
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// The subgraph induced by `pages`: vertices are re-numbered 0..k following
/// the (sorted) order of `pages`, and only edges with both endpoints inside
/// the set survive. Returns the induced graph plus the sorted vertex list
/// (mapping local index → original id).
pub fn induced_subgraph(g: &Graph, pages: &[PageId]) -> (Graph, Vec<PageId>) {
    let mut sorted: Vec<PageId> = pages.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let index_of = |v: PageId| sorted.binary_search(&v).ok();
    let mut edges = Vec::new();
    for (li, &u) in sorted.iter().enumerate() {
        for &v in g.neighbors(u) {
            if let Some(lj) = index_of(v) {
                edges.push((li as PageId, lj as PageId));
            }
        }
    }
    (Graph::from_edges(sorted.len() as u32, edges), sorted)
}

/// Counts links from set `a` into set `b` (sets need not be disjoint;
/// self-pairs count when the edge exists).
pub fn count_links_between(g: &Graph, a: &[PageId], b: &[PageId]) -> u64 {
    let mut bset: Vec<PageId> = b.to_vec();
    bset.sort_unstable();
    bset.dedup();
    let mut count = 0u64;
    for &u in a {
        for &v in g.neighbors(u) {
            if bset.binary_search(&v).is_ok() {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn out_neighborhood_excludes_sources() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert_eq!(out_neighborhood(&g, &[0, 1]), vec![2]);
        assert_eq!(out_neighborhood(&g, &[2]), vec![3]);
        assert_eq!(out_neighborhood(&g, &[3]), Vec::<PageId>::new());
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 3);
        assert_eq!(d[4], 1);
        assert_eq!(d[0], u32::MAX);
    }

    #[test]
    fn ball_respects_radius() {
        let g = path_graph(6);
        assert_eq!(ball(&g, &[0], 0), vec![0]);
        assert_eq!(ball(&g, &[0], 2), vec![0, 1, 2]);
        assert_eq!(ball(&g, &[0, 4], 1), vec![0, 1, 4, 5]);
    }

    #[test]
    fn induced_subgraph_preserves_internal_edges_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let (sub, verts) = induced_subgraph(&g, &[1, 3, 2]);
        assert_eq!(verts, vec![1, 2, 3]);
        // local ids: 1->0, 2->1, 3->2; surviving edges 1->2, 2->3, 1->3
        assert_eq!(sub.num_edges(), 3);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(sub.has_edge(0, 2));
        assert!(!sub.has_edge(2, 0)); // 3->4 left the set
    }

    #[test]
    fn count_links_between_sets() {
        let g = Graph::from_edges(6, [(0, 3), (0, 4), (1, 3), (2, 5), (3, 0)]);
        assert_eq!(count_links_between(&g, &[0, 1, 2], &[3, 4]), 3);
        assert_eq!(count_links_between(&g, &[3], &[0]), 1);
        assert_eq!(count_links_between(&g, &[4, 5], &[0, 1, 2]), 0);
    }

    #[test]
    fn induced_subgraph_of_empty_set() {
        let g = path_graph(3);
        let (sub, verts) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_nodes(), 0);
        assert!(verts.is_empty());
    }
}
