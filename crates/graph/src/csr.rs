//! Compressed-sparse-row directed graphs.
//!
//! [`Graph`] is the workspace's canonical in-memory form: an offsets array
//! and a flat, per-source-sorted target array. It is the input to every
//! compressed representation and the ground truth every representation is
//! tested against.

use crate::PageId;

/// Immutable directed graph in compressed-sparse-row form.
///
/// Adjacency lists are sorted ascending and deduplicated. Self-loops are
/// permitted (they occur on the real Web: pages linking to themselves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated, per-source ascending adjacency lists.
    targets: Vec<PageId>,
}

impl Graph {
    /// Builds a graph from an edge list; duplicates are removed, targets are
    /// sorted, and vertex count is fixed at `num_nodes`.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: u32, edges: impl IntoIterator<Item = (PageId, PageId)>) -> Self {
        let mut b = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Builds a graph from per-vertex adjacency lists (sorted + deduped
    /// internally).
    pub fn from_adjacency(lists: Vec<Vec<PageId>>) -> Self {
        let n = lists.len() as u32;
        let mut b = GraphBuilder::new(n);
        for (u, list) in lists.into_iter().enumerate() {
            for v in list {
                b.add_edge(u as PageId, v);
            }
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: PageId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: PageId) -> &[PageId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Whether the edge `u → v` exists (binary search: O(log deg)).
    #[inline]
    pub fn has_edge(&self, u: PageId, v: PageId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all edges in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = (PageId, PageId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Builds the transpose graph (every edge reversed). The paper calls
    /// this `WGᵀ`; its edges are "backlinks".
    pub fn transpose(&self) -> Graph {
        let n = self.num_nodes() as usize;
        let mut in_deg = vec![0u64; n];
        for &t in &self.targets {
            in_deg[t as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + in_deg[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as PageId; self.targets.len()];
        for u in 0..self.num_nodes() {
            for &v in self.neighbors(u) {
                targets[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sources are visited in ascending order, so each reversed list is
        // already sorted; no per-list sort needed.
        Graph { offsets, targets }
    }

    /// Mean out-degree (0 for the empty graph).
    pub fn mean_out_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / f64::from(self.num_nodes())
        }
    }

    /// Approximate heap footprint in bytes (offsets + targets arrays).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<PageId>()
    }
}

/// Incremental builder for [`Graph`].
///
/// Edges may be added in any order; duplicates are tolerated and removed at
/// [`GraphBuilder::build`] time.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<(PageId, PageId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with exactly `num_nodes` vertices.
    pub fn new(num_nodes: u32) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Creates a builder that expects roughly `hint` edges.
    pub fn with_edge_capacity(num_nodes: u32, hint: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::with_capacity(hint),
        }
    }

    /// Number of vertices the final graph will have.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Adds the directed edge `u → v`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: PageId, v: PageId) {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge ({u}, {v}) outside vertex range 0..{}",
            self.num_nodes
        );
        self.edges.push((u, v));
    }

    /// Finalises into CSR form: counting sort by source, per-list sort,
    /// dedup.
    pub fn build(mut self) -> Graph {
        let n = self.num_nodes as usize;
        // Sort by (source, target); unstable sort of pairs is fine.
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut offsets = vec![0u64; n + 1];
        for &(u, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let targets = self.edges.into_iter().map(|(_, v)| v).collect();
        Graph { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 1);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = Graph::from_edges(3, [(0, 1), (0, 1), (0, 2), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn out_of_order_insertion_yields_sorted_lists() {
        let g = Graph::from_edges(5, [(0, 4), (0, 1), (0, 3), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = Graph::from_edges(3, []);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        for v in 0..3 {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn self_loops_are_kept() {
        let g = Graph::from_edges(2, [(0, 0), (0, 1)]);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_nodes(), g.num_nodes());
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u), "transpose missing edge {v}->{u}");
        }
        // Transpose lists must also be sorted.
        for v in 0..t.num_nodes() {
            let l = t.neighbors(v);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let g = diamond();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn edges_iterator_covers_all_edges_in_order() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn from_adjacency_matches_from_edges() {
        let a = Graph::from_adjacency(vec![vec![2, 1], vec![], vec![0]]);
        let b = Graph::from_edges(3, [(0, 1), (0, 2), (2, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside vertex range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn mean_out_degree() {
        let g = diamond();
        assert!((g.mean_out_degree() - 1.25).abs() < 1e-12);
        let empty = Graph::from_edges(0, []);
        assert_eq!(empty.mean_out_degree(), 0.0);
    }
}
