//! PageRank by power iteration.
//!
//! The paper's Analysis 1 weights pages by "normalized PageRank value", and
//! PageRank computation is its flagship global-access workload (§1.2,
//! citing Brin & Page).
//! This implementation follows the standard random-surfer model with uniform
//! teleportation and uniform redistribution of dangling-node mass; ranks sum
//! to 1 at every iteration.

use crate::Graph;

/// Parameters for [`pagerank`].
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link); 0.85 classically.
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Rank per vertex; sums to 1 (within floating-point error).
    pub ranks: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: u32,
    /// Final L1 delta.
    pub delta: f64,
}

/// Computes PageRank over `g`.
#[allow(clippy::needless_range_loop)] // ids index several parallel arrays
pub fn pagerank(g: &Graph, config: &PageRankConfig) -> PageRankResult {
    let n = g.num_nodes() as usize;
    if n == 0 {
        return PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            delta: 0.0,
        };
    }
    let uniform = 1.0 / n as f64;
    let mut ranks = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let d = config.damping;

    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    while iterations < config.max_iterations && delta > config.tolerance {
        // Dangling mass is redistributed uniformly.
        let mut dangling = 0.0f64;
        for v in 0..n {
            if g.out_degree(v as u32) == 0 {
                dangling += ranks[v];
            }
        }
        let base = (1.0 - d) * uniform + d * dangling * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for u in 0..n {
            let deg = g.out_degree(u as u32);
            if deg == 0 {
                continue;
            }
            let share = d * ranks[u] / f64::from(deg);
            for &v in g.neighbors(u as u32) {
                next[v as usize] += share;
            }
        }
        delta = ranks
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>();
        std::mem::swap(&mut ranks, &mut next);
        iterations += 1;
    }

    PageRankResult {
        ranks,
        iterations,
        delta,
    }
}

/// Returns vertex ids sorted by descending rank (ties by ascending id).
pub fn top_ranked(ranks: &[f64], k: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..ranks.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        ranks[b as usize]
            .partial_cmp(&ranks[a as usize])
            .expect("ranks are finite")
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks_sum_to_one(r: &PageRankResult) {
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to {sum}");
    }

    #[test]
    fn symmetric_cycle_gives_uniform_ranks() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        ranks_sum_to_one(&r);
        for &x in &r.ranks {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_page_receives_more_rank() {
        // Everyone points at 0; 0 points at 1.
        let g = Graph::from_edges(4, [(1, 0), (2, 0), (3, 0), (0, 1)]);
        let r = pagerank(&g, &PageRankConfig::default());
        ranks_sum_to_one(&r);
        assert!(r.ranks[0] > r.ranks[2]);
        assert!(r.ranks[0] > r.ranks[3]);
        assert!(r.ranks[1] > r.ranks[2], "0's sole target inherits rank");
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        // 1 is a dangling sink.
        let g = Graph::from_edges(2, [(0, 1)]);
        let r = pagerank(&g, &PageRankConfig::default());
        ranks_sum_to_one(&r);
        assert!(r.ranks[1] > r.ranks[0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r.ranks.is_empty());
    }

    #[test]
    fn converges_within_iteration_budget() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let cfg = PageRankConfig {
            tolerance: 1e-12,
            max_iterations: 500,
            ..Default::default()
        };
        let r = pagerank(&g, &cfg);
        assert!(r.iterations < 500, "should converge, not exhaust budget");
        assert!(r.delta <= 1e-12);
        ranks_sum_to_one(&r);
    }

    #[test]
    fn top_ranked_orders_by_rank_then_id() {
        let ranks = [0.1, 0.4, 0.4, 0.1];
        assert_eq!(top_ranked(&ranks, 3), vec![1, 2, 0]);
        assert_eq!(top_ranked(&ranks, 10).len(), 4);
    }
}
