//! Broder-style bow-tie decomposition of a Web graph.
//!
//! The paper grounds its Web-graph observations in Broder et al.'s "Graph
//! structure in the Web" (its reference [8]), whose headline result is the
//! bow-tie: a giant strongly-connected CORE, the IN set that can reach it,
//! the OUT set it reaches, and the remaining TENDRILS/DISCONNECTED pages.
//! Computing this decomposition is a textbook global-access workload for a
//! compressed Web graph.

use crate::scc::tarjan_scc;
use crate::traversal::bfs_distances;
use crate::{Graph, PageId};

/// Which bow-tie region a page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The giant strongly-connected component.
    Core,
    /// Reaches the core but is not reachable from it.
    In,
    /// Reachable from the core but does not reach it.
    Out,
    /// Everything else (tendrils, tubes, disconnected islands).
    Other,
}

/// The bow-tie decomposition.
#[derive(Debug, Clone)]
pub struct BowTie {
    /// Region per page.
    pub region: Vec<Region>,
    /// Pages in the core.
    pub core: u32,
    /// Pages in IN.
    pub in_set: u32,
    /// Pages in OUT.
    pub out_set: u32,
    /// Pages elsewhere.
    pub other: u32,
}

/// Computes the bow-tie around the largest SCC.
///
/// `g` is the graph; its transpose is derived internally (callers that
/// already hold one can use [`bowtie_with_transpose`]).
pub fn bowtie(g: &Graph) -> BowTie {
    bowtie_with_transpose(g, &g.transpose())
}

/// [`bowtie`] with a caller-provided transpose.
pub fn bowtie_with_transpose(g: &Graph, gt: &Graph) -> BowTie {
    let n = g.num_nodes() as usize;
    if n == 0 {
        return BowTie {
            region: Vec::new(),
            core: 0,
            in_set: 0,
            out_set: 0,
            other: 0,
        };
    }
    let scc = tarjan_scc(g);
    let sizes = scc.component_sizes();
    let giant = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("non-empty graph");

    // Any core member works as the BFS anchor.
    let anchor = (0..n)
        .find(|&v| scc.component[v] == giant)
        .expect("giant component non-empty") as PageId;

    // OUT ∪ CORE = reachable from the core; IN ∪ CORE = reaches the core.
    let fwd = bfs_distances(g, anchor);
    let back = bfs_distances(gt, anchor);

    let mut region = Vec::with_capacity(n);
    let (mut core, mut in_set, mut out_set, mut other) = (0u32, 0u32, 0u32, 0u32);
    for v in 0..n {
        let r = if scc.component[v] == giant {
            core += 1;
            Region::Core
        } else if back[v] != u32::MAX {
            in_set += 1;
            Region::In
        } else if fwd[v] != u32::MAX {
            out_set += 1;
            Region::Out
        } else {
            other += 1;
            Region::Other
        };
        region.push(r);
    }
    BowTie {
        region,
        core,
        in_set,
        out_set,
        other,
    }
}

impl std::fmt::Display for BowTie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = (self.core + self.in_set + self.out_set + self.other).max(1);
        let pct = |x: u32| 100.0 * f64::from(x) / f64::from(total);
        write!(
            f,
            "CORE {} ({:.1}%) | IN {} ({:.1}%) | OUT {} ({:.1}%) | other {} ({:.1}%)",
            self.core,
            pct(self.core),
            self.in_set,
            pct(self.in_set),
            self.out_set,
            pct(self.out_set),
            self.other,
            pct(self.other)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_bowtie() {
        // IN = {0}; CORE = {1,2}; OUT = {3}; disconnected = {4}.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 1), (2, 3)]);
        let bt = bowtie(&g);
        assert_eq!(bt.region[0], Region::In);
        assert_eq!(bt.region[1], Region::Core);
        assert_eq!(bt.region[2], Region::Core);
        assert_eq!(bt.region[3], Region::Out);
        assert_eq!(bt.region[4], Region::Other);
        assert_eq!((bt.core, bt.in_set, bt.out_set, bt.other), (2, 1, 1, 1));
    }

    #[test]
    fn pure_cycle_is_all_core() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bt = bowtie(&g);
        assert_eq!(bt.core, 4);
        assert_eq!(bt.in_set + bt.out_set + bt.other, 0);
    }

    #[test]
    fn dag_has_core_of_one() {
        // All singleton SCCs; the "giant" is a single vertex (ties broken
        // by component id); everything splits across IN/OUT/Other around it.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let bt = bowtie(&g);
        assert_eq!(bt.core, 1);
        assert_eq!(bt.core + bt.in_set + bt.out_set + bt.other, 3);
    }

    #[test]
    fn tendril_is_other() {
        // CORE = {0,1}; 2 hangs off IN-side page 3 without reaching core.
        // 3 -> core (IN); 3 -> 2 and 2 goes nowhere: 2 is a tendril.
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (3, 0), (3, 2)]);
        let bt = bowtie(&g);
        assert_eq!(bt.region[3], Region::In);
        assert_eq!(bt.region[2], Region::Other);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []);
        let bt = bowtie(&g);
        assert_eq!(bt.core, 0);
        assert!(bt.region.is_empty());
    }

    #[test]
    fn display_formats_percentages() {
        let g = Graph::from_edges(2, [(0, 1), (1, 0)]);
        let text = format!("{}", bowtie(&g));
        assert!(text.contains("CORE 2 (100.0%)"));
    }
}
