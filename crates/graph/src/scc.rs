//! Strongly-connected components via an iterative Tarjan algorithm.
//!
//! SCC computation is one of the paper's canonical "global access" tasks
//! (§1.2): it touches the entire graph, so it only runs fast when the whole
//! representation fits in memory — which is the point of the compression
//! experiments. The implementation is fully iterative (explicit stack) so
//! that Web-scale graphs do not overflow the call stack.

use crate::{Graph, PageId};

/// The SCC decomposition of a graph.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `component[v]` = dense component id of vertex `v`. Component ids are
    /// assigned in reverse topological order of the condensation (Tarjan's
    /// natural output order).
    pub component: Vec<u32>,
    /// Number of components.
    pub num_components: u32,
}

impl SccResult {
    /// Sizes of each component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_components as usize];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest(&self) -> u32 {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes strongly-connected components with iterative Tarjan.
pub fn tarjan_scc(g: &Graph) -> SccResult {
    let n = g.num_nodes() as usize;
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![0u32; n];
    let mut stack: Vec<PageId> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0u32;

    // Explicit DFS frame: (vertex, next child position).
    let mut frames: Vec<(PageId, u32)> = Vec::new();

    for root in 0..n as PageId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let neighbors = g.neighbors(v);
            if (*child as usize) < neighbors.len() {
                let w = neighbors[*child as usize];
                *child += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of a component: pop down to v.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }

    SccResult {
        component,
        num_components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, 1);
        assert!(r.component.iter().all(|&c| c == 0));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, 4);
        assert_eq!(r.largest(), 1);
    }

    #[test]
    fn two_cycles_joined_by_a_bridge() {
        // cycle {0,1,2}, bridge 2->3, cycle {3,4}
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[1], r.component[2]);
        assert_eq!(r.component[3], r.component[4]);
        assert_ne!(r.component[0], r.component[3]);
        // Reverse topological order: the sink component {3,4} is numbered first.
        assert!(r.component[3] < r.component[0]);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = Graph::from_edges(3, []);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, 3);
        let sizes = r.component_sizes();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn self_loop_forms_component_of_one() {
        let g = Graph::from_edges(2, [(0, 0), (0, 1)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, 2);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 200k-vertex path: a recursive Tarjan would blow the call stack.
        let n = 200_000u32;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, n);
    }

    #[test]
    fn bowtie_structure() {
        // The classic Broder et al. "bow-tie": IN -> SCC -> OUT.
        // IN = {0}, core = {1,2,3} cycle, OUT = {4}
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)]);
        let r = tarjan_scc(&g);
        assert_eq!(r.num_components, 3);
        assert_eq!(r.largest(), 3);
    }
}
