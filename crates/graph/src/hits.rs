//! Kleinberg's HITS algorithm and base-set construction.
//!
//! Query 3 of Table 3 computes the "Kleinberg base set" of a root set: the
//! root pages plus their out-neighbours and in-neighbours. Given a base set,
//! HITS assigns each page a hub score and an authority score by mutual
//! reinforcement over the induced subgraph.

use crate::traversal::induced_subgraph;
use crate::{Graph, PageId};

/// Computes the Kleinberg base set: `roots ∪ out-neighbours(roots) ∪
/// in-neighbours(roots)`, sorted ascending.
///
/// `g` is the Web graph and `gt` its transpose (so in-neighbours are
/// `gt.neighbors(v)`). The paper caps the number of in-neighbours taken per
/// root in practice; `in_cap` reproduces that (use `usize::MAX` for no cap).
pub fn base_set(g: &Graph, gt: &Graph, roots: &[PageId], in_cap: usize) -> Vec<PageId> {
    let mut set: Vec<PageId> = roots.to_vec();
    for &r in roots {
        set.extend_from_slice(g.neighbors(r));
        let ins = gt.neighbors(r);
        set.extend_from_slice(&ins[..ins.len().min(in_cap)]);
    }
    set.sort_unstable();
    set.dedup();
    set
}

/// Hub and authority scores for a page set.
#[derive(Debug, Clone)]
pub struct HitsResult {
    /// The pages scored, sorted ascending (parallel to the score vectors).
    pub pages: Vec<PageId>,
    /// Hub score per page (L2-normalised).
    pub hubs: Vec<f64>,
    /// Authority score per page (L2-normalised).
    pub authorities: Vec<f64>,
    /// Iterations executed.
    pub iterations: u32,
}

/// Runs HITS on the subgraph induced by `pages` until the score vectors move
/// by less than `tolerance` (L1) or `max_iterations` is reached.
#[allow(clippy::needless_range_loop)] // ids index several parallel arrays
pub fn hits(g: &Graph, pages: &[PageId], tolerance: f64, max_iterations: u32) -> HitsResult {
    let (sub, verts) = induced_subgraph(g, pages);
    let n = sub.num_nodes() as usize;
    let mut hubs = vec![1.0f64; n];
    let mut auths = vec![1.0f64; n];
    let mut iterations = 0;

    let normalize = |v: &mut [f64]| {
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            v.iter_mut().for_each(|x| *x /= norm);
        }
    };

    while iterations < max_iterations {
        // auth(v) = Σ hub(u) over u -> v
        let mut new_auths = vec![0.0f64; n];
        for u in 0..n {
            for &v in sub.neighbors(u as PageId) {
                new_auths[v as usize] += hubs[u];
            }
        }
        normalize(&mut new_auths);
        // hub(u) = Σ auth(v) over u -> v
        let mut new_hubs = vec![0.0f64; n];
        for u in 0..n {
            for &v in sub.neighbors(u as PageId) {
                new_hubs[u] += new_auths[v as usize];
            }
        }
        normalize(&mut new_hubs);

        let delta: f64 = hubs
            .iter()
            .zip(&new_hubs)
            .chain(auths.iter().zip(&new_auths))
            .map(|(a, b)| (a - b).abs())
            .sum();
        hubs = new_hubs;
        auths = new_auths;
        iterations += 1;
        if delta < tolerance {
            break;
        }
    }

    HitsResult {
        pages: verts,
        hubs,
        authorities: auths,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_set_includes_both_directions() {
        // 0 -> 1 -> 2; root = {1}
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let gt = g.transpose();
        assert_eq!(base_set(&g, &gt, &[1], usize::MAX), vec![0, 1, 2]);
    }

    #[test]
    fn base_set_in_cap_limits_backlinks() {
        // Many pages point at 4.
        let g = Graph::from_edges(5, [(0, 4), (1, 4), (2, 4), (3, 4)]);
        let gt = g.transpose();
        let full = base_set(&g, &gt, &[4], usize::MAX);
        assert_eq!(full.len(), 5);
        let capped = base_set(&g, &gt, &[4], 2);
        assert_eq!(capped.len(), 3); // root + 2 backlinks
    }

    #[test]
    fn authority_concentrates_on_commonly_cited_page() {
        // Hubs 0,1,2 all cite 3; 3 cites nothing.
        let g = Graph::from_edges(4, [(0, 3), (1, 3), (2, 3)]);
        let r = hits(&g, &[0, 1, 2, 3], 1e-12, 100);
        let idx3 = r.pages.iter().position(|&p| p == 3).unwrap();
        assert!(r.authorities[idx3] > 0.99, "3 must be the sole authority");
        for (i, &p) in r.pages.iter().enumerate() {
            if p != 3 {
                assert!(r.hubs[i] > 0.5, "citing pages are hubs");
                assert!(r.authorities[i] < 0.01);
            }
        }
    }

    #[test]
    fn empty_page_set_is_fine() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let r = hits(&g, &[], 1e-9, 10);
        assert!(r.pages.is_empty());
        assert!(r.hubs.is_empty());
    }

    #[test]
    fn disconnected_pages_score_zero() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let r = hits(&g, &[0, 1, 2, 3], 1e-12, 50);
        let idx2 = r.pages.iter().position(|&p| p == 2).unwrap();
        assert_eq!(r.hubs[idx2], 0.0);
        assert_eq!(r.authorities[idx2], 0.0);
    }
}
