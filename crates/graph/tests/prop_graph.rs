//! Property tests on the CSR graph kernel: structural invariants, transpose
//! involution, and algorithm sanity on arbitrary random graphs.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use wg_graph::csr::Graph;
use wg_graph::pagerank::{pagerank, PageRankConfig};
use wg_graph::scc::tarjan_scc;
use wg_graph::traversal::{bfs_distances, count_links_between, induced_subgraph};

/// Strategy: a random directed graph with up to `max_n` vertices.
fn arb_graph(max_n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n), 0..=max_edges)
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_lists_are_sorted_and_unique(g in arb_graph(60, 400)) {
        for v in 0..g.num_nodes() {
            let l = g.neighbors(v);
            prop_assert!(l.windows(2).all(|w| w[0] < w[1]), "list of {v} not strictly sorted");
        }
        prop_assert_eq!(
            g.num_edges(),
            (0..g.num_nodes()).map(|v| g.neighbors(v).len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn transpose_is_an_involution(g in arb_graph(50, 300)) {
        let t = g.transpose();
        prop_assert_eq!(t.num_edges(), g.num_edges());
        prop_assert_eq!(&t.transpose(), &g);
        for (u, v) in g.edges() {
            prop_assert!(t.has_edge(v, u));
        }
    }

    #[test]
    fn scc_components_partition_vertices(g in arb_graph(40, 250)) {
        let r = tarjan_scc(&g);
        prop_assert_eq!(r.component.len(), g.num_nodes() as usize);
        let sizes = r.component_sizes();
        prop_assert_eq!(sizes.iter().map(|&s| u64::from(s)).sum::<u64>(), u64::from(g.num_nodes()));
        prop_assert!(sizes.iter().all(|&s| s > 0), "every component id must be used");
    }

    #[test]
    fn scc_mutual_reachability(g in arb_graph(25, 120)) {
        // Two vertices share a component iff they reach each other.
        let r = tarjan_scc(&g);
        let dists: Vec<Vec<u32>> = (0..g.num_nodes()).map(|v| bfs_distances(&g, v)).collect();
        for a in 0..g.num_nodes() {
            for b in 0..g.num_nodes() {
                let mutually = dists[a as usize][b as usize] != u32::MAX
                    && dists[b as usize][a as usize] != u32::MAX;
                prop_assert_eq!(
                    r.component[a as usize] == r.component[b as usize],
                    mutually,
                    "vertices {} and {}", a, b
                );
            }
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_is_positive(g in arb_graph(50, 300)) {
        let r = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = r.ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(r.ranks.iter().all(|&x| x > 0.0), "teleportation keeps all ranks positive");
    }

    #[test]
    fn induced_subgraph_edge_count_matches_link_count(g in arb_graph(40, 250), seed in any::<u64>()) {
        // Pick a pseudo-random subset of vertices.
        let picks: Vec<u32> = (0..g.num_nodes())
            .filter(|&v| (seed.wrapping_mul(6364136223846793005).wrapping_add(u64::from(v) * 2654435761)).is_multiple_of(3))
            .collect();
        let (sub, verts) = induced_subgraph(&g, &picks);
        prop_assert_eq!(sub.num_edges(), count_links_between(&g, &verts, &verts));
        // Every induced edge maps back to a real edge.
        for (lu, lv) in sub.edges() {
            prop_assert!(g.has_edge(verts[lu as usize], verts[lv as usize]));
        }
    }

    #[test]
    fn bfs_distance_is_monotone_along_edges(g in arb_graph(40, 250)) {
        if g.num_nodes() == 0 { return Ok(()); }
        let d = bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            if d[u as usize] != u32::MAX {
                prop_assert!(d[v as usize] <= d[u as usize] + 1);
            }
        }
    }
}
