//! Span timing: the process-wide metrics flag, the [`Stopwatch`], and
//! [`record_span`] which feeds a histogram and the trace ring at once.
//!
//! `Stopwatch` is the one sanctioned wrapper around `std::time::Instant`
//! in this workspace — the conventions lint (`crates/analyze`) rejects raw
//! `Instant` use outside `crates/obs` and test code, so every duration
//! anyone measures can flow into the registry and trace buffer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns process-wide metrics collection on or off. The CLI raises this
/// before opening any representation so construction-time registration
/// (e.g. `CacheMetrics::auto`) sees it.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether process-wide metrics collection is on. A single relaxed load —
/// cheap enough to guard every instrumentation site.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process's trace epoch (first use). Trace events
/// share this epoch so their timestamps are mutually comparable.
pub(crate) fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

/// A monotonic timer. Construction also notes the trace-epoch-relative
/// start so a finished span can be placed on the trace timeline.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
    start_us: u64,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start_us: now_us(),
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds since construction (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        let n = self.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }

    /// Trace-epoch-relative start time in microseconds.
    pub fn start_us(&self) -> u64 {
        self.start_us
    }
}

/// Finishes the span begun by `sw`: records its duration into the global
/// histogram `{name}_ns` (when metrics are enabled) and appends a complete
/// trace event under category `cat` (when tracing is enabled). Returns the
/// elapsed nanoseconds either way, so callers can keep their own
/// bookkeeping from the same measurement.
pub fn record_span(name: &str, cat: &str, sw: &Stopwatch) -> u64 {
    let ns = sw.elapsed_ns();
    if metrics_enabled() {
        crate::registry::global()
            .histogram(&format!("{name}_ns"))
            .record(ns);
    }
    if crate::trace::trace_enabled() {
        crate::trace::push_event(name, cat, sw.start_us(), ns / 1_000);
    }
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 1_000_000);
    }

    #[test]
    fn now_us_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
