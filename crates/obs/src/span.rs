//! Span timing: the process-wide metrics flag, the [`Stopwatch`], and
//! [`record_span`] which feeds a histogram and the trace ring at once.
//!
//! `Stopwatch` is the one sanctioned wrapper around `std::time::Instant`
//! in this workspace — the conventions lint (`crates/analyze`) rejects raw
//! `Instant` use outside `crates/obs` and test code, so every duration
//! anyone measures can flow into the registry and trace buffer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns process-wide metrics collection on or off. The CLI raises this
/// before opening any representation so construction-time registration
/// (e.g. `CacheMetrics::auto`) sees it.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether process-wide metrics collection is on. A single relaxed load —
/// cheap enough to guard every instrumentation site.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// The process's trace epoch, anchored by the first timestamp that asks
/// for it. Trace events share this epoch so their timestamps are mutually
/// comparable.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// A monotonic timer. Construction is a single clock read — the
/// trace-epoch-relative start a trace event needs is derived lazily in
/// [`Stopwatch::start_us`], so the per-list instrumentation on the decode
/// path never pays for a timestamp nobody renders.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds since construction (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        let n = self.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }

    /// Trace-epoch-relative start time in microseconds (0 for a stopwatch
    /// started before the first trace timestamp anchored the epoch).
    pub fn start_us(&self) -> u64 {
        let epoch = *EPOCH.get_or_init(|| self.start);
        self.start.saturating_duration_since(epoch).as_micros() as u64
    }
}

/// Finishes the span begun by `sw`: records its duration into the global
/// histogram `{name}_ns` (when metrics are enabled) and appends a complete
/// trace event under category `cat` (when tracing is enabled). Returns the
/// elapsed nanoseconds either way, so callers can keep their own
/// bookkeeping from the same measurement.
pub fn record_span(name: &str, cat: &str, sw: &Stopwatch) -> u64 {
    record_span_args(name, cat, sw, &[])
}

/// [`record_span`], with string args attached to the trace event (e.g.
/// the serve path's request op-code and cache shard id). Args only cost
/// when tracing is enabled; the histogram side is identical.
pub fn record_span_args(name: &str, cat: &str, sw: &Stopwatch, args: &[(&str, &str)]) -> u64 {
    let ns = sw.elapsed_ns();
    if metrics_enabled() {
        crate::registry::global()
            .histogram(&format!("{name}_ns"))
            .record(ns);
    }
    if crate::trace::trace_enabled() {
        crate::trace::push_event_args(name, cat, sw.start_us(), ns / 1_000, args);
    }
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 1_000_000);
    }

    #[test]
    fn start_us_is_epoch_relative_and_monotonic() {
        let a = Stopwatch::start();
        let b = Stopwatch::start();
        assert!(b.start_us() >= a.start_us());
    }
}
