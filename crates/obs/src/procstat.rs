//! Process memory accounting from `/proc/self/status`.
//!
//! The out-of-core build pipeline's whole point is a bounded peak
//! resident set, so the bench harness needs a portable-enough way to
//! read it. Linux exports both the instantaneous resident set (`VmRSS`)
//! and the high-water mark since process start (`VmHWM`) as text lines
//! in `/proc/self/status`; parsing two lines of text costs microseconds
//! and needs no libc, so this stays inside the workspace's
//! `forbid(unsafe_code)` envelope. On platforms without procfs every
//! reader returns `None` and the gauges simply stay at zero.

use crate::metrics::Gauge;

/// One sample of the process's memory accounting, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSample {
    /// Instantaneous resident set size (`VmRSS`).
    pub rss_bytes: u64,
    /// Peak resident set size since process start (`VmHWM`).
    pub peak_rss_bytes: u64,
}

/// Parses a `VmRSS:`/`VmHWM:`-style field out of `/proc/self/status`
/// text. Values are reported by the kernel in kB.
fn field_kb(status: &str, field: &str) -> Option<u64> {
    status.lines().find_map(|line| {
        let rest = line.strip_prefix(field)?.strip_prefix(':')?;
        rest.trim().strip_suffix("kB")?.trim().parse::<u64>().ok()
    })
}

/// Parses both memory fields from status-file text. Public for tests;
/// use [`sample_self`] to read the live process.
pub fn parse_status(status: &str) -> Option<MemSample> {
    Some(MemSample {
        rss_bytes: field_kb(status, "VmRSS")? * 1024,
        peak_rss_bytes: field_kb(status, "VmHWM")? * 1024,
    })
}

/// Reads the current process's memory sample, or `None` where procfs is
/// unavailable (non-Linux platforms, restricted sandboxes).
pub fn sample_self() -> Option<MemSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status(&status)
}

/// The process-memory gauge pair, following the same two-tier enablement
/// as [`CacheMetrics`](crate::CacheMetrics): the gauges always work as
/// instance handles, and register in the [`global`](crate::global)
/// registry under `proc.rss_bytes` / `proc.peak_rss_bytes` only when the
/// process-wide metrics flag was up at construction.
#[derive(Debug, Clone, Default)]
pub struct RssGauge {
    /// Instantaneous resident set, bytes.
    pub rss: Gauge,
    /// Peak resident set, bytes.
    pub peak: Gauge,
}

impl RssGauge {
    /// A private, unregistered pair.
    pub fn unregistered() -> Self {
        Self::default()
    }

    /// A pair registered in `reg` under `{prefix}.rss_bytes` and
    /// `{prefix}.peak_rss_bytes`.
    pub fn registered(reg: &crate::registry::Registry, prefix: &str) -> Self {
        Self {
            rss: reg.gauge(&format!("{prefix}.rss_bytes")),
            peak: reg.gauge(&format!("{prefix}.peak_rss_bytes")),
        }
    }

    /// Registered globally under `proc.*` when metrics are enabled at
    /// construction time, private otherwise.
    pub fn auto() -> Self {
        if crate::span::metrics_enabled() {
            Self::registered(crate::registry::global(), "proc")
        } else {
            Self::unregistered()
        }
    }

    /// Samples `/proc/self/status` and stores the result in both gauges.
    /// Returns the sample so callers can record it in reports without a
    /// second read. A platform without procfs leaves the gauges alone.
    pub fn refresh(&self) -> Option<MemSample> {
        let s = sample_self()?;
        self.rss.set(s.rss_bytes as i64);
        self.peak.set(s.peak_rss_bytes as i64);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATUS: &str = "Name:\twgr\nUmask:\t0022\nVmPeak:\t  202000 kB\n\
         VmSize:\t  201000 kB\nVmHWM:\t   15360 kB\nVmRSS:\t   12288 kB\n\
         Threads:\t1\n";

    #[test]
    fn parses_rss_and_hwm_in_bytes() {
        let s = parse_status(STATUS).unwrap();
        assert_eq!(s.rss_bytes, 12288 * 1024);
        assert_eq!(s.peak_rss_bytes, 15360 * 1024);
    }

    #[test]
    fn missing_fields_yield_none() {
        assert!(parse_status("Name:\twgr\n").is_none());
        assert!(parse_status("VmRSS:\t10 kB\n").is_none(), "no VmHWM");
        assert!(parse_status("VmRSS:\tten kB\nVmHWM:\t1 kB\n").is_none());
    }

    #[test]
    fn vmrss_prefix_does_not_match_other_fields() {
        // VmRSS must not be satisfied by VmPeak/VmSize lines.
        let s = parse_status("VmSize:\t999 kB\nVmRSS:\t5 kB\nVmHWM:\t7 kB\n").unwrap();
        assert_eq!(s.rss_bytes, 5 * 1024);
    }

    #[test]
    fn live_sample_is_plausible_on_linux() {
        if let Some(s) = sample_self() {
            assert!(s.rss_bytes > 0);
            assert!(s.peak_rss_bytes >= s.rss_bytes);
        }
    }

    #[test]
    fn refresh_sets_gauges() {
        let g = RssGauge::unregistered();
        if let Some(s) = g.refresh() {
            assert_eq!(g.rss.get(), s.rss_bytes as i64);
            assert_eq!(g.peak.get(), s.peak_rss_bytes as i64);
        }
    }
}
