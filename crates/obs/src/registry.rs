//! The metrics registry: hierarchical dotted names → metric handles, with
//! deterministic snapshot rendering.
//!
//! Names follow a `crate.subsystem.quantity` convention
//! (`core.cache.hits`, `store.pager.page_reads`, `query.q3.wall_ns`).
//! Lookup is get-or-create and type-checked: asking for an existing name
//! with a different metric kind returns a *fresh unregistered* handle
//! instead of panicking, so a misnamed instrument degrades to a private
//! counter rather than taking down a query run.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A thread-safe map from dotted metric names to metric handles.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-wide registry used by `--metrics` and the CLI snapshots.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // Metric updates are plain atomic stores, so a panic while holding
        // the lock cannot leave the map logically corrupt — recover it.
        self.metrics.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns the counter registered under `name`, creating it if absent.
    /// If `name` is taken by a different metric kind, returns a fresh
    /// unregistered counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    /// If `name` is taken by a different metric kind, returns a fresh
    /// unregistered gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent. If `name` is taken by a different metric kind, returns a
    /// fresh unregistered histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Sets the gauge `name` to `v` (creating it if absent).
    pub fn set_gauge(&self, name: &str, v: i64) {
        self.gauge(name).set(v);
    }

    /// A point-in-time copy of every registered metric, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.lock();
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => SnapValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { entries }
    }

    /// Resets every registered metric to zero/empty (names stay
    /// registered, handles stay valid).
    pub fn reset(&self) {
        let m = self.lock();
        for metric in m.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.set(0),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram, with only non-empty buckets materialised.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Saturating sum of samples.
        sum: u64,
        /// `(bucket_lower_bound, count)` pairs, ascending, non-empty only.
        buckets: Vec<(u64, u64)>,
    },
}

/// A deterministic point-in-time view of a [`Registry`]: entries are
/// sorted by name, and both renderings emit them in that order so two
/// snapshots of identical state produce byte-identical output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, SnapValue)>,
}

impl Snapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&SnapValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The value of counter `name`, or 0 if absent / not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(SnapValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// How much counter `name` grew since `before` was taken. Saturates
    /// at zero if the counter was reset in between.
    pub fn counter_delta(&self, before: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(before.counter(name))
    }

    /// Plain-text rendering: one `name = value` line per metric,
    /// histograms as `count/sum/mean` plus a compact bucket list.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                SnapValue::Counter(c) => {
                    out.push_str(&format!("{name:<width$} = {c}\n"));
                }
                SnapValue::Gauge(g) => {
                    out.push_str(&format!("{name:<width$} = {g}\n"));
                }
                SnapValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let mean = if *count > 0 {
                        *sum as f64 / *count as f64
                    } else {
                        0.0
                    };
                    out.push_str(&format!(
                        "{name:<width$} = count {count}, sum {sum}, mean {mean:.1}\n"
                    ));
                    if !buckets.is_empty() {
                        let parts: Vec<String> = buckets
                            .iter()
                            .map(|(lb, c)| format!(">={lb}: {c}"))
                            .collect();
                        out.push_str(&format!("{:<width$}   [{}]\n", "", parts.join(", ")));
                    }
                }
            }
        }
        out
    }

    /// JSON rendering with one metric per line (stable order), so tests
    /// can filter time-valued lines (`*_ns`, `*_secs`) and diff the rest.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let key = crate::json_escape(name);
            match v {
                SnapValue::Counter(c) => {
                    out.push_str(&format!("  \"{key}\": {c}{comma}\n"));
                }
                SnapValue::Gauge(g) => {
                    out.push_str(&format!("  \"{key}\": {g}{comma}\n"));
                }
                SnapValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let bs: Vec<String> = buckets
                        .iter()
                        .map(|(lb, c)| format!("[{lb},{c}]"))
                        .collect();
                    out.push_str(&format!(
                        "  \"{key}\": {{\"count\":{count},\"sum\":{sum},\"buckets\":[{}]}}{comma}\n",
                        bs.join(",")
                    ));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_cell() {
        let r = Registry::new();
        let a = r.counter("x.y");
        let b = r.counter("x.y");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert!(a.same_cell(&b));
    }

    #[test]
    fn kind_mismatch_degrades_to_private() {
        let r = Registry::new();
        let _c = r.counter("dual");
        let h = r.histogram("dual");
        h.record(5);
        // The registered metric is still the counter, untouched.
        assert_eq!(r.snapshot().counter("dual"), 0);
    }

    #[test]
    fn snapshot_sorted_and_stable() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.gauge("c.three").set(-3);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        let names: Vec<&str> = s1.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two", "c.three"]);
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(s1.to_text(), s2.to_text());
    }

    #[test]
    fn counter_delta() {
        let r = Registry::new();
        let c = r.counter("d");
        c.add(5);
        let before = r.snapshot();
        c.add(7);
        let after = r.snapshot();
        assert_eq!(after.counter_delta(&before, "d"), 7);
        assert_eq!(after.counter_delta(&before, "missing"), 0);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("k");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.snapshot().counter("k"), 1);
    }
}
