//! Metric primitives: counters, gauges, and fixed-log2-bucket histograms.
//!
//! Every primitive is a cheap cloneable handle (`Arc` around atomics), so a
//! hot path resolves its metric once — at construction or via a
//! `OnceLock` — and each event costs one relaxed atomic add. Handles work
//! identically whether or not they are registered in a [`Registry`]
//! (registration just shares the same `Arc` under a name).
//!
//! [`Registry`]: crate::registry::Registry

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Whether two handles share the same underlying cell.
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A signed gauge: a value that is *set*, not accumulated.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `b >= 1` holds values whose bit length is `b`, i.e. the range
/// `[2^(b-1), 2^b)`. Bucket 64 therefore holds `[2^63, u64::MAX]` — every
/// `u64` maps to exactly one bucket and saturation is impossible by
/// construction.
pub const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-log2-bucket histogram of `u64` samples.
///
/// Log2 buckets trade resolution for a representation that needs no
/// configuration, no allocation, and no locking: reference-chain depths,
/// span durations in nanoseconds, and queue waits all fit the same 65
/// buckets. `sum` saturates instead of wrapping so a long-running process
/// cannot report a nonsensical mean.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, unregistered, empty histogram.
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Bucket index of `v`: 0 for 0, else `v`'s bit length.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
    pub fn bucket_lower_bound(b: usize) -> u64 {
        if b <= 1 {
            b as u64
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulate: fetch_update loops only under contention.
        let _ = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Count in bucket `b` (0 when out of range).
    pub fn bucket_count(&self, b: usize) -> u64 {
        self.0
            .buckets
            .get(b)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// `(lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..HIST_BUCKETS)
            .filter_map(|b| {
                let c = self.bucket_count(b);
                (c > 0).then(|| (Self::bucket_lower_bound(b), c))
            })
            .collect()
    }

    /// Resets all buckets and accumulators.
    pub fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }
}

/// The shared cache-statistics group: one struct serves every cache in the
/// workspace (the decoded-graph cache in `wg-snode`, the buffer pool in
/// `wg-store`), replacing the two formerly independent stat structs. The
/// historical `stats()` APIs remain as thin views over these counters.
#[derive(Debug, Clone, Default)]
pub struct CacheMetrics {
    /// Lookups satisfied from the cache.
    pub hits: Counter,
    /// Lookups that required a load/fetch.
    pub misses: Counter,
    /// Entries evicted to make room.
    pub evictions: Counter,
    /// Bytes brought into the cache over its lifetime (load traffic).
    pub bytes_loaded: Counter,
}

impl CacheMetrics {
    /// A private, unregistered group (the default for library users).
    pub fn unregistered() -> Self {
        Self::default()
    }

    /// A group whose counters are registered in `reg` under
    /// `{prefix}.hits`, `{prefix}.misses`, `{prefix}.evictions`,
    /// `{prefix}.bytes_loaded`. Instances sharing a prefix share counters.
    pub fn registered(reg: &crate::registry::Registry, prefix: &str) -> Self {
        Self {
            hits: reg.counter(&format!("{prefix}.hits")),
            misses: reg.counter(&format!("{prefix}.misses")),
            evictions: reg.counter(&format!("{prefix}.evictions")),
            bytes_loaded: reg.counter(&format!("{prefix}.bytes_loaded")),
        }
    }

    /// Registered in the global registry when the process-wide metrics
    /// flag is up at construction time, private otherwise. This is how
    /// caches become registry views under `--metrics` without polluting
    /// each other in ordinary test runs.
    pub fn auto(prefix: &str) -> Self {
        if crate::span::metrics_enabled() {
            Self::registered(crate::registry::global(), prefix)
        } else {
            Self::unregistered()
        }
    }

    /// Resets all four counters.
    pub fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
        self.bytes_loaded.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the cell");
        assert!(c.same_cell(&c2));
        c.reset();
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_of_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }
}
