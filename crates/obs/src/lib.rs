//! **wg-obs** — the workspace's unified observability layer.
//!
//! The paper's entire evaluation is measurement: Table 2/3 compare
//! bits-per-edge, pages fetched, and navigation time per query. Every such
//! quantity in this workspace flows through the machinery here instead of
//! ad-hoc per-module stat structs:
//!
//! * [`metrics`] — atomic [`Counter`]s, [`Gauge`]s, and fixed-log2-bucket
//!   [`Histogram`]s, cheap enough for hot paths (one relaxed atomic add).
//! * [`registry`] — a thread-safe [`Registry`] mapping hierarchical dotted
//!   names to metrics, with deterministic [`Snapshot`] rendering as text
//!   and JSON (stable key order, so tests and CI can diff output).
//! * [`span`] — [`Stopwatch`] (the only sanctioned wrapper around
//!   `std::time::Instant`; the conventions lint bans raw `Instant` use
//!   everywhere else) and [`record_span`], which feeds a histogram and the
//!   trace buffer at once.
//! * [`trace`] — an optional bounded ring buffer of Chrome trace events,
//!   serialisable to a `chrome://tracing`-loadable JSON file.
//!
//! # Enablement model
//!
//! Instrumentation comes in two tiers:
//!
//! * **Instance metrics** (cache hit/miss counters, pager I/O counts)
//!   replace bookkeeping the workspace always did; they are plain relaxed
//!   atomic increments and are always on. When the process-wide metrics
//!   flag ([`set_metrics_enabled`]) is up at construction time, instances
//!   register their counters in the [`global`] registry so snapshots see
//!   them; otherwise they stay private to the instance.
//! * **Shared measurements** (span timers, decode-depth histograms,
//!   worker busy time) are gated on [`metrics_enabled`] /
//!   [`trace_enabled`] so the default build pays one relaxed bool load,
//!   nothing more.
//! * **Service telemetry** ([`telemetry`]: per-request stage attribution,
//!   lock wait/hold timing, [`rolling`] window histograms) is gated on
//!   its own [`telemetry_enabled`] flag, raised by the serve front-end;
//!   batch runs again pay one relaxed bool load per site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod procstat;
pub mod registry;
pub mod rolling;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use metrics::{CacheMetrics, Counter, Gauge, Histogram, HIST_BUCKETS};
pub use procstat::{sample_self, MemSample, RssGauge};
pub use registry::{global, Registry, SnapValue, Snapshot};
pub use rolling::{HistData, RollingHistogram, RollingSnapshot};
pub use span::{metrics_enabled, record_span, record_span_args, set_metrics_enabled, Stopwatch};
pub use telemetry::{
    set_telemetry_enabled, stage_add, stage_sample, stage_scope_begin, stage_scope_end,
    telemetry_enabled, HoldTimer, LockMetrics, LockStats, ShardStat, Stage, NUM_STAGES,
    SAMPLE_PERIOD, SAMPLE_SCALE,
};
pub use trace::{
    enable_trace, take_trace, trace_enabled, trace_to_json, write_trace_file, TraceEvent,
};

/// Escapes a string for inclusion in a JSON double-quoted literal.
///
/// Metric and span names are dotted identifiers in practice, but snapshots
/// must never emit malformed JSON whatever the caller passed.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
