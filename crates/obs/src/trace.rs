//! Chrome trace-event output: a bounded ring buffer of complete ("ph":"X")
//! events, serialisable to a `chrome://tracing` / Perfetto-loadable JSON
//! file.
//!
//! Tracing is off unless [`enable_trace`] is called (the CLI does so for
//! `--trace out.json`). The ring is bounded: when full, the oldest events
//! are dropped and the drop count is reported in the emitted file's
//! metadata so a truncated trace is never mistaken for a complete one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One complete span on the trace timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (histogram name without the `_ns` suffix).
    pub name: String,
    /// Category, e.g. `build`, `query`, `store`.
    pub cat: String,
    /// Start, microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small per-thread ordinal (not the OS thread id).
    pub tid: u64,
    /// Chrome trace `args`: string key/value pairs rendered into the
    /// event's `"args"` object (empty = no args emitted). The serve path
    /// uses this for the request op-code and the cache shard id.
    pub args: Vec<(String, String)>,
}

struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
    next: usize,
    dropped: u64,
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: Vec::new(),
            capacity: 0,
            next: 0,
            dropped: 0,
        })
    })
}

fn lock_ring() -> MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(|p| p.into_inner())
}

/// Small dense thread ordinals so traces get a handful of rows instead of
/// one per OS thread id.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Turns tracing on with a ring of `capacity` events (0 disables). Any
/// previously buffered events are discarded.
pub fn enable_trace(capacity: usize) {
    let mut r = lock_ring();
    r.events = Vec::with_capacity(capacity.min(1 << 20));
    r.capacity = capacity;
    r.next = 0;
    r.dropped = 0;
    TRACE_ENABLED.store(capacity > 0, Ordering::Relaxed);
}

/// Whether tracing is on. One relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Appends a complete event carrying string args (called via
/// [`record_span_args`]).
///
/// [`record_span_args`]: crate::span::record_span_args
pub(crate) fn push_event_args(
    name: &str,
    cat: &str,
    ts_us: u64,
    dur_us: u64,
    args: &[(&str, &str)],
) {
    let ev = TraceEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        ts_us,
        dur_us,
        tid: current_tid(),
        args: args
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    };
    let mut r = lock_ring();
    if r.capacity == 0 {
        return;
    }
    if r.events.len() < r.capacity {
        r.events.push(ev);
    } else {
        // Ring is full: overwrite the oldest slot.
        let i = r.next;
        r.events[i] = ev;
        r.next = (r.next + 1) % r.capacity;
        r.dropped += 1;
    }
}

/// Drains the buffered events, sorted by start time (ties by name), plus
/// the count of events dropped to the ring bound. Sorting restores global
/// timestamp order that per-thread interleaving and ring wraparound can
/// perturb.
pub fn take_trace() -> (Vec<TraceEvent>, u64) {
    let mut r = lock_ring();
    let mut events = std::mem::take(&mut r.events);
    let dropped = r.dropped;
    r.next = 0;
    r.dropped = 0;
    events.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then_with(|| a.name.cmp(&b.name)));
    (events, dropped)
}

/// Renders events as a Chrome trace-event JSON document.
pub fn trace_to_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        let args = if ev.args.is_empty() {
            String::new()
        } else {
            let body: Vec<String> = ev
                .args
                .iter()
                .map(|(k, v)| {
                    format!(
                        "\"{}\":\"{}\"",
                        crate::json_escape(k),
                        crate::json_escape(v)
                    )
                })
                .collect();
            format!(",\"args\":{{{}}}", body.join(","))
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}{args}}}{comma}\n",
            crate::json_escape(&ev.name),
            crate::json_escape(&ev.cat),
            ev.ts_us,
            ev.dur_us,
            ev.tid,
        ));
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped}}}}}\n"
    ));
    out
}

/// Drains the trace ring and writes it to `path` as Chrome trace JSON.
pub fn write_trace_file(path: &std::path::Path) -> std::io::Result<()> {
    let (events, dropped) = take_trace();
    std::fs::write(path, trace_to_json(&events, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global, so exercise everything in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn ring_lifecycle() {
        assert!(!trace_enabled());
        enable_trace(3);
        assert!(trace_enabled());
        for i in 0..5u64 {
            push_event_args("ev", "t", i * 10, 1, &[]);
        }
        let (events, dropped) = take_trace();
        assert_eq!(events.len(), 3, "bounded at capacity");
        assert_eq!(dropped, 2);
        // Sorted by ts despite ring wraparound.
        let ts: Vec<u64> = events.iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![20, 30, 40]);
        let json = trace_to_json(&events, dropped);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"droppedEvents\":2"));
        // Args render as a Chrome trace "args" object; arg-less events
        // omit the key entirely.
        push_event_args("req", "serve", 100, 2, &[("op", "q3"), ("shard", "5")]);
        let (events, _) = take_trace();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].args,
            vec![
                ("op".to_string(), "q3".to_string()),
                ("shard".to_string(), "5".to_string())
            ]
        );
        let json = trace_to_json(&events, 0);
        assert!(json.contains("\"args\":{\"op\":\"q3\",\"shard\":\"5\"}"));
        enable_trace(0);
        assert!(!trace_enabled());
    }
}
