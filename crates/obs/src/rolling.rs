//! Rolling time-windowed histograms: live percentiles instead of
//! process-lifetime aggregates.
//!
//! A [`RollingHistogram`] is a fixed ring of log2-bucket windows (the same
//! 65-bucket geometry as [`Histogram`]). Rotation is driven by a **logical
//! tick** supplied by the caller — e.g. `requests_served / 64` — not by
//! wall-clock reads, so rotation is deterministic under test and never
//! costs a clock syscall on the hot path. A sample recorded with window
//! number `w` lands in ring slot `w % windows`; advancing to a newer
//! window lazily zeroes the slots it reuses. A snapshot of the live
//! windows merges into one [`HistData`], whose percentiles are the "last
//! `windows × tick-period`" view — the live p50/p90/p99 the `Stats` wire
//! op and `wgr top` render.
//!
//! [`Histogram`]: crate::metrics::Histogram

use crate::metrics::{Histogram, HIST_BUCKETS};
use std::sync::{Mutex, MutexGuard};

/// A mergeable point-in-time histogram: bucket counts plus count/sum.
///
/// This is the exchange format between windows, snapshots, and render
/// layers: [`HistData::merge`] is associative and commutative, so the
/// merge of per-window (or per-shard, per-op) snapshots equals the
/// histogram of the union of their samples — the property the proptest in
/// `tests/rolling.rs` pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistData {
    /// Number of samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Per-bucket counts (log2 buckets, [`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl Default for HistData {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistData {
    /// An empty histogram.
    pub fn empty() -> Self {
        HistData {
            count: 0,
            sum: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Records one sample (used by windows; snapshots are usually built
    /// from live histograms instead).
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Adds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &HistData) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `q`-quantile (`0.0..=1.0`), by linear interpolation
    /// within the log2 bucket containing the target rank. Exact for
    /// bucket-boundary values; within one bucket width otherwise. 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, ceil so p100 = max bucket.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Histogram::bucket_lower_bound(b);
                let hi = if b <= 1 { lo } else { (lo << 1) - 1 };
                // Position of the target rank within this bucket.
                let into = rank - seen; // 1..=c
                let width = hi - lo;
                return lo + (width as f64 * into as f64 / c as f64) as u64;
            }
            seen += c;
        }
        0
    }

    /// Snapshot of a live [`Histogram`]'s current contents.
    pub fn of(h: &Histogram) -> Self {
        HistData {
            count: h.count(),
            sum: h.sum(),
            buckets: (0..HIST_BUCKETS).map(|b| h.bucket_count(b)).collect(),
        }
    }
}

/// One window of the ring: the logical window number it currently holds,
/// plus its samples.
#[derive(Debug, Clone)]
struct Window {
    window_no: u64,
    data: HistData,
}

#[derive(Debug)]
struct Ring {
    windows: Vec<Window>,
    /// Highest window number seen so far.
    newest: u64,
    /// Samples rejected because their window had already rotated out.
    late: u64,
}

/// A ring of [`HistData`] windows rotated by a caller-supplied logical
/// tick. See the module docs for the geometry; all methods take `&self`
/// (one short mutex acquisition each — this is a reporting structure, not
/// a per-nanosecond hot path; hot paths accumulate into [`Counter`]s or
/// [`Histogram`]s and feed a rolling histogram per *request*).
///
/// [`Counter`]: crate::metrics::Counter
#[derive(Debug)]
pub struct RollingHistogram {
    ring: Mutex<Ring>,
    num_windows: usize,
}

/// Locks the ring, recovering from poisoning (the data is plain counters;
/// a panicked recorder leaves nothing inconsistent worth propagating).
fn lock_ring(m: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Snapshot of a rolling histogram: the live windows (newest first) and
/// the count of late-dropped samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollingSnapshot {
    /// `(window_no, data)` for every window holding samples, newest first.
    pub windows: Vec<(u64, HistData)>,
    /// Samples dropped because they arrived for an already-rotated window.
    pub late: u64,
}

impl RollingSnapshot {
    /// All windows merged into one histogram — the "recent activity" view.
    pub fn merged(&self) -> HistData {
        let mut out = HistData::empty();
        for (_, w) in &self.windows {
            out.merge(w);
        }
        out
    }
}

impl RollingHistogram {
    /// A ring of `num_windows` windows (at least 1), starting at logical
    /// window 0.
    pub fn new(num_windows: usize) -> Self {
        let n = num_windows.max(1);
        RollingHistogram {
            ring: Mutex::new(Ring {
                windows: (0..n)
                    .map(|_| Window {
                        window_no: 0,
                        data: HistData::empty(),
                    })
                    .collect(),
                newest: 0,
                late: 0,
            }),
            num_windows: n,
        }
    }

    /// Number of windows in the ring.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Rotates forward so `window_no` is live, zeroing every slot the
    /// rotation reuses. Window numbers are monotone: advancing backwards
    /// is a no-op.
    pub fn advance_to(&self, window_no: u64) {
        let mut r = lock_ring(&self.ring);
        Self::advance_locked(&mut r, self.num_windows, window_no);
    }

    fn advance_locked(r: &mut Ring, n: usize, window_no: u64) {
        if window_no <= r.newest {
            return;
        }
        // Zero only the slots actually reused; a jump of >= n windows
        // wipes the whole ring exactly once.
        let steps = (window_no - r.newest).min(n as u64);
        for w in (window_no + 1 - steps)..=window_no {
            let slot = (w % n as u64) as usize;
            r.windows[slot].window_no = w;
            r.windows[slot].data = HistData::empty();
        }
        r.newest = window_no;
    }

    /// Records `v` into logical window `window_no`, rotating forward if
    /// `window_no` is newer than anything seen. A sample for a window that
    /// has already rotated out of the ring is counted as `late` and
    /// dropped — never smeared into a wrong window.
    pub fn record(&self, window_no: u64, v: u64) {
        let mut r = lock_ring(&self.ring);
        Self::advance_locked(&mut r, self.num_windows, window_no);
        let slot = (window_no % self.num_windows as u64) as usize;
        if r.windows[slot].window_no != window_no {
            r.late += 1;
            return;
        }
        r.windows[slot].data.record(v);
    }

    /// Point-in-time snapshot: live windows newest-first plus the late
    /// count. Empty windows are skipped.
    pub fn snapshot(&self) -> RollingSnapshot {
        let r = lock_ring(&self.ring);
        let mut windows: Vec<(u64, HistData)> = r
            .windows
            .iter()
            .filter(|w| w.data.count > 0)
            .map(|w| (w.window_no, w.data.clone()))
            .collect();
        windows.sort_by_key(|w| std::cmp::Reverse(w.0));
        RollingSnapshot {
            windows,
            late: r.late,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_single_bucket_interpolates() {
        let mut h = HistData::empty();
        for v in [1u64, 1, 1, 1] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(1.0), 1);
        assert_eq!(h.mean(), 1);
    }

    #[test]
    fn percentile_orders_across_buckets() {
        let mut h = HistData::empty();
        // 90 small samples, 10 big ones.
        for _ in 0..90 {
            h.record(4);
        }
        for _ in 0..10 {
            h.record(1 << 20);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= 7, "p50 in the small bucket, got {p50}");
        assert!(p99 >= 1 << 19, "p99 in the big bucket, got {p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = HistData::empty();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn ring_rotation_reuses_slots() {
        let r = RollingHistogram::new(2);
        r.record(0, 10);
        r.record(1, 20);
        // Window 2 reuses window 0's slot.
        r.record(2, 30);
        let snap = r.snapshot();
        let nos: Vec<u64> = snap.windows.iter().map(|w| w.0).collect();
        assert_eq!(nos, vec![2, 1]);
        assert_eq!(snap.merged().count, 2);
        assert_eq!(snap.late, 0);
    }

    #[test]
    fn late_samples_are_dropped_not_smeared() {
        let r = RollingHistogram::new(2);
        r.advance_to(5);
        r.record(1, 99); // window 1 rotated out long ago
        let snap = r.snapshot();
        assert_eq!(snap.late, 1);
        assert_eq!(snap.merged().count, 0);
    }

    #[test]
    fn large_jump_wipes_whole_ring_once() {
        let r = RollingHistogram::new(4);
        for w in 0..4u64 {
            r.record(w, 1);
        }
        r.advance_to(1_000_000);
        assert_eq!(r.snapshot().merged().count, 0);
        r.record(1_000_000, 7);
        assert_eq!(r.snapshot().merged().count, 1);
    }
}
