//! Live-service telemetry: the process-wide telemetry flag, per-request
//! **stage attribution**, and **lock contention metrics**.
//!
//! This is the third instrumentation tier (after always-on instance
//! counters and `--metrics`-gated shared measurements): fine-grained
//! timing that only a serving front-end wants, gated on its own flag so a
//! batch `wgr query` run pays exactly one relaxed bool load per would-be
//! measurement ([`telemetry_enabled`]) and nothing else.
//!
//! # Stage attribution
//!
//! A serve worker owns its connection for the connection's lifetime, so a
//! request is processed start-to-finish on one thread. That makes
//! thread-local accumulators a complete span context: the worker calls
//! [`stage_scope_begin`] after reading a request frame, the layers it
//! calls into ([`crate::Stopwatch`]-time their own critical work and)
//! report via [`stage_add`], and the worker collects the per-stage totals
//! with [`stage_scope_end`]. Outside an active scope `stage_add` is a
//! no-op, so instrumented library code behaves identically under batch
//! CLI runs.
//!
//! The stage taxonomy is fixed (DESIGN.md §5g): admission-queue wait,
//! shard/pool lock acquisition, cache lookup, list decode, response
//! write. Stages are disjoint slices of a request's wall time; whatever
//! they do not cover (index probes, scoring, row sorting) is the
//! remainder against the end-to-end latency.

use crate::metrics::Counter;
use crate::span::Stopwatch;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static TELEMETRY_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns per-request telemetry (stage attribution, lock timing) on or
/// off process-wide. The serve front-end raises this; batch commands
/// leave it down.
pub fn set_telemetry_enabled(on: bool) {
    TELEMETRY_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether per-request telemetry is on. One relaxed load — the entire
/// cost of every instrumentation site when telemetry is off.
#[inline]
pub fn telemetry_enabled() -> bool {
    TELEMETRY_ENABLED.load(Ordering::Relaxed)
}

/// Number of request stages.
pub const NUM_STAGES: usize = 5;

/// One stage of a serve request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Waiting in the admission queue before a worker claimed the
    /// connection (attributed to the connection's first request).
    QueueWait = 0,
    /// Blocked acquiring a contended lock: GraphCache shard, decoded-list
    /// memo, or buffer-pool mutex.
    ShardLock = 1,
    /// Inside the graph cache: lookup, admission, and eviction work (lock
    /// wait excluded — that is [`Stage::ShardLock`]).
    CacheLookup = 2,
    /// Decoding adjacency lists (memo lock wait excluded) and loading and
    /// parsing encoded graph blobs on a cache miss.
    ListDecode = 3,
    /// Writing the response frame back to the socket.
    RespWrite = 4,
}

impl Stage {
    /// Every stage, in index order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::QueueWait,
        Stage::ShardLock,
        Stage::CacheLookup,
        Stage::ListDecode,
        Stage::RespWrite,
    ];

    /// Stable snake_case name (slowlog schema, bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::ShardLock => "shard_lock",
            Stage::CacheLookup => "cache_lookup",
            Stage::ListDecode => "list_decode",
            Stage::RespWrite => "resp_write",
        }
    }

    /// Index into a `[u64; NUM_STAGES]` accumulator.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

thread_local! {
    static STAGE_NS: Cell<[u64; NUM_STAGES]> = const { Cell::new([0; NUM_STAGES]) };
    static STAGE_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Opens a stage scope on this thread, zeroing the accumulators.
/// Subsequent [`stage_add`] calls on this thread accumulate until
/// [`stage_scope_end`].
pub fn stage_scope_begin() {
    STAGE_NS.with(|s| s.set([0; NUM_STAGES]));
    STAGE_ACTIVE.with(|a| a.set(true));
}

/// Closes the thread's stage scope and returns the accumulated
/// nanoseconds per stage (indexed by [`Stage::index`]).
pub fn stage_scope_end() -> [u64; NUM_STAGES] {
    STAGE_ACTIVE.with(|a| a.set(false));
    STAGE_NS.with(|s| s.get())
}

/// Attributes `ns` nanoseconds to `stage` in the current thread's scope.
/// No-op (one relaxed load) when telemetry is off; no-op when no scope is
/// active. Allocation-free, so it is safe on the zero-alloc decode paths.
#[inline]
pub fn stage_add(stage: Stage, ns: u64) {
    if !telemetry_enabled() {
        return;
    }
    if !STAGE_ACTIVE.with(|a| a.get()) {
        return;
    }
    STAGE_NS.with(|s| {
        let mut v = s.get();
        v[stage.index()] = v[stage.index()].saturating_add(ns);
        s.set(v);
    });
}

/// Sampling period of [`stage_sample`]: one in this many calls is timed.
pub const SAMPLE_PERIOD: u32 = 8;

/// Scale factor a sampled duration must be multiplied by before it is
/// attributed, so sampled sums estimate the full population.
pub const SAMPLE_SCALE: u64 = SAMPLE_PERIOD as u64;

thread_local! {
    static SAMPLE_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Telemetry-gated *sampled* stopwatch for per-list hot paths (cache
/// lookups, list decodes): returns `Some` on one in [`SAMPLE_PERIOD`]
/// calls per thread, `None` otherwise (and always `None` with telemetry
/// off). The caller multiplies the elapsed time by [`SAMPLE_SCALE`]
/// before attributing it, making the attributed sum an unbiased estimate
/// of the true stage time while the untimed majority of calls pay only a
/// thread-local counter bump — these sites run hundreds of times per
/// request, where an unconditional clock pair would dominate the work
/// being measured.
#[inline]
pub fn stage_sample() -> Option<Stopwatch> {
    if !telemetry_enabled() {
        return None;
    }
    SAMPLE_TICK.with(|c| {
        let v = c.get().wrapping_add(1);
        c.set(v);
        (v % SAMPLE_PERIOD == 0).then(Stopwatch::start)
    })
}

/// Lock acquisition/hold accounting for one mutex (or one family of
/// mutexes sharing the counters). All updates are telemetry-gated by the
/// *callers* — when telemetry is off the lock site must not even start a
/// stopwatch; see [`GraphCache`]'s shard locking for the canonical shape.
///
/// [`GraphCache`]: ../wg_snode/index.html
#[derive(Debug, Clone, Default)]
pub struct LockMetrics {
    /// Telemetry-observed acquisitions.
    pub acquisitions: Counter,
    /// Acquisitions that found the lock held (`try_lock` failed) and had
    /// to block.
    pub contended: Counter,
    /// Nanoseconds spent blocked on contended acquisitions.
    pub wait_ns: Counter,
    /// Nanoseconds the lock was held (measured via [`LockMetrics::held`]).
    pub hold_ns: Counter,
}

/// Point-in-time copy of a [`LockMetrics`] group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Telemetry-observed acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to block.
    pub contended: u64,
    /// Nanoseconds spent blocked.
    pub wait_ns: u64,
    /// Nanoseconds held.
    pub hold_ns: u64,
}

impl LockMetrics {
    /// A private, unregistered group.
    pub fn unregistered() -> Self {
        Self::default()
    }

    /// A group registered in `reg` as `{prefix}.acquisitions`,
    /// `{prefix}.contended`, `{prefix}.wait_ns`, `{prefix}.hold_ns`.
    pub fn registered(reg: &crate::registry::Registry, prefix: &str) -> Self {
        Self {
            acquisitions: reg.counter(&format!("{prefix}.acquisitions")),
            contended: reg.counter(&format!("{prefix}.contended")),
            wait_ns: reg.counter(&format!("{prefix}.wait_ns")),
            hold_ns: reg.counter(&format!("{prefix}.hold_ns")),
        }
    }

    /// Registered in the global registry when the metrics flag is up at
    /// construction time, private otherwise (the [`CacheMetrics::auto`]
    /// pattern).
    ///
    /// [`CacheMetrics::auto`]: crate::metrics::CacheMetrics::auto
    pub fn auto(prefix: &str) -> Self {
        if crate::span::metrics_enabled() {
            Self::registered(crate::registry::global(), prefix)
        } else {
            Self::unregistered()
        }
    }

    /// Point-in-time copy of the counters.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquisitions: self.acquisitions.get(),
            contended: self.contended.get(),
            wait_ns: self.wait_ns.get(),
            hold_ns: self.hold_ns.get(),
        }
    }

    /// Starts a hold-time measurement when telemetry is on; the returned
    /// timer adds to `hold_ns` on drop. Bind it right after the guard so
    /// it drops with (just before) the guard at scope end.
    pub fn held(&self) -> Option<HoldTimer> {
        telemetry_enabled().then(|| HoldTimer {
            hold_ns: self.hold_ns.clone(),
            sw: Stopwatch::start(),
        })
    }

    /// Resets all four counters.
    pub fn reset(&self) {
        self.acquisitions.reset();
        self.contended.reset();
        self.wait_ns.reset();
        self.hold_ns.reset();
    }
}

/// Adds the elapsed time since construction to a lock's `hold_ns` when
/// dropped. Created by [`LockMetrics::held`].
#[derive(Debug)]
pub struct HoldTimer {
    hold_ns: Counter,
    sw: Stopwatch,
}

impl Drop for HoldTimer {
    fn drop(&mut self) {
        self.hold_ns.add(self.sw.elapsed_ns());
    }
}

/// One row of a shard heatmap: per-shard cache traffic plus the shard
/// mutex's contention profile. Produced by sharded caches, surfaced over
/// the serve `Stats` op and in `BENCH_serve.json` so FNV-1a routing skew
/// is measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Shard index.
    pub shard: usize,
    /// Lookups satisfied by this shard.
    pub hits: u64,
    /// Lookups that missed in this shard.
    pub misses: u64,
    /// Graphs currently resident in the shard.
    pub entries: u64,
    /// Bytes currently resident in the shard.
    pub bytes: u64,
    /// The shard mutex's contention profile.
    pub lock: LockStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    // The telemetry flag is process-global, so every flag-dependent
    // behaviour is exercised in this one test to avoid cross-test
    // interference under the parallel test runner (same pattern as the
    // trace ring's lifecycle test).
    #[test]
    fn stage_scope_lifecycle() {
        // Off: stage_add is a no-op even inside a scope.
        set_telemetry_enabled(false);
        stage_scope_begin();
        stage_add(Stage::CacheLookup, 42);
        assert_eq!(stage_scope_end()[Stage::CacheLookup.index()], 0);
        let m = LockMetrics::unregistered();
        assert!(m.held().is_none(), "no hold timer when telemetry is off");
        assert!(
            (0..2 * SAMPLE_PERIOD).all(|_| stage_sample().is_none()),
            "no sampling when telemetry is off"
        );

        // On: accumulation only while a scope is active.
        set_telemetry_enabled(true);
        stage_add(Stage::ListDecode, 100); // no scope: dropped
        stage_scope_begin();
        stage_add(Stage::ListDecode, 5);
        stage_add(Stage::ListDecode, 7);
        stage_add(Stage::ShardLock, 3);
        let got = stage_scope_end();
        assert_eq!(got[Stage::ListDecode.index()], 12);
        assert_eq!(got[Stage::ShardLock.index()], 3);
        assert_eq!(got[Stage::QueueWait.index()], 0);
        stage_add(Stage::RespWrite, 9); // scope closed: dropped
        stage_scope_begin();
        assert_eq!(stage_scope_end(), [0; NUM_STAGES], "scopes start zeroed");

        // Sampling: exactly one in SAMPLE_PERIOD calls is timed (the
        // thread-local tick makes the cadence deterministic per thread).
        let sampled = (0..2 * SAMPLE_PERIOD)
            .filter(|_| stage_sample().is_some())
            .count();
        assert_eq!(sampled, 2, "1-in-{SAMPLE_PERIOD} sampling cadence");

        // Hold timers record on drop while the flag is up.
        {
            let _held = m.held().expect("telemetry on");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = m.stats();
        assert!(s.hold_ns >= 1_000_000, "hold time recorded on drop");
        assert_eq!(s.acquisitions, 0, "held() does not count acquisitions");
        set_telemetry_enabled(false);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "queue_wait",
                "shard_lock",
                "cache_lookup",
                "list_decode",
                "resp_write"
            ]
        );
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn lock_metrics_snapshot_copies_counters() {
        let m = LockMetrics::unregistered();
        m.acquisitions.add(3);
        m.contended.inc();
        m.wait_ns.add(250);
        m.hold_ns.add(900);
        let s = m.stats();
        assert_eq!(
            s,
            LockStats {
                acquisitions: 3,
                contended: 1,
                wait_ns: 250,
                hold_ns: 900,
            }
        );
        m.reset();
        assert_eq!(m.stats(), LockStats::default());
    }
}
