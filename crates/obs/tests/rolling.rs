//! Rolling-window histogram contract tests: deterministic rotation under
//! fixed logical ticks, saturation behaviour, and a proptest that merged
//! window snapshots equal the histogram of all samples together.

// Test code: unwrap on fixture failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use wg_obs::{HistData, RollingHistogram};

/// Replays `(window, value)` samples and returns the snapshot's
/// `(window_no, count)` rows — the observable rotation state.
fn replay(windows: usize, samples: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let r = RollingHistogram::new(windows);
    for &(w, v) in samples {
        r.record(w, v);
    }
    r.snapshot()
        .windows
        .iter()
        .map(|(no, d)| (*no, d.count))
        .collect()
}

#[test]
fn rotation_is_deterministic_under_fixed_ticks() {
    let samples: Vec<(u64, u64)> = (0..200u64).map(|i| (i / 10, i * 3)).collect();
    let a = replay(4, &samples);
    let b = replay(4, &samples);
    assert_eq!(a, b, "same ticks, same samples, same ring state");
    // Exactly the last 4 windows are live, newest first, 10 samples each.
    assert_eq!(a, vec![(19, 10), (18, 10), (17, 10), (16, 10)]);
}

#[test]
fn advancing_without_samples_expires_old_windows() {
    let r = RollingHistogram::new(3);
    r.record(0, 5);
    r.record(1, 5);
    assert_eq!(r.snapshot().merged().count, 2);
    // Idle ticks roll both sample-bearing windows out of the ring.
    r.advance_to(4);
    assert_eq!(
        r.snapshot().merged().count,
        0,
        "idle rotation must expire stale windows"
    );
}

#[test]
fn window_numbers_are_monotone() {
    let r = RollingHistogram::new(4);
    r.record(10, 1);
    // A sample for an already-expired window is dropped and counted, not
    // recorded into someone else's window.
    r.record(2, 99);
    let snap = r.snapshot();
    assert_eq!(snap.late, 1);
    assert_eq!(snap.merged().count, 1);
    assert_eq!(snap.merged().sum, 1);
}

#[test]
fn sum_saturates_instead_of_wrapping() {
    let mut h = HistData::empty();
    h.record(u64::MAX);
    h.record(u64::MAX);
    assert_eq!(h.sum, u64::MAX, "sum saturates");
    assert_eq!(h.count, 2);
    // Merging saturated parts saturates too.
    let mut m = HistData::empty();
    m.record(u64::MAX);
    m.merge(&h);
    assert_eq!(m.sum, u64::MAX);
    assert_eq!(m.count, 3);
    // The rolling ring inherits the behaviour.
    let r = RollingHistogram::new(2);
    r.record(0, u64::MAX);
    r.record(0, u64::MAX);
    assert_eq!(r.snapshot().merged().sum, u64::MAX);
}

#[test]
fn percentiles_are_monotone_in_q() {
    let mut h = HistData::empty();
    for v in 0..1000u64 {
        h.record(v * v);
    }
    let mut last = 0;
    for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
        let p = h.percentile(q);
        assert!(p >= last, "percentile({q}) = {p} < {last}");
        last = p;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merged per-window snapshots equal the histogram of the union of
    /// their samples: recording values window-by-window and merging the
    /// snapshot must equal recording everything into one `HistData`,
    /// as long as no window rotated out (ring sized to hold them all).
    #[test]
    fn merged_windows_equal_sum_of_parts(
        per_window in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000, 0..20),
            1..6,
        ),
    ) {
        let ring = RollingHistogram::new(per_window.len());
        let mut whole = HistData::empty();
        for (w, values) in per_window.iter().enumerate() {
            for &v in values {
                ring.record(w as u64, v);
                whole.record(v);
            }
        }
        let snap = ring.snapshot();
        prop_assert_eq!(snap.late, 0);
        let merged = snap.merged();
        prop_assert_eq!(&merged, &whole, "merge must equal union of samples");
        // Merge is order-independent: fold the windows in reverse.
        let mut rev = HistData::empty();
        for (_, d) in snap.windows.iter() {
            rev.merge(d);
        }
        prop_assert_eq!(&rev, &whole);
    }
}
