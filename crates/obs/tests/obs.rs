//! Integration tests for `wg-obs`: histogram bucket geometry, snapshot
//! determinism, and trace-event JSON shape.
//!
//! Trace and metrics enablement are process-global, so everything touching
//! the trace ring lives in ONE test function — the parallel test runner
//! would otherwise interleave rings.

// Test code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use wg_obs::{Histogram, Registry, HIST_BUCKETS};

#[test]
fn histogram_bucket_boundaries() {
    let h = Histogram::new();
    // Value 0 is its own bucket; value v>0 lands in bucket bit_length(v),
    // i.e. the bucket covering [2^(b-1), 2^b).
    for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40] {
        h.record(v);
    }
    let buckets = h.nonzero_buckets();
    // (lower bound, count) pairs, ascending.
    assert_eq!(
        buckets,
        vec![
            (0, 1),          // 0
            (1, 1),          // 1
            (2, 2),          // 2, 3
            (4, 2),          // 4, 7
            (8, 1),          // 8
            (512, 1),        // 1023
            (1024, 1),       // 1024
            (1u64 << 40, 1), // 2^40
        ]
    );
    assert_eq!(h.count(), 10);
    assert_eq!(h.sum(), 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024 + (1u64 << 40));
}

#[test]
fn histogram_extreme_values_cannot_escape() {
    let h = Histogram::new();
    // The top bucket holds everything from 2^63 up to u64::MAX — there is
    // no overflow bucket to miss.
    h.record(u64::MAX);
    h.record(1u64 << 63);
    h.record((1u64 << 63) - 1);
    let buckets = h.nonzero_buckets();
    assert_eq!(buckets.len(), 2);
    assert_eq!(buckets[0], (1u64 << 62, 1)); // 2^63 - 1
    assert_eq!(buckets[1], (1u64 << 63, 2)); // 2^63 and u64::MAX
}

// 64 bit-length buckets plus the zero bucket: any u64 has a home.
const _: () = assert!(HIST_BUCKETS >= 65);

#[test]
fn histogram_sum_saturates_instead_of_wrapping() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
}

#[test]
fn snapshot_rendering_is_deterministic_and_sorted() {
    let reg = Registry::new();
    // Register in deliberately unsorted order.
    reg.counter("z.last").add(3);
    reg.counter("a.first").add(1);
    reg.gauge("m.middle").set(-7);
    reg.histogram("b.hist").record(5);

    let s1 = reg.snapshot();
    let s2 = reg.snapshot();
    assert_eq!(s1.to_text(), s2.to_text());
    assert_eq!(s1.to_json(), s2.to_json());

    let names: Vec<&str> = s1.entries.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["a.first", "b.hist", "m.middle", "z.last"]);

    // One metric per line: time-valued lines can be stripped with a grep.
    let json = s1.to_json();
    for name in &names {
        let matching: Vec<&str> = json.lines().filter(|l| l.contains(name)).collect();
        assert_eq!(matching.len(), 1, "{name} must render on exactly one line");
    }
    // And the whole document is valid JSON.
    let mut p = JsonParser::new(&json);
    p.value();
    p.finish();
}

#[test]
fn trace_ring_produces_wellformed_monotonic_chrome_json() {
    wg_obs::enable_trace(64);
    for i in 0..10u64 {
        let sw = wg_obs::Stopwatch::start();
        // A span with any (possibly zero) duration; name varies per event.
        wg_obs::record_span(&format!("ev{i}"), "test", &sw);
    }
    let (events, dropped) = wg_obs::take_trace();
    wg_obs::enable_trace(0); // disarm for any other process-global user
    assert_eq!(events.len(), 10);
    assert_eq!(dropped, 0);
    // take_trace sorts by timestamp: monotonically non-decreasing.
    for w in events.windows(2) {
        assert!(w[0].ts_us <= w[1].ts_us, "timestamps must be sorted");
    }
    let json = wg_obs::trace_to_json(&events, dropped);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"droppedEvents\":0"));
    let mut p = JsonParser::new(&json);
    p.value();
    p.finish();
}

/// A minimal recursive-descent JSON checker — enough to prove the emitted
/// documents parse, with no dependencies.
struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn finish(&mut self) {
        self.ws();
        assert_eq!(self.i, self.s.len(), "trailing garbage after JSON value");
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        assert!(self.i < self.s.len(), "unexpected end of JSON");
        self.s[self.i]
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(
            self.peek(),
            b,
            "expected {:?} at byte {}",
            b as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            _ => self.number(),
        }
    }

    fn object(&mut self) {
        self.eat(b'{');
        if self.peek() == b'}' {
            self.i += 1;
            return;
        }
        loop {
            self.string();
            self.eat(b':');
            self.value();
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return;
                }
                c => panic!("expected , or }} in object, got {:?}", c as char),
            }
        }
    }

    fn array(&mut self) {
        self.eat(b'[');
        if self.peek() == b']' {
            self.i += 1;
            return;
        }
        loop {
            self.value();
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return;
                }
                c => panic!("expected , or ] in array, got {:?}", c as char),
            }
        }
    }

    fn string(&mut self) {
        self.eat(b'"');
        while self.s[self.i] != b'"' {
            if self.s[self.i] == b'\\' {
                self.i += 1;
            }
            self.i += 1;
            assert!(self.i < self.s.len(), "unterminated string");
        }
        self.i += 1;
    }

    fn literal(&mut self, lit: &str) {
        self.ws();
        assert!(
            self.s[self.i..].starts_with(lit.as_bytes()),
            "expected literal {lit}"
        );
        self.i += lit.len();
    }

    fn number(&mut self) {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        assert!(self.i > start, "expected a number at byte {start}");
    }
}
