//! Synthetic Web-corpus generator — the workspace's stand-in for the
//! Stanford WebBase crawl used in the paper's evaluation.
//!
//! The ICDE'03 experiments run over 25–115 million crawled pages. That crawl
//! is not available, so this crate generates corpora that reproduce the
//! three empirical observations the S-Node construction exploits (§3 of the
//! paper), which are what make its compression and query numbers come out
//! the way they do:
//!
//! 1. **Link copying** — new pages copy a fraction of an existing page's
//!    adjacency list (the Kumar et al. evolving copying model), creating
//!    clusters of pages with near-identical out-links.
//! 2. **Domain and URL locality** — ≈75 % of links stay on the source host
//!    (Suel & Yuan's measurement, quoted in the paper), and intra-host links
//!    prefer lexicographically nearby URLs.
//! 3. **Page similarity** — a consequence of 1: topically related pages
//!    share adjacency-list structure.
//!
//! Pages live in a generated DNS/URL hierarchy (domains → hosts → directory
//! trees → pages) and carry phrase sets so the query layer can evaluate
//! text predicates ("pages in stanford.edu containing *Mobile networking*").
//!
//! Everything is deterministic given [`CorpusConfig::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod links;
pub mod names;
pub mod stats;
pub mod stream;
pub mod textio;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wg_graph::{Graph, PageId};

/// Identifier of a generated domain (index into [`Corpus::domains`]).
pub type DomainId = u32;
/// Identifier of a generated host (index into [`Corpus::hosts`]).
pub type HostId = u32;
/// Identifier of a generated phrase (index into [`Corpus::phrases`]).
pub type PhraseId = u32;

/// Tuning knobs for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of pages to generate.
    pub num_pages: u32,
    /// RNG seed; equal configs produce identical corpora.
    pub seed: u64,
    /// Target mean out-degree. The paper measured 14 on WebBase.
    pub mean_out_degree: f64,
    /// Fraction of links that stay on the source host (paper quotes ~0.75).
    pub intra_host_fraction: f64,
    /// Probability that a page is built by copying a prototype's links.
    pub copy_page_probability: f64,
    /// Per-link probability of keeping a prototype link when copying.
    pub copy_link_probability: f64,
    /// Number of second-level domains.
    pub num_domains: u32,
    /// Mean hosts per domain (host counts are geometric, min 1).
    pub hosts_per_domain_mean: f64,
    /// Maximum URL directory depth below the host root.
    pub max_path_depth: u32,
    /// Size of the phrase vocabulary.
    pub num_phrases: u32,
    /// Mean number of phrases attached to a page.
    pub phrases_per_page_mean: f64,
}

impl CorpusConfig {
    /// A configuration scaled sensibly for `num_pages` pages.
    ///
    /// The domain count grows **sub-linearly** (`≈ 4·pages^0.4`): a
    /// breadth-first crawl keeps returning to large popular sites, so new
    /// domains accrue ever more slowly — which is exactly what makes the
    /// paper's supernode counts grow sub-linearly in Figure 9 (the data
    /// sets are successive prefixes of one crawl, §4). WebBase crawled
    /// large sites deeply: domains average hundreds of pages.
    pub fn scaled(num_pages: u32, seed: u64) -> Self {
        let domains = (4.0 * f64::from(num_pages).powf(0.4)) as u32;
        Self {
            num_pages,
            seed,
            mean_out_degree: 14.0,
            intra_host_fraction: 0.75,
            copy_page_probability: 0.6,
            copy_link_probability: 0.8,
            num_domains: domains.clamp(4, 200_000),
            hosts_per_domain_mean: 3.0,
            max_path_depth: 4,
            num_phrases: (num_pages / 50).clamp(16, 1_000_000),
            phrases_per_page_mean: 6.0,
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::scaled(10_000, 42)
    }
}

/// A generated host: `name.domain` (e.g. `cs.stanford.edu`).
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// Fully-qualified host name, e.g. `"cs.stanford.edu"`.
    pub name: String,
    /// The owning domain.
    pub domain: DomainId,
    /// Pages on this host, in **lexicographic URL order**.
    pub pages_by_url: Vec<PageId>,
}

/// Per-page metadata.
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Full URL, e.g. `"http://cs.stanford.edu/students/grad/page0042.html"`.
    pub url: String,
    /// Owning host.
    pub host: HostId,
    /// Owning domain (denormalised from the host for fast predicates).
    pub domain: DomainId,
}

/// A complete synthetic repository: URL hierarchy, link graph, and phrase
/// assignments.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Generation parameters (kept for provenance).
    pub config: CorpusConfig,
    /// Domain names, e.g. `"stanford.edu"`. Indexed by [`DomainId`].
    pub domains: Vec<String>,
    /// Hosts. Indexed by [`HostId`].
    pub hosts: Vec<HostInfo>,
    /// Per-page metadata. Indexed by [`PageId`].
    pub pages: Vec<PageMeta>,
    /// The Web graph WG over the pages.
    pub graph: Graph,
    /// Phrase vocabulary (synthetic two-word phrases).
    pub phrases: Vec<String>,
    /// Sorted phrase ids per page.
    pub page_phrases: Vec<Vec<PhraseId>>,
}

impl Corpus {
    /// Generates a corpus from `config`.
    pub fn generate(config: CorpusConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Phase 0: the URL universe — domains, hosts, page URLs.
        let universe = names::generate_universe(&config, &mut rng);

        // Phase 1: the link graph via the copying model.
        let graph = links::generate_links(&config, &universe, &mut rng);

        // Phase 2: phrase vocabulary and per-page phrase sets.
        let (phrases, page_phrases) = generate_phrases(&config, &universe, &mut rng);

        Corpus {
            config,
            domains: universe.domains,
            hosts: universe.hosts,
            pages: universe.pages,
            graph,
            phrases,
            page_phrases,
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// All pages in the given domain (ascending page id).
    pub fn pages_in_domain(&self, domain: DomainId) -> Vec<PageId> {
        (0..self.num_pages())
            .filter(|&p| self.pages[p as usize].domain == domain)
            .collect()
    }

    /// Looks up a domain id by name.
    pub fn domain_by_name(&self, name: &str) -> Option<DomainId> {
        self.domains
            .iter()
            .position(|d| d == name)
            .map(|i| i as DomainId)
    }

    /// Whether page `p` carries phrase `ph`.
    pub fn page_has_phrase(&self, p: PageId, ph: PhraseId) -> bool {
        self.page_phrases[p as usize].binary_search(&ph).is_ok()
    }

    /// Domains with TLD `tld` (e.g. `"edu"`).
    pub fn domains_with_tld(&self, tld: &str) -> Vec<DomainId> {
        let suffix = format!(".{tld}");
        self.domains
            .iter()
            .enumerate()
            .filter(|(_, d)| d.ends_with(&suffix))
            .map(|(i, _)| i as DomainId)
            .collect()
    }
}

/// Phrase assignment: each phrase gets a Zipfian base popularity and a small
/// set of "home" domains where it is an order of magnitude more likely —
/// this produces the focused phrase-in-domain page sets the paper's queries
/// select on.
fn generate_phrases(
    config: &CorpusConfig,
    universe: &names::Universe,
    rng: &mut SmallRng,
) -> (Vec<String>, Vec<Vec<PhraseId>>) {
    let nph = config.num_phrases as usize;
    let phrases: Vec<String> = (0..nph).map(|i| names::phrase_text(i as u32)).collect();

    // Home domains: 1–3 per phrase.
    let ndom = universe.domains.len() as u32;
    let mut home_domains: Vec<Vec<DomainId>> = Vec::with_capacity(nph);
    for _ in 0..nph {
        let k = rng.gen_range(1..=3usize);
        let homes = (0..k).map(|_| rng.gen_range(0..ndom)).collect();
        home_domains.push(homes);
    }

    // Zipf weights over the vocabulary.
    let weights: Vec<f64> = (0..nph).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total_weight: f64 = weights.iter().sum();

    // Cumulative distribution for base sampling.
    let mut cdf = Vec::with_capacity(nph);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cdf.push(acc / total_weight);
    }
    let sample_phrase = |rng: &mut SmallRng| -> PhraseId {
        let x: f64 = rng.gen();
        cdf.partition_point(|&c| c < x).min(nph - 1) as PhraseId
    };

    let mut page_phrases = Vec::with_capacity(universe.pages.len());
    for page in &universe.pages {
        // Geometric phrase count around the mean.
        let p_stop = 1.0 / (config.phrases_per_page_mean + 1.0);
        let mut set = Vec::new();
        loop {
            if rng.gen::<f64>() < p_stop || set.len() >= 64 {
                break;
            }
            // 40% of picks come from phrases whose home includes this page's
            // domain (when any exist); the rest from the global Zipf.
            let ph = if rng.gen::<f64>() < 0.4 {
                // Rejection-sample a phrase at home in this domain: try a few
                // times, fall back to a deterministic domain-homed phrase.
                let mut found = None;
                for _ in 0..8 {
                    let cand = sample_phrase(rng);
                    if home_domains[cand as usize].contains(&page.domain) {
                        found = Some(cand);
                        break;
                    }
                }
                found.unwrap_or_else(|| {
                    let base = (u64::from(page.domain) * 2654435761) % nph as u64;
                    base as PhraseId
                })
            } else {
                sample_phrase(rng)
            };
            set.push(ph);
        }
        set.sort_unstable();
        set.dedup();
        page_phrases.push(set);
    }
    (phrases, page_phrases)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig::scaled(2_000, 7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.domains, b.domains);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.page_phrases, b.page_phrases);
        assert_eq!(
            a.pages.iter().map(|p| &p.url).collect::<Vec<_>>(),
            b.pages.iter().map(|p| &p.url).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusConfig::scaled(2_000, 7));
        let b = Corpus::generate(CorpusConfig::scaled(2_000, 8));
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn page_count_matches_config() {
        let c = small();
        assert_eq!(c.num_pages(), 2_000);
        assert_eq!(c.pages.len(), 2_000);
        assert_eq!(c.page_phrases.len(), 2_000);
        assert_eq!(c.graph.num_nodes(), 2_000);
    }

    #[test]
    fn urls_are_unique_and_well_formed() {
        let c = small();
        let mut urls: Vec<&str> = c.pages.iter().map(|p| p.url.as_str()).collect();
        urls.sort_unstable();
        let before = urls.len();
        urls.dedup();
        assert_eq!(before, urls.len(), "URLs must be unique");
        for p in &c.pages {
            assert!(p.url.starts_with("http://"), "bad url {}", p.url);
            let host = &c.hosts[p.host as usize];
            assert!(
                p.url["http://".len()..].starts_with(&host.name),
                "url {} not under host {}",
                p.url,
                host.name
            );
            assert!(host.name.ends_with(&c.domains[p.domain as usize]));
        }
    }

    #[test]
    fn hosts_pages_by_url_is_lexicographic_and_complete() {
        let c = small();
        let mut seen = 0u32;
        for h in &c.hosts {
            for w in h.pages_by_url.windows(2) {
                assert!(
                    c.pages[w[0] as usize].url < c.pages[w[1] as usize].url,
                    "host page list must be URL-sorted"
                );
            }
            for &p in &h.pages_by_url {
                assert_eq!(c.hosts[c.pages[p as usize].host as usize].name, h.name);
                seen += 1;
            }
        }
        assert_eq!(seen, c.num_pages(), "every page belongs to one host list");
    }

    #[test]
    fn phrases_are_sorted_unique_and_in_range() {
        let c = small();
        for set in &c.page_phrases {
            assert!(set.windows(2).all(|w| w[0] < w[1]));
            assert!(set.iter().all(|&p| p < c.config.num_phrases));
        }
    }

    #[test]
    fn some_edu_domains_exist() {
        let c = small();
        assert!(
            !c.domains_with_tld("edu").is_empty(),
            "queries need .edu domains"
        );
    }

    #[test]
    fn domain_lookup_round_trips() {
        let c = small();
        for (i, name) in c.domains.iter().enumerate() {
            assert_eq!(c.domain_by_name(name), Some(i as DomainId));
        }
        assert_eq!(c.domain_by_name("no.such.domain"), None);
    }

    #[test]
    fn pages_in_domain_is_consistent() {
        let c = small();
        let d = c.pages[0].domain;
        let pages = c.pages_in_domain(d);
        assert!(pages.contains(&0));
        for &p in &pages {
            assert_eq!(c.pages[p as usize].domain, d);
        }
    }
}
