//! Streaming corpus writer: generates the text-format corpus straight to
//! disk in bounded memory.
//!
//! [`Corpus::generate`](crate::Corpus::generate) materialises every URL
//! string, the full CSR graph (plus the builder's edge list), and every
//! phrase set before [`write_corpus`](crate::textio::write_corpus) puts a
//! byte on disk — at a million pages that is most of a gigabyte of peak
//! resident set for data that is written out linearly anyway. This module
//! runs the *same* three generation phases against the same RNG but emits
//! each file while its phase runs, holding only the compact cross-phase
//! state the copying model actually needs:
//!
//! * per page: owning host and domain ids (16 bytes with the transient
//!   directory/number pair), never the URL string;
//! * per host: the URL-sorted page-id list and the directory-tree strings
//!   (dropped once ranks are computed);
//! * for link generation: a flat adjacency arena of `O(edges)` ids — the
//!   copying model's prototypes are inherently the whole history — plus
//!   the preferential-attachment pool.
//!
//! **Byte identity is the contract**: for any config, the four files this
//! writer produces are identical to `write_corpus(dir,
//! &Corpus::generate(config))`, because both consume the seeded RNG in
//! exactly the same call sequence. A proptest pins this; treat any edit
//! to `names.rs`/`links.rs`/`generate_phrases` as an edit to this file
//! too.

use crate::names::{self, DIR_WORDS, DOMAIN_WORDS, HOST_WORDS, TLDS};
use crate::textio::TextIoError;
use crate::{CorpusConfig, DomainId, HostId, PhraseId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufWriter, Write};
use std::path::Path;
use wg_graph::PageId;

/// Summary counts from a streamed generation (the data itself is on disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Pages generated.
    pub num_pages: u32,
    /// Edges written to `edges.txt`.
    pub num_edges: u64,
    /// Domains generated.
    pub num_domains: u32,
    /// Hosts generated.
    pub num_hosts: u32,
}

/// Compact cross-phase state: what link and phrase generation need from
/// the URL universe, minus every string.
struct StreamedUniverse {
    num_domains: u32,
    num_hosts: u32,
    page_host: Vec<HostId>,
    page_domain: Vec<DomainId>,
    /// Per host, its pages in lexicographic URL order.
    host_pages_by_url: Vec<Vec<PageId>>,
    /// Per page, its rank within its host's URL-sorted list.
    url_rank_in_host: Vec<u32>,
}

/// Generates the corpus for `config` directly into `dir` as the standard
/// text format (`urls.txt`, `domains.txt`, `edges.txt`, `phrases.txt`),
/// byte-identical to generating in memory and calling `write_corpus`.
pub fn stream_corpus(dir: &Path, config: &CorpusConfig) -> Result<StreamStats, TextIoError> {
    std::fs::create_dir_all(dir)?;
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut urls = BufWriter::new(std::fs::File::create(dir.join("urls.txt"))?);
    let mut doms = BufWriter::new(std::fs::File::create(dir.join("domains.txt"))?);
    let universe = stream_universe(config, &mut rng, &mut urls, &mut doms)?;
    urls.flush()?;
    doms.flush()?;
    drop(urls);
    drop(doms);

    let mut edges = BufWriter::new(std::fs::File::create(dir.join("edges.txt"))?);
    let num_edges = stream_links(config, &universe, &mut rng, &mut edges)?;
    edges.flush()?;
    drop(edges);

    // Link-phase state (the adjacency arena, the PA pool) dies here; the
    // phrase phase only needs each page's domain.
    let StreamedUniverse {
        num_domains,
        num_hosts,
        page_domain,
        ..
    } = universe;

    let mut phrases = BufWriter::new(std::fs::File::create(dir.join("phrases.txt"))?);
    stream_phrases(config, num_domains, &page_domain, &mut rng, &mut phrases)?;
    phrases.flush()?;

    Ok(StreamStats {
        num_pages: page_domain.len() as u32,
        num_edges,
        num_domains,
        num_hosts,
    })
}

/// Phase 0 of [`names::generate_universe`], emitting `urls.txt` and
/// `domains.txt` as pages are created. The RNG call sequence mirrors the
/// in-memory version exactly: domain names, Zipf page allocation, host
/// counts, the crawl interleaving order, then per-page host/directory
/// draws.
fn stream_universe(
    config: &CorpusConfig,
    rng: &mut SmallRng,
    urls: &mut impl Write,
    doms: &mut impl Write,
) -> Result<StreamedUniverse, TextIoError> {
    let n = config.num_pages;
    let ndom = config.num_domains.max(1);

    // --- Domains: names stream out as they are drawn -----------------------
    let mut domains = Vec::with_capacity(ndom as usize);
    let mut used = std::collections::HashSet::new();
    let tld_total: u32 = TLDS.iter().map(|&(_, w)| w).sum();
    for i in 0..ndom {
        let tld = if (i as usize) < TLDS.len() {
            TLDS[i as usize].0
        } else {
            let mut x = rng.gen_range(0..tld_total);
            let mut pick = TLDS[0].0;
            for &(t, w) in TLDS {
                if x < w {
                    pick = t;
                    break;
                }
                x -= w;
            }
            pick
        };
        let base = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
        let mut name = format!("{base}.{tld}");
        let mut counter = 2;
        while !used.insert(name.clone()) {
            name = format!("{base}{counter}.{tld}");
            counter += 1;
        }
        writeln!(doms, "{name}")?;
        domains.push(name);
    }
    drop(used);
    writeln!(doms, "--")?;

    // Zipf page allocation across domains (identical arithmetic).
    let weights: Vec<f64> = (0..ndom).map(|i| 1.0 / (f64::from(i) + 1.0)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut domain_pages = vec![0u32; ndom as usize];
    let mut assigned = 0u32;
    for (i, &w) in weights.iter().enumerate() {
        let share = ((w / wsum) * f64::from(n)) as u32;
        let share = share.max(1).min(n - assigned);
        domain_pages[i] = share;
        assigned += share;
        if assigned == n {
            break;
        }
    }
    let mut i = 0usize;
    while assigned < n {
        domain_pages[i % ndom as usize] += 1;
        assigned += 1;
        i += 1;
    }
    drop(weights);

    // --- Hosts -------------------------------------------------------------
    let mut host_names: Vec<String> = Vec::new();
    let mut host_domain: Vec<DomainId> = Vec::new();
    let mut host_of_domain: Vec<Vec<HostId>> = vec![Vec::new(); ndom as usize];
    for (d, name) in domains.iter().enumerate() {
        let p_stop = 1.0 / config.hosts_per_domain_mean;
        let mut count = 1u32;
        while rng.gen::<f64>() >= p_stop && count < 12 {
            count += 1;
        }
        let count = count.min(domain_pages[d].max(1));
        for h in 0..count {
            let label = HOST_WORDS[h as usize % HOST_WORDS.len()];
            host_of_domain[d].push(host_names.len() as HostId);
            host_names.push(format!("{label}.{name}"));
            host_domain.push(d as DomainId);
        }
    }
    let num_hosts = host_names.len() as u32;
    drop(domains);

    // --- Pages -------------------------------------------------------------
    struct HostState {
        dirs: Vec<String>,
        dir_pages: Vec<u32>,
        next_page_number: u32,
    }
    let mut host_state: Vec<HostState> = host_names
        .iter()
        .map(|_| HostState {
            dirs: vec![String::new()],
            dir_pages: vec![0],
            next_page_number: 0,
        })
        .collect();

    // Crawl interleaving: the full order is drawn before any page exists,
    // exactly as in the in-memory generator (all `order` draws precede all
    // per-page draws in the RNG stream).
    let mut remaining: Vec<u32> = domain_pages.clone();
    let mut order: Vec<DomainId> = Vec::with_capacity(n as usize);
    {
        let mut live: Vec<DomainId> = (0..ndom).filter(|&d| remaining[d as usize] > 0).collect();
        while !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            let d = live[idx];
            order.push(d);
            remaining[d as usize] -= 1;
            if remaining[d as usize] == 0 {
                live.swap_remove(idx);
            }
        }
    }
    drop(remaining);
    drop(domain_pages);

    let mut page_host: Vec<HostId> = Vec::with_capacity(n as usize);
    let mut page_domain: Vec<DomainId> = Vec::with_capacity(n as usize);
    // Transient per-page (directory, number) pair — the whole URL, given
    // the host, without storing the string.
    let mut page_dir: Vec<u32> = Vec::with_capacity(n as usize);
    let mut page_number: Vec<u32> = Vec::with_capacity(n as usize);

    for d in order {
        let hs = &host_of_domain[d as usize];
        let hidx = if hs.len() == 1 {
            0
        } else {
            let r: f64 = rng.gen();
            ((r * r) * hs.len() as f64) as usize
        };
        let host_id = hs[hidx.min(hs.len() - 1)];
        let st = &mut host_state[host_id as usize];

        let spawn = st.dirs.len() == 1 || rng.gen::<f64>() < 0.03;
        let dir_idx = if !spawn {
            let w = |i: usize, c: u32| -> u32 {
                if i == 0 && st.dirs.len() > 1 {
                    1
                } else {
                    c + 1
                }
            };
            let total: u32 = st.dir_pages.iter().enumerate().map(|(i, &c)| w(i, c)).sum();
            let mut x = rng.gen_range(0..total);
            let mut pick = 0usize;
            for (i, &c) in st.dir_pages.iter().enumerate() {
                if x < w(i, c) {
                    pick = i;
                    break;
                }
                x -= w(i, c);
            }
            pick
        } else {
            let parent = rng.gen_range(0..st.dirs.len());
            let depth = st.dirs[parent].matches('/').count() as u32
                + u32::from(!st.dirs[parent].is_empty());
            if depth >= config.max_path_depth {
                parent
            } else {
                let word = DIR_WORDS[rng.gen_range(0..DIR_WORDS.len())];
                let path = if st.dirs[parent].is_empty() {
                    word.to_string()
                } else {
                    format!("{}/{}", st.dirs[parent], word)
                };
                if let Some(existing) = st.dirs.iter().position(|p| p == &path) {
                    existing
                } else {
                    st.dirs.push(path);
                    st.dir_pages.push(0);
                    st.dirs.len() - 1
                }
            }
        };
        st.dir_pages[dir_idx] += 1;
        let number = st.next_page_number;
        st.next_page_number += 1;
        let dir = &st.dirs[dir_idx];
        if dir.is_empty() {
            writeln!(
                urls,
                "http://{}/page{:06}.html",
                host_names[host_id as usize], number
            )?;
        } else {
            writeln!(
                urls,
                "http://{}/{}/page{:06}.html",
                host_names[host_id as usize], dir, number
            )?;
        }
        writeln!(doms, "{d}")?;
        page_host.push(host_id);
        page_domain.push(d);
        page_dir.push(dir_idx as u32);
        page_number.push(number);
    }
    drop(host_names);
    drop(host_of_domain);
    drop(host_domain);

    // --- Host page lists in URL order + per-page rank ----------------------
    // Within one host every URL shares the `http://host/` prefix, so URL
    // order is path order. Paths are materialised transiently per host for
    // the comparison (zero-padded page numbers are *not* numeric order
    // once a host crosses 10^6 pages, so compare real strings).
    let mut host_pages_by_url: Vec<Vec<PageId>> = vec![Vec::new(); num_hosts as usize];
    for (pid, &h) in page_host.iter().enumerate() {
        host_pages_by_url[h as usize].push(pid as PageId);
    }
    let mut url_rank_in_host = vec![0u32; page_host.len()];
    for (h, list) in host_pages_by_url.iter_mut().enumerate() {
        let st = &host_state[h];
        let mut keyed: Vec<(String, PageId)> = list
            .iter()
            .map(|&p| {
                let dir = &st.dirs[page_dir[p as usize] as usize];
                let num = page_number[p as usize];
                let path = if dir.is_empty() {
                    format!("page{num:06}.html")
                } else {
                    format!("{dir}/page{num:06}.html")
                };
                (path, p)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        list.clear();
        for (rank, (_, p)) in keyed.into_iter().enumerate() {
            url_rank_in_host[p as usize] = rank as u32;
            list.push(p);
        }
    }

    Ok(StreamedUniverse {
        num_domains: ndom,
        num_hosts,
        page_host,
        page_domain,
        host_pages_by_url,
        url_rank_in_host,
    })
}

/// Phase 1 of [`crate::links::generate_links`], emitting `edges.txt`
/// lines as each page's target list is finalised. Per-page target lists
/// come out sorted and deduplicated for ascending sources, which is
/// exactly the order `Graph::edges()` yields after the builder's global
/// sort — so the streamed lines match the in-memory file byte for byte.
/// The per-page adjacency lives in a flat arena (`O(edges)` ids, no
/// per-page `Vec` headers): the copying model needs the full history as
/// prototype material, so this is the floor for faithful generation.
fn stream_links(
    config: &CorpusConfig,
    u: &StreamedUniverse,
    rng: &mut SmallRng,
    out: &mut impl Write,
) -> Result<u64, TextIoError> {
    let n = u.page_host.len() as u32;
    if n == 0 {
        return Ok(0);
    }

    let mut adj_data: Vec<PageId> =
        Vec::with_capacity((f64::from(n) * config.mean_out_degree) as usize + 16);
    let mut adj_off: Vec<usize> = Vec::with_capacity(n as usize + 1);
    adj_off.push(0);

    let mut processed_in_host: Vec<Vec<PageId>> = vec![Vec::new(); u.num_hosts as usize];
    let mut pa_pool: Vec<PageId> = Vec::with_capacity(n as usize * 4);
    let mut host_profiles: Vec<Vec<Vec<PageId>>> = vec![Vec::new(); u.num_hosts as usize];
    const PROFILES_PER_HOST: usize = 3;
    const PROFILE_MAX: usize = 6;

    let p_geom = 1.0 / config.mean_out_degree.max(1.0);

    for v in 0..n {
        let host = u.page_host[v as usize];
        let host_pages = &u.host_pages_by_url[host as usize];
        let my_rank = u.url_rank_in_host[v as usize] as i64;

        let mut degree = 1u32;
        while rng.gen::<f64>() >= p_geom && degree < 300 {
            degree += 1;
        }
        let degree = degree.min(n - 1);

        let mut targets: Vec<PageId> = Vec::with_capacity(degree as usize);

        // 1. Copying step: the prototype's list is a slice of the arena.
        if rng.gen::<f64>() < config.copy_page_probability {
            let proto = if !processed_in_host[host as usize].is_empty() && rng.gen::<f64>() < 0.9 {
                let list = &processed_in_host[host as usize];
                Some(list[rng.gen_range(0..list.len())])
            } else if v > 0 {
                Some(rng.gen_range(0..v))
            } else {
                None
            };
            if let Some(p) = proto {
                let (lo, hi) = (adj_off[p as usize], adj_off[p as usize + 1]);
                for &t in &adj_data[lo..hi] {
                    if t != v && rng.gen::<f64>() < config.copy_link_probability {
                        targets.push(t);
                    }
                }
            }
        }

        let profile_idx = {
            let profiles = &mut host_profiles[host as usize];
            if profiles.is_empty()
                || (profiles.len() < PROFILES_PER_HOST && rng.gen::<f64>() < 0.15)
            {
                profiles.push(Vec::new());
                profiles.len() - 1
            } else {
                let r: f64 = rng.gen();
                ((r * r) * profiles.len() as f64) as usize % profiles.len()
            }
        };

        // 2. Fill remaining slots.
        let mut attempts = 0u32;
        while (targets.len() as u32) < degree && attempts < degree * 8 {
            attempts += 1;
            let t = if rng.gen::<f64>() < config.intra_host_fraction && host_pages.len() > 1 {
                if rng.gen::<f64>() < 0.85 {
                    let nav = host_pages.len().min(6);
                    host_pages[rng.gen_range(0..nav)]
                } else {
                    let mut off = 1i64;
                    while rng.gen::<f64>() < 0.7 && off < host_pages.len() as i64 {
                        off += 1;
                    }
                    let off = if rng.gen::<bool>() { off } else { -off };
                    let rank = (my_rank + off).rem_euclid(host_pages.len() as i64);
                    host_pages[rank as usize]
                }
            } else {
                let profile = &mut host_profiles[host as usize][profile_idx];
                if !profile.is_empty() && (profile.len() >= PROFILE_MAX || rng.gen::<f64>() < 0.9) {
                    profile[rng.gen_range(0..profile.len())]
                } else {
                    let fresh = if !pa_pool.is_empty() && rng.gen::<f64>() < 0.7 {
                        pa_pool[rng.gen_range(0..pa_pool.len())]
                    } else {
                        rng.gen_range(0..n)
                    };
                    profile.push(fresh);
                    fresh
                }
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }

        targets.sort_unstable();
        targets.dedup();
        targets.truncate(degree as usize);
        for &t in &targets {
            writeln!(out, "{v} {t}")?;
            pa_pool.push(t);
        }
        adj_data.extend_from_slice(&targets);
        adj_off.push(adj_data.len());
        processed_in_host[host as usize].push(v);
    }

    Ok(adj_data.len() as u64)
}

/// Phase 2 of [`crate::Corpus::generate`]'s phrase assignment, emitting
/// `phrases.txt` (vocabulary, `--`, one line per page) as it goes. Only
/// each page's domain id is consulted, so the whole phase is `O(pages)`
/// writes over `O(phrases)` state.
fn stream_phrases(
    config: &CorpusConfig,
    num_domains: u32,
    page_domain: &[DomainId],
    rng: &mut SmallRng,
    out: &mut impl Write,
) -> Result<(), TextIoError> {
    let nph = config.num_phrases as usize;
    for i in 0..nph {
        writeln!(out, "{}", names::phrase_text(i as u32))?;
    }
    writeln!(out, "--")?;

    let ndom = num_domains;
    let mut home_domains: Vec<Vec<DomainId>> = Vec::with_capacity(nph);
    for _ in 0..nph {
        let k = rng.gen_range(1..=3usize);
        let homes = (0..k).map(|_| rng.gen_range(0..ndom)).collect();
        home_domains.push(homes);
    }

    let weights: Vec<f64> = (0..nph).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(nph);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cdf.push(acc / total_weight);
    }
    let sample_phrase = |rng: &mut SmallRng| -> PhraseId {
        let x: f64 = rng.gen();
        cdf.partition_point(|&c| c < x).min(nph - 1) as PhraseId
    };

    let mut line = String::new();
    for &domain in page_domain {
        let p_stop = 1.0 / (config.phrases_per_page_mean + 1.0);
        let mut set = Vec::new();
        loop {
            if rng.gen::<f64>() < p_stop || set.len() >= 64 {
                break;
            }
            let ph = if rng.gen::<f64>() < 0.4 {
                let mut found = None;
                for _ in 0..8 {
                    let cand = sample_phrase(rng);
                    if home_domains[cand as usize].contains(&domain) {
                        found = Some(cand);
                        break;
                    }
                }
                found.unwrap_or_else(|| {
                    let base = (u64::from(domain) * 2654435761) % nph as u64;
                    base as PhraseId
                })
            } else {
                sample_phrase(rng)
            };
            set.push(ph);
        }
        set.sort_unstable();
        set.dedup();
        line.clear();
        for (i, p) in set.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&p.to_string());
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textio::write_corpus;
    use crate::Corpus;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_stream_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    const FILES: [&str; 4] = ["urls.txt", "domains.txt", "edges.txt", "phrases.txt"];

    fn assert_identical(config: CorpusConfig, tag: &str) {
        let dir_mem = temp(&format!("{tag}_mem"));
        let dir_str = temp(&format!("{tag}_str"));
        let corpus = Corpus::generate(config.clone());
        write_corpus(&dir_mem, &corpus).unwrap();
        let stats = stream_corpus(&dir_str, &config).unwrap();
        assert_eq!(stats.num_pages, corpus.num_pages());
        assert_eq!(stats.num_edges, corpus.graph.num_edges());
        assert_eq!(stats.num_domains as usize, corpus.domains.len());
        assert_eq!(stats.num_hosts as usize, corpus.hosts.len());
        for f in FILES {
            let a = std::fs::read(dir_mem.join(f)).unwrap();
            let b = std::fs::read(dir_str.join(f)).unwrap();
            assert!(a == b, "{f} differs for {tag}");
        }
        std::fs::remove_dir_all(&dir_mem).ok();
        std::fs::remove_dir_all(&dir_str).ok();
    }

    #[test]
    fn streamed_files_match_in_memory_writer() {
        assert_identical(CorpusConfig::scaled(3_000, 42), "s42");
        assert_identical(CorpusConfig::scaled(777, 7), "s7");
    }

    #[test]
    fn tiny_corpora_stream_without_panic() {
        for n in [1u32, 2, 5, 16] {
            assert_identical(CorpusConfig::scaled(n, 3), &format!("tiny{n}"));
        }
    }

    #[test]
    fn streamed_corpus_reads_back() {
        let dir = temp("readback");
        let config = CorpusConfig::scaled(1_200, 11);
        let stats = stream_corpus(&dir, &config).unwrap();
        let corpus = crate::textio::read_corpus(&dir).unwrap();
        assert_eq!(corpus.num_pages(), stats.num_pages);
        assert_eq!(corpus.graph.num_edges(), stats.num_edges);
        std::fs::remove_dir_all(&dir).ok();
    }
}
