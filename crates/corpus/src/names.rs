//! The URL universe: domain names, host names, directory trees, page URLs.
//!
//! Domain sizes are Zipfian (a few yahoo.com-scale giants, a long tail of
//! tiny sites), matching the skew the paper leans on when it notes that
//! "supernodes containing pages from popular domains … will have much higher
//! in-degree" (§3.3, footnote 8). Directory trees grow by preferential
//! attachment so that real-looking shared prefixes emerge, which is what
//! URL split (§3.2) exploits.

use crate::{CorpusConfig, DomainId, HostId, HostInfo, PageMeta};
use rand::rngs::SmallRng;
use rand::Rng;
use wg_graph::PageId;

/// Output of URL-universe generation, consumed by link generation.
#[derive(Debug)]
pub struct Universe {
    /// Domain names.
    pub domains: Vec<String>,
    /// Hosts with their URL-sorted page lists.
    pub hosts: Vec<HostInfo>,
    /// Per-page metadata.
    pub pages: Vec<PageMeta>,
    /// For each page, its rank within its host's URL-sorted list.
    pub url_rank_in_host: Vec<u32>,
}

/// Word stock for domain labels.
pub(crate) const DOMAIN_WORDS: &[&str] = &[
    "stanford",
    "acme",
    "berkeley",
    "globex",
    "initech",
    "umbrella",
    "hooli",
    "wayne",
    "stark",
    "wonka",
    "tyrell",
    "cyberdyne",
    "aperture",
    "blackmesa",
    "oscorp",
    "gringotts",
    "duff",
    "vandelay",
    "dunder",
    "pied",
    "sterling",
    "nakatomi",
    "weyland",
    "yoyodyne",
    "zorg",
    "massive",
    "virtucon",
    "monarch",
    "octan",
    "soylent",
    "omni",
    "lexcorp",
    "gekko",
    "prestige",
    "ingen",
    "biffco",
    "chotchkie",
    "strickland",
    "callahan",
    "kruger",
];

/// TLDs with sampling weights; .edu is guaranteed at least a handful of
/// domains because the paper's queries predicate on it.
pub(crate) const TLDS: &[(&str, u32)] = &[
    ("com", 45),
    ("edu", 20),
    ("org", 15),
    ("net", 12),
    ("gov", 8),
];

/// Host labels beyond `www`.
pub(crate) const HOST_WORDS: &[&str] = &[
    "www", "cs", "ee", "physics", "math", "lib", "news", "mail", "shop", "blog", "dev", "docs",
    "research", "labs", "media", "support", "forum", "wiki", "archive", "portal",
];

/// Directory-name stock.
pub(crate) const DIR_WORDS: &[&str] = &[
    "students",
    "grad",
    "undergrad",
    "admin",
    "people",
    "projects",
    "papers",
    "courses",
    "about",
    "products",
    "services",
    "press",
    "events",
    "software",
    "data",
    "reports",
    "archive",
    "misc",
    "community",
    "resources",
    "help",
    "api",
    "images",
    "staff",
    "alumni",
    "research",
    "groups",
    "teams",
    "notes",
    "public",
];

/// Deterministic synthetic phrase text for phrase id `i`.
pub fn phrase_text(i: u32) -> String {
    const ADJ: &[&str] = &[
        "mobile",
        "quantum",
        "internet",
        "optical",
        "neural",
        "parallel",
        "semantic",
        "visual",
        "stochastic",
        "modern",
        "classical",
        "digital",
        "analog",
        "hybrid",
        "adaptive",
        "secure",
    ];
    const NOUN: &[&str] = &[
        "networking",
        "cryptography",
        "censorship",
        "interferometry",
        "synthesis",
        "rendering",
        "databases",
        "compilers",
        "painters",
        "music",
        "robotics",
        "genomics",
        "markets",
        "logic",
        "topology",
        "imaging",
    ];
    let a = ADJ[(i as usize) % ADJ.len()];
    let n = NOUN[(i as usize / ADJ.len()) % NOUN.len()];
    let gen = i as usize / (ADJ.len() * NOUN.len());
    if gen == 0 {
        format!("{a} {n}")
    } else {
        format!("{a} {n} {gen}")
    }
}

/// Generates the full URL universe.
pub fn generate_universe(config: &CorpusConfig, rng: &mut SmallRng) -> Universe {
    let n = config.num_pages;
    let ndom = config.num_domains.max(1);

    // --- Domains -----------------------------------------------------------
    let mut domains = Vec::with_capacity(ndom as usize);
    let mut used = std::collections::HashSet::new();
    let tld_total: u32 = TLDS.iter().map(|&(_, w)| w).sum();
    for i in 0..ndom {
        // Guarantee the first few domains cover every TLD so predicates like
        // ".edu" always have targets even in tiny corpora.
        let tld = if (i as usize) < TLDS.len() {
            TLDS[i as usize].0
        } else {
            let mut x = rng.gen_range(0..tld_total);
            let mut pick = TLDS[0].0;
            for &(t, w) in TLDS {
                if x < w {
                    pick = t;
                    break;
                }
                x -= w;
            }
            pick
        };
        // Base word plus a disambiguating suffix when exhausted.
        let base = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
        let mut name = format!("{base}.{tld}");
        let mut counter = 2;
        while !used.insert(name.clone()) {
            name = format!("{base}{counter}.{tld}");
            counter += 1;
        }
        domains.push(name);
    }

    // Zipf page allocation across domains: weight 1/(rank+1).
    let weights: Vec<f64> = (0..ndom).map(|i| 1.0 / (f64::from(i) + 1.0)).collect();
    let wsum: f64 = weights.iter().sum();
    // Multinomial-ish split with every domain getting at least one page when
    // possible.
    let mut domain_pages = vec![0u32; ndom as usize];
    let mut assigned = 0u32;
    for (i, &w) in weights.iter().enumerate() {
        let share = ((w / wsum) * f64::from(n)) as u32;
        let share = share.max(1).min(n - assigned);
        domain_pages[i] = share;
        assigned += share;
        if assigned == n {
            break;
        }
    }
    // Distribute any remainder to the largest domains (first ranks).
    let mut i = 0usize;
    while assigned < n {
        domain_pages[i % ndom as usize] += 1;
        assigned += 1;
        i += 1;
    }

    // --- Hosts --------------------------------------------------------------
    let mut hosts: Vec<HostInfo> = Vec::new();
    let mut host_of_domain: Vec<Vec<HostId>> = vec![Vec::new(); ndom as usize];
    for (d, name) in domains.iter().enumerate() {
        // Geometric host count with the configured mean, at least 1, capped
        // by the pages available.
        let p_stop = 1.0 / config.hosts_per_domain_mean;
        let mut count = 1u32;
        while rng.gen::<f64>() >= p_stop && count < 12 {
            count += 1;
        }
        let count = count.min(domain_pages[d].max(1));
        for h in 0..count {
            let label = HOST_WORDS[h as usize % HOST_WORDS.len()];
            host_of_domain[d].push(hosts.len() as HostId);
            hosts.push(HostInfo {
                name: format!("{label}.{name}"),
                domain: d as DomainId,
                pages_by_url: Vec::new(),
            });
        }
    }

    // --- Pages ---------------------------------------------------------------
    // Each domain's pages are split across its hosts (first host, typically
    // `www`, gets the biggest share), and each host grows a directory tree by
    // preferential attachment.
    struct HostState {
        /// Existing directories as path strings (index 0 = root "").
        dirs: Vec<String>,
        /// Attachment weight per directory (children spawn near busy dirs).
        dir_pages: Vec<u32>,
        next_page_number: u32,
    }
    let mut host_state: Vec<HostState> = hosts
        .iter()
        .map(|_| HostState {
            dirs: vec![String::new()],
            dir_pages: vec![0],
            next_page_number: 0,
        })
        .collect();

    let mut pages: Vec<PageMeta> = Vec::with_capacity(n as usize);
    // Interleave page creation across domains the way a crawl frontier does:
    // round-robin weighted by remaining quota.
    let mut remaining: Vec<u32> = domain_pages.clone();
    let mut order: Vec<DomainId> = Vec::with_capacity(n as usize);
    {
        let mut live: Vec<DomainId> = (0..ndom).filter(|&d| remaining[d as usize] > 0).collect();
        while !live.is_empty() {
            let idx = rng.gen_range(0..live.len());
            let d = live[idx];
            order.push(d);
            remaining[d as usize] -= 1;
            if remaining[d as usize] == 0 {
                live.swap_remove(idx);
            }
        }
    }

    for d in order {
        let hs = &host_of_domain[d as usize];
        // Zipf-ish host choice within the domain: first host favoured.
        let hidx = if hs.len() == 1 {
            0
        } else {
            let r: f64 = rng.gen();
            ((r * r) * hs.len() as f64) as usize
        };
        let host_id = hs[hidx.min(hs.len() - 1)];
        let st = &mut host_state[host_id as usize];

        // Choose a directory. Content pages overwhelmingly live in
        // subdirectories on real sites (the root holds index pages), so:
        // grow a child immediately while the tree is trivial, otherwise
        // mostly attach to an existing non-root directory by popularity,
        // occasionally spawn a new child.
        let spawn = st.dirs.len() == 1 || rng.gen::<f64>() < 0.03;
        let dir_idx = if !spawn {
            // Preferential attachment over existing dirs (+1 smoothing);
            // the root's weight is clamped so it stops hoarding pages once
            // real directories exist.
            let w = |i: usize, c: u32| -> u32 {
                if i == 0 && st.dirs.len() > 1 {
                    1
                } else {
                    c + 1
                }
            };
            let total: u32 = st.dir_pages.iter().enumerate().map(|(i, &c)| w(i, c)).sum();
            let mut x = rng.gen_range(0..total);
            let mut pick = 0usize;
            for (i, &c) in st.dir_pages.iter().enumerate() {
                if x < w(i, c) {
                    pick = i;
                    break;
                }
                x -= w(i, c);
            }
            pick
        } else {
            // Spawn a child of a random existing directory within depth cap.
            let parent = rng.gen_range(0..st.dirs.len());
            let depth = st.dirs[parent].matches('/').count() as u32
                + u32::from(!st.dirs[parent].is_empty());
            if depth >= config.max_path_depth {
                parent
            } else {
                let word = DIR_WORDS[rng.gen_range(0..DIR_WORDS.len())];
                let path = if st.dirs[parent].is_empty() {
                    word.to_string()
                } else {
                    format!("{}/{}", st.dirs[parent], word)
                };
                // Reuse an identical path if it already exists.
                if let Some(existing) = st.dirs.iter().position(|p| p == &path) {
                    existing
                } else {
                    st.dirs.push(path);
                    st.dir_pages.push(0);
                    st.dirs.len() - 1
                }
            }
        };
        st.dir_pages[dir_idx] += 1;
        let number = st.next_page_number;
        st.next_page_number += 1;
        let dir = &st.dirs[dir_idx];
        let url = if dir.is_empty() {
            format!(
                "http://{}/page{:06}.html",
                hosts[host_id as usize].name, number
            )
        } else {
            format!(
                "http://{}/{}/page{:06}.html",
                hosts[host_id as usize].name, dir, number
            )
        };
        pages.push(PageMeta {
            url,
            host: host_id,
            domain: d,
        });
    }

    // --- Host page lists in URL order + per-page rank -----------------------
    let mut url_rank_in_host = vec![0u32; pages.len()];
    for (pid, page) in pages.iter().enumerate() {
        hosts[page.host as usize].pages_by_url.push(pid as PageId);
    }
    for host in &mut hosts {
        host.pages_by_url
            .sort_by(|&a, &b| pages[a as usize].url.cmp(&pages[b as usize].url));
        for (rank, &p) in host.pages_by_url.iter().enumerate() {
            url_rank_in_host[p as usize] = rank as u32;
        }
    }

    Universe {
        domains,
        hosts,
        pages,
        url_rank_in_host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn universe(n: u32, seed: u64) -> Universe {
        let cfg = CorpusConfig::scaled(n, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_universe(&cfg, &mut rng)
    }

    #[test]
    fn every_tld_is_represented() {
        let u = universe(3_000, 1);
        for &(tld, _) in TLDS {
            let suffix = format!(".{tld}");
            assert!(
                u.domains.iter().any(|d| d.ends_with(&suffix)),
                "missing TLD {tld}"
            );
        }
    }

    #[test]
    fn domain_names_are_unique() {
        let u = universe(3_000, 2);
        let mut d = u.domains.clone();
        d.sort();
        let n = d.len();
        d.dedup();
        assert_eq!(n, d.len());
    }

    #[test]
    fn domain_sizes_are_skewed() {
        let u = universe(5_000, 3);
        let mut counts = vec![0u32; u.domains.len()];
        for p in &u.pages {
            counts[p.domain as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min >= 1, "every domain owns at least one page");
        assert!(
            max > 20 * min.max(1),
            "Zipf allocation should be heavily skewed (max {max}, min {min})"
        );
    }

    #[test]
    fn url_rank_matches_sorted_position() {
        let u = universe(2_000, 4);
        for h in &u.hosts {
            for (rank, &p) in h.pages_by_url.iter().enumerate() {
                assert_eq!(u.url_rank_in_host[p as usize], rank as u32);
            }
        }
    }

    #[test]
    fn directory_depth_is_bounded() {
        let u = universe(4_000, 5);
        for p in &u.pages {
            let path = p
                .url
                .splitn(4, '/')
                .nth(3)
                .expect("url has a path component");
            // path = "dir1/dir2/.../pageNNN.html"; directory depth = segments - 1
            let depth = path.matches('/').count();
            assert!(depth <= 4, "url {} exceeds depth cap", p.url);
        }
    }

    #[test]
    fn phrase_text_is_unique_per_id() {
        let texts: Vec<String> = (0..1000).map(phrase_text).collect();
        let mut sorted = texts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), texts.len());
    }

    #[test]
    fn shared_prefixes_exist_for_url_split() {
        // URL split needs sibling pages sharing multi-level prefixes.
        let u = universe(5_000, 6);
        let mut by_prefix = std::collections::HashMap::new();
        for p in &u.pages {
            if let Some(slash) = p.url.rfind('/') {
                *by_prefix.entry(&p.url[..slash]).or_insert(0u32) += 1;
            }
        }
        let multi = by_prefix.values().filter(|&&c| c >= 5).count();
        assert!(
            multi > 10,
            "expected many directories with >=5 pages, got {multi}"
        );
    }
}
