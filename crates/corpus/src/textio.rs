//! Plain-text corpus interchange format.
//!
//! Three files describe a repository, so that inputs can come from any
//! tool (or a real crawl) rather than only the synthetic generator:
//!
//! * `urls.txt` — one URL per line, line number = page id;
//! * `domains.txt` — domain names (one per line), a `--` separator, then
//!   one domain id per page;
//! * `edges.txt` — `src dst` pairs, whitespace-separated.
//!
//! The phrase assignments are optional (`phrases.txt`: the vocabulary,
//! `--`, then per page a space-separated phrase-id list, possibly empty).

use crate::{Corpus, CorpusConfig, DomainId, HostInfo, PageMeta, PhraseId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use wg_graph::{GraphBuilder, PageId};

/// Errors from reading the text format.
#[derive(Debug)]
pub enum TextIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structural problem in the input files.
    Malformed(String),
}

impl std::fmt::Display for TextIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextIoError::Io(e) => write!(f, "corpus I/O error: {e}"),
            TextIoError::Malformed(m) => write!(f, "malformed corpus: {m}"),
        }
    }
}

impl std::error::Error for TextIoError {}

impl From<std::io::Error> for TextIoError {
    fn from(e: std::io::Error) -> Self {
        TextIoError::Io(e)
    }
}

/// Writes `corpus` into `dir` in the text format (including phrases).
pub fn write_corpus(dir: &Path, corpus: &Corpus) -> Result<(), TextIoError> {
    std::fs::create_dir_all(dir)?;
    let mut urls = BufWriter::new(std::fs::File::create(dir.join("urls.txt"))?);
    for p in &corpus.pages {
        writeln!(urls, "{}", p.url)?;
    }
    let mut doms = BufWriter::new(std::fs::File::create(dir.join("domains.txt"))?);
    for d in &corpus.domains {
        writeln!(doms, "{d}")?;
    }
    writeln!(doms, "--")?;
    for p in &corpus.pages {
        writeln!(doms, "{}", p.domain)?;
    }
    let mut edges = BufWriter::new(std::fs::File::create(dir.join("edges.txt"))?);
    for (u, v) in corpus.graph.edges() {
        writeln!(edges, "{u} {v}")?;
    }
    let mut phrases = BufWriter::new(std::fs::File::create(dir.join("phrases.txt"))?);
    for ph in &corpus.phrases {
        writeln!(phrases, "{ph}")?;
    }
    writeln!(phrases, "--")?;
    for set in &corpus.page_phrases {
        let line: Vec<String> = set.iter().map(|p| p.to_string()).collect();
        writeln!(phrases, "{}", line.join(" "))?;
    }
    Ok(())
}

/// Reads a corpus from `dir`. `phrases.txt` is optional; hosts are derived
/// from URL host names.
pub fn read_corpus(dir: &Path) -> Result<Corpus, TextIoError> {
    let urls: Vec<String> = BufReader::new(std::fs::File::open(dir.join("urls.txt"))?)
        .lines()
        .collect::<std::io::Result<_>>()?;
    let n = urls.len();

    // Domains.
    let dom_lines: Vec<String> = BufReader::new(std::fs::File::open(dir.join("domains.txt"))?)
        .lines()
        .collect::<std::io::Result<_>>()?;
    let sep = dom_lines
        .iter()
        .position(|l| l == "--")
        .ok_or_else(|| TextIoError::Malformed("domains.txt missing -- separator".into()))?;
    let domains: Vec<String> = dom_lines[..sep]
        .iter()
        .filter(|l| !l.starts_with('#'))
        .cloned()
        .collect();
    let page_domain: Vec<DomainId> = dom_lines[sep + 1..]
        .iter()
        .map(|l| {
            l.parse()
                .map_err(|_| TextIoError::Malformed(format!("bad domain id {l:?}")))
        })
        .collect::<Result<_, _>>()?;
    if page_domain.len() != n {
        return Err(TextIoError::Malformed(format!(
            "{} pages but {} page-domain lines",
            n,
            page_domain.len()
        )));
    }
    if let Some(&bad) = page_domain.iter().find(|&&d| d as usize >= domains.len()) {
        return Err(TextIoError::Malformed(format!(
            "page-domain id {bad} out of range"
        )));
    }

    // Hosts derived from URLs.
    let host_name = |url: &str| -> String {
        let rest = url.strip_prefix("http://").unwrap_or(url);
        rest.split('/').next().unwrap_or(rest).to_string()
    };
    let mut host_ids: std::collections::HashMap<String, u32> = Default::default();
    let mut hosts: Vec<HostInfo> = Vec::new();
    let mut pages: Vec<PageMeta> = Vec::with_capacity(n);
    for (i, url) in urls.iter().enumerate() {
        let name = host_name(url);
        let next_id = hosts.len() as u32;
        let hid = *host_ids.entry(name.clone()).or_insert_with(|| {
            hosts.push(HostInfo {
                name,
                domain: page_domain[i],
                pages_by_url: Vec::new(),
            });
            next_id
        });
        pages.push(PageMeta {
            url: url.clone(),
            host: hid,
            domain: page_domain[i],
        });
    }
    for (pid, page) in pages.iter().enumerate() {
        hosts[page.host as usize].pages_by_url.push(pid as PageId);
    }
    for h in &mut hosts {
        h.pages_by_url
            .sort_by(|&a, &b| pages[a as usize].url.cmp(&pages[b as usize].url));
    }

    // Edges.
    let mut builder = GraphBuilder::new(n as u32);
    for line in BufReader::new(std::fs::File::open(dir.join("edges.txt"))?).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, TextIoError> {
            tok.ok_or_else(|| TextIoError::Malformed(format!("short edge line {line:?}")))?
                .parse()
                .map_err(|_| TextIoError::Malformed(format!("bad edge line {line:?}")))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if u as usize >= n || v as usize >= n {
            return Err(TextIoError::Malformed(format!(
                "edge ({u}, {v}) out of range"
            )));
        }
        builder.add_edge(u, v);
    }
    let graph = builder.build();

    // Phrases (optional).
    let (phrases, page_phrases) = match std::fs::File::open(dir.join("phrases.txt")) {
        Err(_) => (Vec::new(), vec![Vec::new(); n]),
        Ok(f) => {
            let lines: Vec<String> = BufReader::new(f).lines().collect::<std::io::Result<_>>()?;
            let sep = lines
                .iter()
                .position(|l| l == "--")
                .ok_or_else(|| TextIoError::Malformed("phrases.txt missing --".into()))?;
            let phrases: Vec<String> = lines[..sep].to_vec();
            let mut page_phrases: Vec<Vec<PhraseId>> = Vec::with_capacity(n);
            for l in &lines[sep + 1..] {
                let mut set: Vec<PhraseId> = l
                    .split_whitespace()
                    .map(|t| {
                        t.parse()
                            .map_err(|_| TextIoError::Malformed(format!("bad phrase id {t:?}")))
                    })
                    .collect::<Result<_, _>>()?;
                set.sort_unstable();
                set.dedup();
                page_phrases.push(set);
            }
            if page_phrases.len() != n {
                return Err(TextIoError::Malformed(
                    "phrases.txt page-line count mismatch".into(),
                ));
            }
            (phrases, page_phrases)
        }
    };

    Ok(Corpus {
        config: CorpusConfig::scaled(n.max(1) as u32, 0),
        domains,
        hosts,
        pages,
        graph,
        phrases,
        page_phrases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Corpus;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_textio_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn round_trips_a_generated_corpus() {
        let dir = temp("rt");
        let corpus = Corpus::generate(CorpusConfig::scaled(800, 9));
        write_corpus(&dir, &corpus).unwrap();
        let back = read_corpus(&dir).unwrap();
        assert_eq!(back.domains, corpus.domains);
        assert_eq!(back.graph, corpus.graph);
        assert_eq!(back.phrases, corpus.phrases);
        assert_eq!(back.page_phrases, corpus.page_phrases);
        assert_eq!(
            back.pages.iter().map(|p| &p.url).collect::<Vec<_>>(),
            corpus.pages.iter().map(|p| &p.url).collect::<Vec<_>>()
        );
        // Hosts are reconstructed from URLs, so only hosts that actually
        // own pages exist after the round trip.
        let non_empty = corpus
            .hosts
            .iter()
            .filter(|h| !h.pages_by_url.is_empty())
            .count();
        assert_eq!(back.hosts.len(), non_empty);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_phrases_file_is_tolerated() {
        let dir = temp("nophrases");
        let corpus = Corpus::generate(CorpusConfig::scaled(100, 2));
        write_corpus(&dir, &corpus).unwrap();
        std::fs::remove_file(dir.join("phrases.txt")).unwrap();
        let back = read_corpus(&dir).unwrap();
        assert!(back.phrases.is_empty());
        assert_eq!(back.graph, corpus.graph);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        let dir = temp("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("urls.txt"),
            "http://a.x.com/p0\nhttp://a.x.com/p1\n",
        )
        .unwrap();
        // Missing separator.
        std::fs::write(dir.join("domains.txt"), "x.com\n0\n0\n").unwrap();
        std::fs::write(dir.join("edges.txt"), "0 1\n").unwrap();
        assert!(matches!(read_corpus(&dir), Err(TextIoError::Malformed(_))));
        // Fix separator, break an edge.
        std::fs::write(dir.join("domains.txt"), "x.com\n--\n0\n0\n").unwrap();
        std::fs::write(dir.join("edges.txt"), "0 7\n").unwrap();
        assert!(matches!(read_corpus(&dir), Err(TextIoError::Malformed(_))));
        // Domain id out of range.
        std::fs::write(dir.join("edges.txt"), "0 1\n").unwrap();
        std::fs::write(dir.join("domains.txt"), "x.com\n--\n0\n5\n").unwrap();
        assert!(matches!(read_corpus(&dir), Err(TextIoError::Malformed(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_corpus_builds_snode_ready_structures() {
        // A hand-written corpus (as an external tool would produce).
        let dir = temp("external");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("urls.txt"),
            "http://www.a.edu/x/p0.html\nhttp://www.a.edu/y/p1.html\nhttp://www.b.com/p2.html\n",
        )
        .unwrap();
        std::fs::write(dir.join("domains.txt"), "a.edu\nb.com\n--\n0\n0\n1\n").unwrap();
        std::fs::write(dir.join("edges.txt"), "0 1\n1 2\n2 0\n").unwrap();
        let corpus = read_corpus(&dir).unwrap();
        assert_eq!(corpus.num_pages(), 3);
        assert_eq!(corpus.graph.num_edges(), 3);
        assert_eq!(corpus.hosts.len(), 2);
        assert_eq!(corpus.pages_in_domain(0), vec![0, 1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
