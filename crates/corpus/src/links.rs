//! Link generation: the evolving copying model with host locality.
//!
//! Pages are processed in creation (crawl) order. Each page draws an
//! out-degree from a shifted-geometric distribution around the configured
//! mean, then fills its adjacency list from three sources:
//!
//! * **Copied links** — with probability `copy_page_probability` the page
//!   picks a *prototype*: an already-processed page on the same host (or any
//!   processed page when the host has none), and keeps each prototype link
//!   with probability `copy_link_probability`. This is the Kumar et al.
//!   copying step and yields clusters of near-identical adjacency lists —
//!   Observation 1 of the paper.
//! * **Host-local links** — remaining slots are filled intra-host with
//!   probability `intra_host_fraction`, targeting pages whose URL rank is
//!   geometrically close to the source's (Observation 2: lexicographic
//!   locality).
//! * **Global links** — the rest go to arbitrary pages via preferential
//!   attachment (append-to-pool sampling), producing the heavy-tailed
//!   in-degree distribution Huffman-by-in-degree coding relies on.

use crate::names::Universe;
use crate::CorpusConfig;
use rand::rngs::SmallRng;
use rand::Rng;
use wg_graph::{Graph, GraphBuilder, PageId};

/// Generates the Web graph over `universe`'s pages.
pub fn generate_links(config: &CorpusConfig, universe: &Universe, rng: &mut SmallRng) -> Graph {
    let n = universe.pages.len() as u32;
    let mut builder =
        GraphBuilder::with_edge_capacity(n, (f64::from(n) * config.mean_out_degree) as usize + 16);
    if n == 0 {
        return builder.build();
    }

    // Per-page adjacency (kept so prototypes can be copied).
    let mut adj: Vec<Vec<PageId>> = vec![Vec::new(); n as usize];
    // Processed pages per host, for prototype choice.
    let mut processed_in_host: Vec<Vec<PageId>> =
        universe.hosts.iter().map(|_| Vec::new()).collect();
    // Preferential-attachment pool: every link target is appended, so a
    // uniform draw from the pool is proportional to in-degree (+ the seed
    // entries giving newcomers a chance).
    let mut pa_pool: Vec<PageId> = Vec::with_capacity(n as usize * 4);
    // Per-host *link profiles*. Real pages do not each invent their own
    // external links: they copy a template or an existing page (paper §3,
    // Observation 1 — link copying — and the Kumar et al. model). Each
    // host therefore carries a handful of profiles (shared sets of external
    // targets: a blogroll, a template footer, a department link list), and
    // each page adopts one. Pages sharing a profile have near-identical
    // external adjacency — exactly the "clusters of pages with very similar
    // adjacency lists" S-Node's clustered split and reference encoding
    // exploit.
    let mut host_profiles: Vec<Vec<Vec<PageId>>> =
        universe.hosts.iter().map(|_| Vec::new()).collect();
    const PROFILES_PER_HOST: usize = 3;
    const PROFILE_MAX: usize = 6;

    // Shifted geometric out-degree: d = 1 + Geom(p), mean = 1 + (1-p)/p.
    let p_geom = 1.0 / config.mean_out_degree.max(1.0);

    for v in 0..n {
        let host = universe.pages[v as usize].host;
        let host_pages = &universe.hosts[host as usize].pages_by_url;
        let my_rank = universe.url_rank_in_host[v as usize] as i64;

        let mut degree = 1u32;
        while rng.gen::<f64>() >= p_geom && degree < 300 {
            degree += 1;
        }
        // A page cannot link to more distinct pages than exist (minus itself).
        let degree = degree.min(n - 1);

        let mut targets: Vec<PageId> = Vec::with_capacity(degree as usize);

        // 1. Copying step.
        if rng.gen::<f64>() < config.copy_page_probability {
            let proto = if !processed_in_host[host as usize].is_empty() && rng.gen::<f64>() < 0.9 {
                let list = &processed_in_host[host as usize];
                Some(list[rng.gen_range(0..list.len())])
            } else if v > 0 {
                Some(rng.gen_range(0..v))
            } else {
                None
            };
            if let Some(u) = proto {
                for &t in &adj[u as usize] {
                    if t != v && rng.gen::<f64>() < config.copy_link_probability {
                        targets.push(t);
                    }
                }
            }
        }

        // Adopt a link profile for this page's external links.
        let profile_idx = {
            let profiles = &mut host_profiles[host as usize];
            if profiles.is_empty()
                || (profiles.len() < PROFILES_PER_HOST && rng.gen::<f64>() < 0.15)
            {
                profiles.push(Vec::new());
                profiles.len() - 1
            } else {
                // Zipf-ish: earlier (template) profiles dominate.
                let r: f64 = rng.gen();
                ((r * r) * profiles.len() as f64) as usize % profiles.len()
            }
        };

        // 2. Fill remaining slots.
        let mut attempts = 0u32;
        while (targets.len() as u32) < degree && attempts < degree * 8 {
            attempts += 1;
            let t = if rng.gen::<f64>() < config.intra_host_fraction && host_pages.len() > 1 {
                if rng.gen::<f64>() < 0.85 {
                    // Site-template link: every page of a host links to the
                    // same handful of navigation/index pages (the first few
                    // in URL order). This shared structure is what makes
                    // same-host adjacency lists similar on the real Web.
                    let nav = host_pages.len().min(6);
                    host_pages[rng.gen_range(0..nav)]
                } else {
                    // Host-local, lexicographically nearby: offset ~ ±Geom.
                    let mut off = 1i64;
                    while rng.gen::<f64>() < 0.7 && off < host_pages.len() as i64 {
                        off += 1;
                    }
                    let off = if rng.gen::<bool>() { off } else { -off };
                    let rank = (my_rank + off).rem_euclid(host_pages.len() as i64);
                    host_pages[rank as usize]
                }
            } else {
                // External link from the page's adopted profile; profiles
                // grow lazily from preferential-attachment picks.
                let profile = &mut host_profiles[host as usize][profile_idx];
                if !profile.is_empty() && (profile.len() >= PROFILE_MAX || rng.gen::<f64>() < 0.9) {
                    profile[rng.gen_range(0..profile.len())]
                } else {
                    let fresh = if !pa_pool.is_empty() && rng.gen::<f64>() < 0.7 {
                        // Preferential attachment.
                        pa_pool[rng.gen_range(0..pa_pool.len())]
                    } else {
                        // Uniform fallback.
                        rng.gen_range(0..n)
                    };
                    profile.push(fresh);
                    fresh
                }
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }

        targets.sort_unstable();
        targets.dedup();
        targets.truncate(degree as usize);
        for &t in &targets {
            builder.add_edge(v, t);
            pa_pool.push(t);
        }
        adj[v as usize] = targets;
        processed_in_host[host as usize].push(v);
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::generate_universe;
    use rand::SeedableRng;

    fn build(n: u32, seed: u64) -> (CorpusConfig, Universe, Graph) {
        let cfg = CorpusConfig::scaled(n, seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let u = generate_universe(&cfg, &mut rng);
        let g = generate_links(&cfg, &u, &mut rng);
        (cfg, u, g)
    }

    #[test]
    fn mean_out_degree_is_near_target() {
        let (cfg, _, g) = build(8_000, 11);
        let mean = g.mean_out_degree();
        assert!(
            (mean - cfg.mean_out_degree).abs() < cfg.mean_out_degree * 0.35,
            "mean out-degree {mean} too far from target {}",
            cfg.mean_out_degree
        );
    }

    #[test]
    fn no_self_loops_from_generator() {
        let (_, _, g) = build(3_000, 12);
        for (u, v) in g.edges() {
            assert_ne!(u, v, "generator should not emit self-loops");
        }
    }

    #[test]
    fn intra_host_fraction_is_respected() {
        let (cfg, u, g) = build(8_000, 13);
        let mut intra = 0u64;
        let mut total = 0u64;
        for (a, b) in g.edges() {
            total += 1;
            if u.pages[a as usize].host == u.pages[b as usize].host {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        // Copied links inherit their prototype's mix, so allow a wide band
        // around the configured fraction.
        assert!(
            frac > cfg.intra_host_fraction - 0.25 && frac < 0.97,
            "intra-host fraction {frac} out of plausible range"
        );
    }

    #[test]
    fn in_degree_distribution_is_heavy_tailed() {
        let (_, _, g) = build(10_000, 14);
        let t = g.transpose();
        let mut degs: Vec<u32> = (0..t.num_nodes()).map(|v| t.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let mean = g.mean_out_degree();
        assert!(
            f64::from(degs[0]) > mean * 8.0,
            "max in-degree {} should dwarf the mean {mean}",
            degs[0]
        );
    }

    #[test]
    fn adjacency_similarity_clusters_exist() {
        // The copying model must produce pairs of pages sharing most of
        // their adjacency lists — the foundation of reference encoding.
        let (_, u, g) = build(6_000, 15);
        let mut best_overlap = 0f64;
        // Compare same-host neighbours (the candidates reference encoding
        // actually uses).
        for h in &u.hosts {
            let pages = &h.pages_by_url;
            for w in pages.windows(8) {
                let a = g.neighbors(w[0]);
                if a.len() < 4 {
                    continue;
                }
                for &b_id in &w[1..] {
                    let b = g.neighbors(b_id);
                    if b.is_empty() {
                        continue;
                    }
                    let shared = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
                    let overlap = shared as f64 / a.len().max(b.len()) as f64;
                    best_overlap = best_overlap.max(overlap);
                }
            }
        }
        assert!(
            best_overlap > 0.5,
            "copying model should create similar adjacency lists, best overlap {best_overlap}"
        );
    }

    #[test]
    fn graph_edges_within_bounds() {
        let (_, _, g) = build(1_000, 16);
        assert_eq!(g.num_nodes(), 1_000);
        assert!(g.num_edges() > 1_000, "graph should be reasonably dense");
        for (a, b) in g.edges() {
            assert!(a < 1_000 && b < 1_000);
        }
    }

    #[test]
    fn tiny_corpora_do_not_panic() {
        for n in [1u32, 2, 3, 5, 10] {
            let (_, _, g) = build(n, 17);
            assert_eq!(g.num_nodes(), n);
        }
    }
}
