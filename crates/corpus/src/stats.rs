//! Corpus statistics: the empirical properties the S-Node construction
//! exploits, measurable so tests and benchmark reports can verify that the
//! synthetic corpus actually exhibits them.

use crate::Corpus;

/// Summary statistics of a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Pages in the corpus.
    pub num_pages: u32,
    /// Directed links.
    pub num_links: u64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Fraction of links whose endpoints share a host.
    pub intra_host_fraction: f64,
    /// Fraction of links whose endpoints share a domain.
    pub intra_domain_fraction: f64,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Number of domains / hosts.
    pub num_domains: u32,
    /// Number of hosts.
    pub num_hosts: u32,
    /// Mean Jaccard similarity of adjacency lists between pages adjacent in
    /// their host's URL order (a proxy for "link copying" strength).
    pub neighbor_jaccard: f64,
}

/// Computes [`CorpusStats`] for `corpus`.
pub fn compute(corpus: &Corpus) -> CorpusStats {
    let g = &corpus.graph;
    let mut intra_host = 0u64;
    let mut intra_domain = 0u64;
    let total = g.num_edges();
    for (a, b) in g.edges() {
        let pa = &corpus.pages[a as usize];
        let pb = &corpus.pages[b as usize];
        if pa.host == pb.host {
            intra_host += 1;
        }
        if pa.domain == pb.domain {
            intra_domain += 1;
        }
    }
    let mut in_deg = vec![0u32; g.num_nodes() as usize];
    for (_, b) in g.edges() {
        in_deg[b as usize] += 1;
    }

    // Jaccard similarity of URL-adjacent page pairs per host.
    let mut jac_sum = 0f64;
    let mut jac_count = 0u64;
    for host in &corpus.hosts {
        for w in host.pages_by_url.windows(2) {
            let a = g.neighbors(w[0]);
            let b = g.neighbors(w[1]);
            if a.is_empty() && b.is_empty() {
                continue;
            }
            let inter = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
            let union = a.len() + b.len() - inter;
            jac_sum += inter as f64 / union as f64;
            jac_count += 1;
        }
    }

    CorpusStats {
        num_pages: g.num_nodes(),
        num_links: total,
        mean_out_degree: g.mean_out_degree(),
        intra_host_fraction: if total == 0 {
            0.0
        } else {
            intra_host as f64 / total as f64
        },
        intra_domain_fraction: if total == 0 {
            0.0
        } else {
            intra_domain as f64 / total as f64
        },
        max_in_degree: in_deg.into_iter().max().unwrap_or(0),
        num_domains: corpus.domains.len() as u32,
        num_hosts: corpus.hosts.len() as u32,
        neighbor_jaccard: if jac_count == 0 {
            0.0
        } else {
            jac_sum / jac_count as f64
        },
    }
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pages              : {}", self.num_pages)?;
        writeln!(f, "links              : {}", self.num_links)?;
        writeln!(f, "mean out-degree    : {:.2}", self.mean_out_degree)?;
        writeln!(
            f,
            "intra-host links   : {:.1}%",
            self.intra_host_fraction * 100.0
        )?;
        writeln!(
            f,
            "intra-domain links : {:.1}%",
            self.intra_domain_fraction * 100.0
        )?;
        writeln!(f, "max in-degree      : {}", self.max_in_degree)?;
        writeln!(
            f,
            "domains / hosts    : {} / {}",
            self.num_domains, self.num_hosts
        )?;
        write!(f, "URL-neighbor jaccard: {:.3}", self.neighbor_jaccard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, CorpusConfig};

    #[test]
    fn stats_reflect_paper_observations() {
        let c = Corpus::generate(CorpusConfig::scaled(6_000, 99));
        let s = compute(&c);
        assert_eq!(s.num_pages, 6_000);
        // Observation 2: strong host locality.
        assert!(
            s.intra_host_fraction > 0.5,
            "intra-host fraction {} too low",
            s.intra_host_fraction
        );
        assert!(s.intra_domain_fraction >= s.intra_host_fraction);
        // Observation 1/3: URL-adjacent pages share links notably more than
        // random pairs would (random Jaccard ≈ degree/n ≈ 0.002).
        assert!(
            s.neighbor_jaccard > 0.05,
            "neighbor jaccard {} shows no copying signal",
            s.neighbor_jaccard
        );
        // Heavy-tailed in-degrees.
        assert!(f64::from(s.max_in_degree) > s.mean_out_degree * 5.0);
    }

    #[test]
    fn display_renders_without_panic() {
        let c = Corpus::generate(CorpusConfig::scaled(500, 1));
        let s = compute(&c);
        let text = format!("{s}");
        assert!(text.contains("pages"));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let mut cfg = CorpusConfig::scaled(1, 5);
        cfg.mean_out_degree = 1.0;
        let c = Corpus::generate(cfg);
        let s = compute(&c);
        assert_eq!(s.num_pages, 1);
        // A single page cannot link anywhere; all ratios must be finite.
        assert!(s.intra_host_fraction.is_finite());
        assert!(s.neighbor_jaccard.is_finite());
    }
}
