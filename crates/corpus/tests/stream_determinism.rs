//! Satellite property test for the streaming corpus writer: for any
//! (size, seed), generating in memory and writing via `write_corpus`
//! produces the same bytes as streaming straight to disk — the two
//! writers must consume the seeded RNG identically in every phase.

// Test code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use wg_corpus::stream::stream_corpus;
use wg_corpus::textio::write_corpus;
use wg_corpus::{Corpus, CorpusConfig};

fn temp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_streamprop_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

proptest! {
    // Each case generates two corpora; keep the count moderate so the
    // suite stays in seconds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_same_bytes_through_either_writer(
        pages in 1u32..1_500,
        seed in 0u64..1_000_000,
    ) {
        let config = CorpusConfig::scaled(pages, seed);
        let dir_mem = temp(&format!("mem_{pages}_{seed}"));
        let dir_str = temp(&format!("str_{pages}_{seed}"));

        write_corpus(&dir_mem, &Corpus::generate(config.clone())).unwrap();
        stream_corpus(&dir_str, &config).unwrap();

        for f in ["urls.txt", "domains.txt", "edges.txt", "phrases.txt"] {
            let a = std::fs::read(dir_mem.join(f)).unwrap();
            let b = std::fs::read(dir_str.join(f)).unwrap();
            prop_assert!(a == b, "{} differs at pages={} seed={}", f, pages, seed);
        }
        std::fs::remove_dir_all(&dir_mem).ok();
        std::fs::remove_dir_all(&dir_str).ok();
    }
}
