//! Frontier batching must be answer-invisible: all six queries return
//! identical rows whether the S-Node representation is driven through
//! `out_neighbors_batch` / `out_neighbors_into` (the fast path the query
//! layer uses) or through plain single-page `out_neighbors` calls, on the
//! same 20k-page corpus the committed benchmark runs.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use wg_corpus::{Corpus, CorpusConfig};
use wg_graph::PageId;
use wg_query::queries::{
    query1, query2, query3, query4, query5, query6, QueryEnv, QueryOutput, Workload,
};
use wg_query::reps::{Scheme, SchemeSet};
use wg_query::{DomainTable, GraphRep, PageRankIndex, Result, TextIndex};
use wg_snode::SNodeConfig;

/// Wraps a representation and forces every navigation through the scalar
/// `out_neighbors` entry point: the trait's default `out_neighbors_into`
/// and `out_neighbors_batch` then degrade to a per-page loop with no
/// grouping, which is exactly the pre-batching access pattern.
struct Scalarized(Box<dyn GraphRep>);

impl GraphRep for Scalarized {
    fn scheme_name(&self) -> &'static str {
        self.0.scheme_name()
    }

    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        self.0.out_neighbors(p)
    }

    fn reset(&self) -> Result<()> {
        self.0.reset()
    }
}

struct Fx {
    root: std::path::PathBuf,
    set: SchemeSet,
    text: TextIndex,
    pagerank: PageRankIndex,
    domains: DomainTable,
    workload: Workload,
}

impl Drop for Fx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn setup(pages: u32, seed: u64) -> Fx {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let doms: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut root = std::env::temp_dir();
    root.push(format!("wg_batcheq_{pages}_{seed}_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &doms,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .unwrap();
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domains = DomainTable::build(&corpus, &set.renumbering);
    let workload = Workload::discover(&text, &domains);
    Fx {
        root,
        set,
        text,
        pagerank,
        domains,
        workload,
    }
}

fn run_all(f: &Fx, scalar: bool) -> Vec<QueryOutput> {
    let env = QueryEnv {
        text: &f.text,
        pagerank: &f.pagerank,
        domains: &f.domains,
    };
    let mut fwd: Box<dyn GraphRep> = f.set.open(Scheme::SNode).unwrap();
    let mut back: Box<dyn GraphRep> = f.set.open_transpose(Scheme::SNode).unwrap();
    if scalar {
        fwd = Box::new(Scalarized(fwd));
        back = Box::new(Scalarized(back));
    }
    vec![
        query1(env, fwd.as_ref(), &f.workload.q1).unwrap(),
        query2(env, fwd.as_ref(), &f.workload.q2).unwrap(),
        query3(env, fwd.as_ref(), back.as_ref(), &f.workload.q3).unwrap(),
        query4(env, back.as_ref(), &f.workload.q4).unwrap(),
        query5(env, fwd.as_ref(), &f.workload.q5).unwrap(),
        query6(env, fwd.as_ref(), &f.workload.q6).unwrap(),
    ]
}

/// The benchmark corpus (20k pages, seed 42): batched and scalar S-Node
/// navigation must produce identical rows — keys *and* scores, which pins
/// the f64 accumulation order — on all six queries.
#[test]
fn batched_equals_scalar_on_bench_corpus() {
    let f = setup(20_000, 42);
    let batched = run_all(&f, false);
    let scalar = run_all(&f, true);
    assert!(
        batched.iter().any(|o| !o.rows.is_empty()),
        "workload should produce non-trivial results"
    );
    for (qi, (b, s)) in batched.iter().zip(&scalar).enumerate() {
        assert_eq!(
            b.rows,
            s.rows,
            "Q{} differs between batched and scalar navigation",
            qi + 1
        );
    }
    // The batched run must actually have navigated (sanity: counters are
    // per-run but nav stats live in the outputs).
    for (qi, b) in batched.iter().enumerate() {
        assert!(b.nav.nav_calls > 0, "Q{} must navigate", qi + 1);
    }
}

/// A second corpus shape at a different scale and seed, because the
/// partition (hence the supernode grouping the batch path exploits) comes
/// out differently.
#[test]
fn batched_equals_scalar_on_small_corpus() {
    let f = setup(1_500, 7);
    let batched = run_all(&f, false);
    let scalar = run_all(&f, true);
    for (qi, (b, s)) in batched.iter().zip(&scalar).enumerate() {
        assert_eq!(b.rows, s.rows, "Q{} differs", qi + 1);
    }
}
