//! Hand-computed query fixtures: a tiny repository whose query answers are
//! worked out by hand, evaluated against the real pipeline end-to-end.
//!
//! Layout (8 pages):
//!
//! | page | domain        | phrases | out-links |
//! |------|---------------|---------|-----------|
//! | 0    | alpha.edu (0) | {T}     | 4, 5      |
//! | 1    | alpha.edu (0) | {T}     | 4         |
//! | 2    | alpha.edu (0) | {}      | 6         |
//! | 3    | beta.edu  (1) | {T}     | 4, 7      |
//! | 4    | gamma.edu (2) | {}      | 0         |
//! | 5    | delta.com (3) | {}      | —         |
//! | 6    | gamma.edu (2) | {}      | —         |
//! | 7    | delta.com (3) | {}      | —         |
//!
//! T = the topic phrase. alpha.edu plays stanford; beta.edu plays berkeley.

use wg_corpus::{Corpus, CorpusConfig, HostInfo, PageMeta};
use wg_graph::Graph;
use wg_query::queries::*;
use wg_query::reps::{renumber_graph, Scheme, SchemeSet};
use wg_query::{DomainTable, PageRankIndex, TextIndex};
use wg_snode::SNodeConfig;

/// Builds the fixture corpus by hand (bypassing the generator).
fn fixture_corpus() -> Corpus {
    let domains = vec![
        "alpha.edu".to_string(),
        "beta.edu".to_string(),
        "gamma.edu".to_string(),
        "delta.com".to_string(),
    ];
    let urls = [
        "http://www.alpha.edu/a/p0.html",
        "http://www.alpha.edu/a/p1.html",
        "http://www.alpha.edu/b/p2.html",
        "http://www.beta.edu/p3.html",
        "http://www.gamma.edu/p4.html",
        "http://www.delta.com/p5.html",
        "http://www.gamma.edu/p6.html",
        "http://www.delta.com/p7.html",
    ];
    let page_domain = [0u32, 0, 0, 1, 2, 3, 2, 3];
    let hosts: Vec<HostInfo> = (0..4)
        .map(|d| HostInfo {
            name: format!("www.{}", domains[d as usize]),
            domain: d,
            pages_by_url: (0..8u32)
                .filter(|&p| page_domain[p as usize] == d)
                .collect(),
        })
        .collect();
    let host_of = |p: usize| page_domain[p]; // one host per domain here
    let pages: Vec<PageMeta> = urls
        .iter()
        .enumerate()
        .map(|(i, u)| PageMeta {
            url: u.to_string(),
            host: host_of(i),
            domain: page_domain[i],
        })
        .collect();
    let graph = Graph::from_edges(8, [(0, 4), (0, 5), (1, 4), (2, 6), (3, 4), (3, 7)]);
    // Phrase 0 = topic T on pages 0, 1, 3.
    let page_phrases = vec![
        vec![0u32],
        vec![0],
        vec![],
        vec![0],
        vec![],
        vec![],
        vec![],
        vec![],
    ];
    Corpus {
        config: CorpusConfig::scaled(8, 0),
        domains,
        hosts,
        pages,
        graph,
        phrases: vec!["mobile networking".to_string()],
        page_phrases,
    }
}

struct Fx {
    root: std::path::PathBuf,
    set: SchemeSet,
    text: TextIndex,
    pagerank: PageRankIndex,
    domains: DomainTable,
}

impl Drop for Fx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn setup(name: &str) -> Fx {
    let corpus = fixture_corpus();
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let doms: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut root = std::env::temp_dir();
    root.push(format!("wg_qfix_{name}_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &doms,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 18,
    )
    .expect("build");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domains = DomainTable::build(&corpus, &set.renumbering);
    Fx {
        root,
        set,
        text,
        pagerank,
        domains,
    }
}

fn env<'a>(f: &'a Fx) -> QueryEnv<'a> {
    QueryEnv {
        text: &f.text,
        pagerank: &f.pagerank,
        domains: &f.domains,
    }
}

/// Translate an original page id into the shared (renumbered) id space.
fn nid(f: &Fx, old: u32) -> u64 {
    u64::from(f.set.renumbering.new_of_old[old as usize])
}

#[test]
fn query1_scores_exact_domains() {
    let f = setup("q1");
    // S = phrase pages of alpha.edu = {0, 1}; weights = normalised PageRank.
    // Page 0 → {gamma.edu (4), delta.com (5)}; page 1 → {gamma.edu}.
    // Target TLD .edu, excluding alpha.edu ⇒ only gamma.edu scores, with
    // weight w(0) + w(1) = 1.0 (both of S point into it; delta.com is .com).
    let mut rep = f.set.open(Scheme::SNode).unwrap();
    let out = query1(
        env(&f),
        rep.as_mut(),
        &Q1Params {
            phrase: 0,
            source_domain: 0,
            target_tld: "edu".to_string(),
        },
    )
    .unwrap();
    assert_eq!(
        out.rows.len(),
        1,
        "only gamma.edu qualifies: {:?}",
        out.rows
    );
    assert_eq!(out.rows[0].0, 2, "gamma.edu is domain 2");
    assert!(
        (out.rows[0].1 - 1.0).abs() < 1e-9,
        "both S pages point there"
    );
}

#[test]
fn query2_counts_c1_plus_c2() {
    let f = setup("q2");
    // One "comic": words = {T, T, T} (≥2 hits ⇒ any page with T counts);
    // site = delta.com. Audience alpha.edu = {0,1,2}; C1 = |{0,1}| = 2.
    // C2 = links from alpha.edu into delta.com = 0→5 only ⇒ 1. Total 3.
    let mut rep = f.set.open(Scheme::SNode).unwrap();
    let out = query2(
        env(&f),
        rep.as_mut(),
        &Q2Params {
            comics: vec![Comic {
                words: vec![0, 0, 0],
                site: 3,
            }],
            audience_domain: 0,
        },
    )
    .unwrap();
    assert_eq!(out.rows, vec![(0, 3.0)]);
}

#[test]
fn query3_base_set_exact() {
    let f = setup("q3");
    // Roots = all phrase pages {0,1,3} (k=100 ≫ 3). Base set = roots ∪
    // out{4,5,7} ∪ in{} = {0,1,3,4,5,7}.
    let mut fwd = f.set.open(Scheme::SNode).unwrap();
    let mut back = f.set.open_transpose(Scheme::SNode).unwrap();
    let out = query3(
        env(&f),
        fwd.as_mut(),
        back.as_mut(),
        &Q3Params {
            phrase: 0,
            root_k: 100,
        },
    )
    .unwrap();
    let mut expect: Vec<u64> = [0u32, 1, 3, 4, 5, 7].iter().map(|&o| nid(&f, o)).collect();
    expect.sort_unstable();
    let got: Vec<u64> = out.rows.iter().map(|&(k, _)| k).collect();
    assert_eq!(got, expect);
}

#[test]
fn query4_external_indegree() {
    let f = setup("q4");
    // University = beta.edu; its phrase page is 3; external in-links to 3:
    // none ⇒ score 0. University alpha.edu: phrase pages {0,1}, in-links
    // from outside alpha.edu: none ⇒ scores 0 (but rows still emitted).
    let mut back = f.set.open_transpose(Scheme::SNode).unwrap();
    let out = query4(
        env(&f),
        back.as_mut(),
        &Q4Params {
            phrase: 0,
            universities: vec![0, 1],
            k: 10,
        },
    )
    .unwrap();
    assert_eq!(out.rows.len(), 3, "pages 0,1 for alpha + page 3 for beta");
    assert!(out.rows.iter().all(|&(_, s)| s == 0.0));
}

#[test]
fn query5_induced_indegree() {
    let f = setup("q5");
    // S = {0,1,3}; induced edges: none (all targets outside S) ⇒ all
    // scores 0; .edu filter keeps all three (alpha, beta are .edu).
    let mut rep = f.set.open(Scheme::SNode).unwrap();
    let out = query5(
        env(&f),
        rep.as_mut(),
        &Q5Params {
            phrase: 0,
            result_tld: "edu".to_string(),
            k: 10,
        },
    )
    .unwrap();
    assert_eq!(out.rows.len(), 3);
    assert!(out.rows.iter().all(|&(_, s)| s == 0.0));
}

#[test]
fn query6_cocitation_exact() {
    let f = setup("q6");
    // S1 = alpha phrase pages {0,1}; S2 = beta phrase pages {3}.
    // Targets outside both domains: from S1 → {4,5}; from S2 → {4,7}.
    // Intersection = {4}; rank = in-links from S1∪S2 = 0→4, 1→4, 3→4 = 3.
    let mut rep = f.set.open(Scheme::SNode).unwrap();
    let out = query6(
        env(&f),
        rep.as_mut(),
        &Q6Params {
            phrase: 0,
            domain1: 0,
            domain2: 1,
        },
    )
    .unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0], (nid(&f, 4), 3.0));
}

#[test]
fn fixtures_agree_across_all_schemes() {
    let f = setup("allschemes");
    let q1p = Q1Params {
        phrase: 0,
        source_domain: 0,
        target_tld: "edu".to_string(),
    };
    let mut expect = None;
    for scheme in Scheme::ALL {
        let mut rep = f.set.open(scheme).unwrap();
        let out = query1(env(&f), rep.as_mut(), &q1p).unwrap();
        match &expect {
            None => expect = Some(out.rows),
            Some(e) => assert_eq!(&out.rows, e, "{}", scheme.name()),
        }
    }
}

#[test]
fn renumber_graph_helper_is_consistent_with_fixture() {
    let f = setup("renum");
    let corpus = fixture_corpus();
    let rg = renumber_graph(&corpus.graph, &f.set.renumbering);
    assert_eq!(rg, f.set.graph);
}
