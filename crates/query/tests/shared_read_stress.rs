//! Shared-read-path stress: one opened representation, many threads.
//!
//! The wg-serve refactor promises that an opened [`GraphRep`] is a shared
//! read handle — decoded state immutable, per-call mutability (list memos,
//! page frames, scratch buffers) behind locks that never change answers.
//! These tests pin the promise without loom: N threads hammer Q1–6 over
//! the *same* handle (with a hostile evictor thrashing the caches the
//! whole time) and every thread must reproduce the single-threaded
//! fingerprints; a property test then checks that *any* interleaving of
//! cache eviction into a query sequence is answer-invisible.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use wg_corpus::{Corpus, CorpusConfig};
use wg_query::obsrun::fingerprint_rows;
use wg_query::queries::{query1, query2, query3, query4, query5, query6, QueryEnv, Workload};
use wg_query::reps::{Scheme, SchemeSet};
use wg_query::{DomainTable, GraphRep, PageRankIndex, TextIndex};
use wg_snode::SNodeConfig;

struct Fx {
    root: std::path::PathBuf,
    set: SchemeSet,
    text: TextIndex,
    pagerank: PageRankIndex,
    domains: DomainTable,
    workload: Workload,
}

impl Drop for Fx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn setup(pages: u32, seed: u64, name: &str) -> Fx {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let doms: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut root = std::env::temp_dir();
    root.push(format!("wg_stress_{name}_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &doms,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .unwrap();
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domains = DomainTable::build(&corpus, &set.renumbering);
    let workload = Workload::discover(&text, &domains);
    Fx {
        root,
        set,
        text,
        pagerank,
        domains,
        workload,
    }
}

impl Fx {
    fn env(&self) -> QueryEnv<'_> {
        QueryEnv {
            text: &self.text,
            pagerank: &self.pagerank,
            domains: &self.domains,
        }
    }

    /// Runs query `n` over shared handles and fingerprints the rows.
    fn fp(&self, n: u8, fwd: &dyn GraphRep, back: &dyn GraphRep) -> u64 {
        let env = self.env();
        let w = &self.workload;
        let out = match n {
            1 => query1(env, fwd, &w.q1),
            2 => query2(env, fwd, &w.q2),
            3 => query3(env, fwd, back, &w.q3),
            4 => query4(env, back, &w.q4),
            5 => query5(env, fwd, &w.q5),
            6 => query6(env, fwd, &w.q6),
            _ => unreachable!(),
        }
        .unwrap();
        fingerprint_rows(&out.rows)
    }
}

/// N threads × Q1–6 × three schemes over *one* shared handle per scheme,
/// while an evictor thread clears every cache in a tight loop. Every
/// thread must see the single-threaded fingerprints — the caches and
/// scratch pools may race for performance, never for answers.
#[test]
fn concurrent_queries_match_single_threaded_fingerprints() {
    let f = setup(1_500, 17, "conc");
    let schemes = [Scheme::SNode, Scheme::Relational, Scheme::Link3];
    let handles: Vec<(Box<dyn GraphRep>, Box<dyn GraphRep>)> = schemes
        .iter()
        .map(|&s| (f.set.open(s).unwrap(), f.set.open_transpose(s).unwrap()))
        .collect();

    // Single-threaded reference, per scheme.
    let reference: Vec<[u64; 6]> = handles
        .iter()
        .map(|(fwd, back)| {
            let mut fps = [0u64; 6];
            for (i, fp) in fps.iter_mut().enumerate() {
                *fp = f.fp(i as u8 + 1, fwd.as_ref(), back.as_ref());
            }
            fps
        })
        .collect();

    let threads = 8usize;
    let rounds = 2;
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Hostile evictor: keeps dropping memos and page frames mid-query
        // until every worker has finished.
        s.spawn(|| {
            while done.load(Ordering::Relaxed) < threads {
                for (fwd, back) in &handles {
                    fwd.reset().unwrap();
                    back.reset().unwrap();
                }
                std::thread::yield_now();
            }
        });
        for t in 0..threads {
            let f = &f;
            let handles = &handles;
            let reference = &reference;
            let done = &done;
            s.spawn(move || {
                for r in 0..rounds {
                    for (si, (fwd, back)) in handles.iter().enumerate() {
                        for n in 1..=6u8 {
                            let got = f.fp(n, fwd.as_ref(), back.as_ref());
                            assert_eq!(
                                got,
                                reference[si][usize::from(n) - 1],
                                "thread {t} round {r} scheme {} q{n} drifted under concurrency",
                                schemes[si].name()
                            );
                        }
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleaved cache eviction is answer-invisible: for an arbitrary
    /// sequence mixing Q1–6 with `reset()` calls on either handle, every
    /// query returns the same fingerprint as a fresh single-threaded run.
    #[test]
    fn interleaved_eviction_never_changes_answers(
        ops in prop::collection::vec(0u8..9, 4..24),
    ) {
        let f = setup(800, 23, "prop");
        let fwd = f.set.open(Scheme::SNode).unwrap();
        let back = f.set.open_transpose(Scheme::SNode).unwrap();
        let mut reference = [0u64; 6];
        for (i, fp) in reference.iter_mut().enumerate() {
            *fp = f.fp(i as u8 + 1, fwd.as_ref(), back.as_ref());
        }
        for op in ops {
            match op {
                0..=5 => {
                    let n = op + 1;
                    let got = f.fp(n, fwd.as_ref(), back.as_ref());
                    prop_assert_eq!(
                        got,
                        reference[usize::from(op)],
                        "q{} drifted after interleaved eviction",
                        n
                    );
                }
                6 => fwd.reset().unwrap(),
                7 => back.reset().unwrap(),
                // Evict both mid-sequence back to back.
                _ => {
                    fwd.reset().unwrap();
                    back.reset().unwrap();
                }
            }
        }
    }
}
