//! Observed workload execution: runs Queries 1–6 under the metrics
//! registry and reports, per query, the paper's Table 3 quantities —
//! wall time, supernodes visited, intranode/superedge lists decoded,
//! cache hits/misses, and pages fetched.
//!
//! Attribution works by snapshot differencing: the global registry is
//! snapshotted before and after each query and the counter deltas are the
//! query's cost. Counters only land in the global registry when
//! [`wg_obs::metrics_enabled`] was up as the representations were opened,
//! so callers (the CLI's `--metrics`) must raise the flag *before*
//! calling [`run_observed`]. With metrics off the report still carries
//! wall time, navigation calls, and result fingerprints.

use crate::queries::QueryEnv;
use crate::queries::{query1, query2, query3, query4, query5, query6, QueryOutput, Workload};
use crate::reps::{Scheme, SchemeSet};
use crate::Result;
use wg_obs::{record_span, Snapshot, Stopwatch};

/// Per-query observation: result shape plus metric deltas.
#[derive(Debug, Clone)]
pub struct QueryObservation {
    /// Query label (`q1` … `q6`).
    pub query: &'static str,
    /// Wall-clock time of the whole query, nanoseconds.
    pub wall_ns: u64,
    /// Wall-clock time inside the graph representation, nanoseconds.
    pub nav_ns: u64,
    /// Adjacency-list fetches performed.
    pub nav_calls: u64,
    /// Adjacency entries returned.
    pub edges_touched: u64,
    /// Supernodes visited (S-Node navigation only; 0 for baselines).
    pub supernodes_visited: u64,
    /// Intranode lists decoded.
    pub intra_lists_decoded: u64,
    /// Superedge lists decoded.
    pub super_lists_decoded: u64,
    /// Decoded-list memo hits inside the graph cache (S-Node only).
    pub list_memo_hits: u64,
    /// Graph lookups answered once for a whole frontier batch group
    /// instead of once per page (S-Node only).
    pub batched_lookups: u64,
    /// Cache hits (graph cache + buffer pools).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Pages fetched from disk (the paper's disk-cost unit).
    pub pages_fetched: u64,
    /// Integrity checksum verifications that failed during this query.
    pub integrity_failures: u64,
    /// Supernodes newly quarantined during this query (degraded mode).
    pub quarantined_supernodes: u64,
    /// Adjacency-list parts skipped due to quarantine during this query.
    pub skipped_edges: u64,
    /// Result rows produced.
    pub rows: u64,
    /// FNV-1a fingerprint of the result rows (determinism check).
    pub fingerprint: u64,
}

/// The whole workload's observations for one scheme.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Scheme the workload ran against.
    pub scheme: &'static str,
    /// One observation per query, in Q1–Q6 order.
    pub queries: Vec<QueryObservation>,
    /// Degradation summary across the whole workload (forward plus
    /// transpose representations), for schemes that support graceful
    /// degradation; `None` otherwise. All-zero on clean directories.
    pub degraded: Option<wg_snode::DegradedReport>,
}

/// FNV-1a over the result rows: keys and score bit patterns, in order.
pub fn fingerprint_rows(rows: &[(u64, f64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(k, score) in rows {
        eat(k);
        eat(score.to_bits());
    }
    h
}

/// Sums a counter delta over several registry names (a quantity like
/// "cache hits" spans the core graph cache and the store buffer pool).
fn delta_sum(after: &Snapshot, before: &Snapshot, names: &[&str]) -> u64 {
    names.iter().map(|n| after.counter_delta(before, n)).sum()
}

fn observe(
    label: &'static str,
    run: impl FnOnce() -> Result<QueryOutput>,
) -> Result<QueryObservation> {
    let reg = wg_obs::global();
    let before = reg.snapshot();
    let sw = Stopwatch::start();
    let out = run()?;
    let wall_ns = record_span(&format!("query.{label}"), "query", &sw);
    let after = reg.snapshot();
    Ok(QueryObservation {
        query: label,
        wall_ns,
        nav_ns: u64::try_from(out.nav.nav_time.as_nanos()).unwrap_or(u64::MAX),
        nav_calls: out.nav.nav_calls,
        edges_touched: out.nav.edges_touched,
        supernodes_visited: after.counter_delta(&before, "core.nav.supernodes_visited"),
        intra_lists_decoded: after.counter_delta(&before, "core.nav.intra_lists_decoded"),
        super_lists_decoded: after.counter_delta(&before, "core.nav.super_lists_decoded"),
        list_memo_hits: after.counter_delta(&before, "core.nav.list_memo_hits"),
        batched_lookups: after.counter_delta(&before, "core.nav.batched_lookups"),
        cache_hits: delta_sum(&after, &before, &["core.cache.hits", "store.buffer.hits"]),
        cache_misses: delta_sum(
            &after,
            &before,
            &["core.cache.misses", "store.buffer.misses"],
        ),
        pages_fetched: delta_sum(
            &after,
            &before,
            &[
                "core.disk.pages_fetched",
                "store.pager.page_reads",
                "store.files.pages_fetched",
            ],
        ),
        integrity_failures: after.counter_delta(&before, "integrity.failures"),
        quarantined_supernodes: after.counter_delta(&before, "integrity.quarantined_supernodes"),
        skipped_edges: after.counter_delta(&before, "integrity.skipped_edges"),
        rows: out.rows.len() as u64,
        fingerprint: fingerprint_rows(&out.rows),
    })
}

/// Runs the full six-query workload against freshly opened (cold)
/// representations of `scheme`, observing each query.
pub fn run_observed(
    env: QueryEnv<'_>,
    set: &SchemeSet,
    scheme: Scheme,
    workload: &Workload,
) -> Result<WorkloadReport> {
    let fwd = set.open(scheme)?;
    let back = set.open_transpose(scheme)?;
    let queries = vec![
        observe("q1", || query1(env, fwd.as_ref(), &workload.q1))?,
        observe("q2", || query2(env, fwd.as_ref(), &workload.q2))?,
        observe("q3", || {
            query3(env, fwd.as_ref(), back.as_ref(), &workload.q3)
        })?,
        observe("q4", || query4(env, back.as_ref(), &workload.q4))?,
        observe("q5", || query5(env, fwd.as_ref(), &workload.q5))?,
        observe("q6", || query6(env, fwd.as_ref(), &workload.q6))?,
    ];
    let degraded = match (fwd.degraded(), back.degraded()) {
        (Some(f), Some(b)) => Some(wg_snode::DegradedReport {
            quarantined_supernodes: f.quarantined_supernodes + b.quarantined_supernodes,
            skipped_edges: f.skipped_edges + b.skipped_edges,
            retries: f.retries + b.retries,
        }),
        (one, other) => one.or(other),
    };
    Ok(WorkloadReport {
        scheme: scheme.name(),
        queries,
        degraded,
    })
}

impl QueryObservation {
    /// The deterministic (time-free) fields as sorted `(key, value)`
    /// pairs — what two identical runs must reproduce exactly.
    pub fn deterministic_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("batched_lookups", self.batched_lookups),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("edges_touched", self.edges_touched),
            ("fingerprint", self.fingerprint),
            ("integrity_failures", self.integrity_failures),
            ("intra_lists_decoded", self.intra_lists_decoded),
            ("list_memo_hits", self.list_memo_hits),
            ("nav_calls", self.nav_calls),
            ("pages_fetched", self.pages_fetched),
            ("quarantined_supernodes", self.quarantined_supernodes),
            ("rows", self.rows),
            ("skipped_edges", self.skipped_edges),
            ("super_lists_decoded", self.super_lists_decoded),
            ("supernodes_visited", self.supernodes_visited),
        ]
    }
}

impl WorkloadReport {
    /// JSON rendering, one field per line, deterministic fields first in
    /// each query object and every time-valued field (`*_ns`) on its own
    /// line — so tests can strip timing lines and diff the rest.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scheme\": \"{}\",\n", self.scheme));
        out.push_str("  \"queries\": {\n");
        for (qi, q) in self.queries.iter().enumerate() {
            let comma = if qi + 1 < self.queries.len() { "," } else { "" };
            out.push_str(&format!("    \"{}\": {{\n", q.query));
            for (k, v) in q.deterministic_fields() {
                out.push_str(&format!("      \"{k}\": {v},\n"));
            }
            out.push_str(&format!("      \"nav_ns\": {},\n", q.nav_ns));
            out.push_str(&format!("      \"wall_ns\": {}\n", q.wall_ns));
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  }");
        if let Some(d) = &self.degraded {
            out.push_str(&format!(
                ",\n  \"degraded\": {{\"quarantined_supernodes\": {}, \"skipped_edges\": {}, \
                 \"retries\": {}}}",
                d.quarantined_supernodes, d.skipped_edges, d.retries
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        let a = vec![(1u64, 0.5f64), (2, 1.0)];
        let b = vec![(2u64, 1.0f64), (1, 0.5)];
        let c = vec![(1u64, 0.5f64), (2, 1.5)];
        assert_ne!(fingerprint_rows(&a), fingerprint_rows(&b));
        assert_ne!(fingerprint_rows(&a), fingerprint_rows(&c));
        assert_eq!(fingerprint_rows(&a), fingerprint_rows(&a.clone()));
        assert_ne!(fingerprint_rows(&[]), 0);
    }
}
