//! [`GraphRep`] adapters for every representation scheme, plus a builder
//! that materialises all four Figure 11 schemes (forward and transpose)
//! from one repository under one directory.
//!
//! Memory budgets follow §4.3: each scheme gets the same byte allowance
//! for graph data. For S-Node the resident supernode graph and indexes are
//! charged against it; for Link3/files the resident offset tables are; the
//! relational store hands the whole allowance to its buffer pools.

use crate::{rep_err, GraphRep, Result};
use std::path::Path;
use wg_baselines::Link3DiskStore;
use wg_graph::{Graph, PageId};
use wg_snode::{build_snode, Renumbering, RepoInput, SNode, SNodeConfig};
use wg_store::files::UncompressedFileStore;
use wg_store::relational::RelationalGraphStore;

/// The four disk-based schemes of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain uncompressed adjacency files.
    Files,
    /// The relational (PostgreSQL-substitute) store.
    Relational,
    /// Link3 with a block cache.
    Link3,
    /// The S-Node representation.
    SNode,
}

impl Scheme {
    /// All four schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Files,
        Scheme::Relational,
        Scheme::Link3,
        Scheme::SNode,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Files => "uncompressed-files",
            Scheme::Relational => "relational-db",
            Scheme::Link3 => "link3",
            Scheme::SNode => "s-node",
        }
    }
}

/// S-Node adapter.
pub struct SNodeRep(pub SNode);

impl GraphRep for SNodeRep {
    fn scheme_name(&self) -> &'static str {
        Scheme::SNode.name()
    }
    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        self.0.out_neighbors(p).map_err(rep_err)
    }
    fn out_neighbors_into(&self, p: PageId, out: &mut Vec<PageId>) -> Result<()> {
        self.0.out_neighbors_into(p, out).map_err(rep_err)
    }
    fn out_neighbors_batch(
        &self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
    ) -> Result<()> {
        self.0.out_neighbors_batch(pages, visit).map_err(rep_err)
    }
    fn reset(&self) -> Result<()> {
        self.0.clear_cache();
        Ok(())
    }
    fn degraded(&self) -> Option<wg_snode::DegradedReport> {
        Some(self.0.degraded())
    }
    fn shard_telemetry(&self) -> Option<Vec<wg_obs::ShardStat>> {
        Some(self.0.shard_telemetry())
    }
}

/// Relational-store adapter.
pub struct RelationalRep(pub RelationalGraphStore);

impl GraphRep for RelationalRep {
    fn scheme_name(&self) -> &'static str {
        Scheme::Relational.name()
    }
    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        self.0.out_neighbors(p).map_err(rep_err)
    }
    fn reset(&self) -> Result<()> {
        self.0.clear_cache().map_err(rep_err)
    }
}

/// Uncompressed-files adapter.
pub struct FilesRep(pub UncompressedFileStore);

impl GraphRep for FilesRep {
    fn scheme_name(&self) -> &'static str {
        Scheme::Files.name()
    }
    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        self.0.out_neighbors(p).map_err(rep_err)
    }
    fn reset(&self) -> Result<()> {
        // No user-level cache; the OS page cache is outside the budget in
        // the paper's setup too.
        Ok(())
    }
}

/// Link3 disk adapter.
pub struct Link3Rep(pub Link3DiskStore);

impl GraphRep for Link3Rep {
    fn scheme_name(&self) -> &'static str {
        Scheme::Link3.name()
    }
    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        self.0.out_neighbors(p).map_err(rep_err)
    }
    fn reset(&self) -> Result<()> {
        self.0.clear_cache().map_err(rep_err)
    }
}

/// A repository materialised under every scheme, forward and transpose.
pub struct SchemeSet {
    /// Renumbering shared by all schemes (and the auxiliary indexes).
    pub renumbering: Renumbering,
    /// The renumbered forward graph (ground truth for tests).
    pub graph: Graph,
    /// The renumbered transpose graph.
    pub transpose: Graph,
    root: std::path::PathBuf,
    budget: usize,
}

impl SchemeSet {
    /// Builds every on-disk representation of `graph` under `root`.
    ///
    /// `urls`/`domains` are per input page; `budget_bytes` is the §4.3
    /// memory cap applied to each scheme when opened.
    pub fn build(
        root: &Path,
        urls: &[&str],
        domains: &[u32],
        graph: &Graph,
        snode_config: &SNodeConfig,
        budget_bytes: usize,
    ) -> Result<Self> {
        std::fs::create_dir_all(root).map_err(rep_err)?;
        // 1. S-Node first: it defines the shared renumbering.
        let input = RepoInput {
            urls,
            domains,
            graph,
        };
        let (_stats, renumbering) =
            build_snode(input, snode_config, &root.join("snode")).map_err(rep_err)?;

        // 2. Renumber the graph and domains once; all other schemes store
        //    the same (renumbered) graph.
        let renum_graph = renumber_graph(graph, &renumbering);
        let renum_domains: Vec<u32> = (0..graph.num_nodes())
            .map(|new| domains[renumbering.old_of_new[new as usize] as usize])
            .collect();
        let transpose = renum_graph.transpose();

        // 3. Transpose S-Node (for backlink navigation).
        let transpose_urls: Vec<&str> = (0..graph.num_nodes())
            .map(|new| urls[renumbering.old_of_new[new as usize] as usize])
            .collect();
        {
            // The transpose S-Node must preserve the SAME page ids, so its
            // refinement works over the already-renumbered repository and
            // we then compose its internal renumbering away by building on
            // identity ordering: simplest correct approach — build over the
            // renumbered graph and keep its pagemap for id translation.
            let tr_input = RepoInput {
                urls: &transpose_urls,
                domains: &renum_domains,
                graph: &transpose,
            };
            build_snode(tr_input, snode_config, &root.join("snode_t")).map_err(rep_err)?;
        }

        // 4. Baselines over the renumbered graph (forward + transpose).
        //    Rows/records are physically laid out in *crawl order* — the
        //    order a repository's storage is actually populated in. The
        //    URL-grouped physical layout is S-Node's contribution (it does
        //    the renumbering work); silently gifting it to the baselines
        //    would hide exactly the locality difference §4.3 measures.
        let crawl_order: Vec<PageId> = renumbering.new_of_old.clone();
        RelationalGraphStore::build_with_layout(
            &root.join("rel"),
            &renum_graph,
            &renum_domains,
            budget_bytes,
            &crawl_order,
        )
        .map_err(rep_err)?;
        RelationalGraphStore::build_with_layout(
            &root.join("rel_t"),
            &transpose,
            &renum_domains,
            budget_bytes,
            &crawl_order,
        )
        .map_err(rep_err)?;
        UncompressedFileStore::build_with_layout(
            &root.join("files.bin"),
            &renum_graph,
            &renum_domains,
            &crawl_order,
        )
        .map_err(rep_err)?;
        UncompressedFileStore::build_with_layout(
            &root.join("files_t.bin"),
            &transpose,
            &renum_domains,
            &crawl_order,
        )
        .map_err(rep_err)?;
        Link3DiskStore::create(&root.join("link3.bin"), &renum_graph, budget_bytes)
            .map_err(rep_err)?;
        Link3DiskStore::create(&root.join("link3_t.bin"), &transpose, budget_bytes)
            .map_err(rep_err)?;

        Ok(Self {
            renumbering,
            graph: renum_graph,
            transpose,
            root: root.to_path_buf(),
            budget: budget_bytes,
        })
    }

    /// Re-attaches to representations already on disk under `root`
    /// without rebuilding them.
    ///
    /// [`SchemeSet::build`] rewrites every representation, which would
    /// silently heal any on-disk damage — useless for fault-injection
    /// runs, wasteful for repeat queries. This constructor only reads
    /// `snode/pagemap.bin` for the shared renumbering and re-derives the
    /// ground-truth graphs from `graph` (the original input graph). The
    /// S-Node directories are used exactly as found; the Files and Link3
    /// stores still rebuild their flat files at open (inherent to their
    /// design — see [`SchemeSet::open_with_budget`]), so injected faults
    /// should target the `snode` directory.
    pub fn open_existing(root: &Path, graph: &Graph, budget_bytes: usize) -> Result<Self> {
        let renumbering = Renumbering::read(&root.join("snode")).map_err(rep_err)?;
        let renum_graph = renumber_graph(graph, &renumbering);
        let transpose = renum_graph.transpose();
        Ok(Self {
            renumbering,
            graph: renum_graph,
            transpose,
            root: root.to_path_buf(),
            budget: budget_bytes,
        })
    }

    /// Opens the forward representation for `scheme` with the configured
    /// budget.
    pub fn open(&self, scheme: Scheme) -> Result<Box<dyn GraphRep>> {
        self.open_with_budget(scheme, self.budget, false)
    }

    /// Opens the transpose representation for `scheme`.
    pub fn open_transpose(&self, scheme: Scheme) -> Result<Box<dyn GraphRep>> {
        self.open_with_budget(scheme, self.budget, true)
    }

    /// Opens with an explicit budget (Figure 12's buffer-size sweep).
    pub fn open_with_budget(
        &self,
        scheme: Scheme,
        budget: usize,
        transpose: bool,
    ) -> Result<Box<dyn GraphRep>> {
        let suffix = if transpose { "_t" } else { "" };
        Ok(match scheme {
            Scheme::SNode => {
                // Degraded open: a damaged graph is quarantined and the
                // query answers partially (with an explicit report)
                // instead of aborting. On a clean directory the behaviour
                // and counters are identical to a strict open.
                let snode = if transpose {
                    // The transpose S-Node has its own internal numbering;
                    // wrap it with the id translation layer.
                    let dir = self.root.join("snode_t");
                    let inner = SNode::open_degraded(&dir, budget).map_err(rep_err)?;
                    let renum = Renumbering::read(&dir).map_err(rep_err)?;
                    return Ok(Box::new(TranslatedSNodeRep {
                        inner,
                        renum,
                        scratch: parking_lot::Mutex::new(Vec::new()),
                    }));
                } else {
                    SNode::open_degraded(&self.root.join("snode"), budget).map_err(rep_err)?
                };
                Box::new(SNodeRep(snode))
            }
            Scheme::Relational => {
                let dir = self.root.join(format!("rel{suffix}"));
                Box::new(RelationalRep(
                    RelationalGraphStore::open(&dir, budget).map_err(rep_err)?,
                ))
            }
            Scheme::Files => {
                // The file store has no open-from-disk constructor state
                // beyond its offsets; rebuild the reader cheaply (same
                // bytes, build cost excluded from navigation timing).
                let g = if transpose {
                    &self.transpose
                } else {
                    &self.graph
                };
                let domains: Vec<u32> = vec![0; g.num_nodes() as usize];
                let path = self.root.join(format!("files{suffix}.bin"));
                let crawl_order: Vec<PageId> = self.renumbering.new_of_old.clone();
                Box::new(FilesRep(
                    UncompressedFileStore::build_with_layout(&path, g, &domains, &crawl_order)
                        .map_err(rep_err)?,
                ))
            }
            Scheme::Link3 => {
                let g = if transpose {
                    &self.transpose
                } else {
                    &self.graph
                };
                let path = self.root.join(format!("link3{suffix}.bin"));
                Box::new(Link3Rep(
                    Link3DiskStore::create(&path, g, budget).map_err(rep_err)?,
                ))
            }
        })
    }
}

/// S-Node over the transpose graph, translating between the shared id
/// space and the transpose build's internal numbering.
struct TranslatedSNodeRep {
    inner: SNode,
    renum: Renumbering,
    /// Pool of reused translation buffers for the zero-alloc paths; a
    /// pool (not a single slot) so concurrent callers each borrow their
    /// own scratch instead of serialising on one buffer.
    scratch: parking_lot::Mutex<Vec<TranslateScratch>>,
}

#[derive(Default)]
struct TranslateScratch {
    internal_pages: Vec<PageId>,
    translated: Vec<PageId>,
}

impl TranslatedSNodeRep {
    /// Borrows a scratch buffer from the pool for the duration of `f`.
    fn with_scratch<R>(&self, f: impl FnOnce(&mut TranslateScratch) -> R) -> R {
        let mut scratch = self.scratch.lock().pop().unwrap_or_default();
        let r = f(&mut scratch);
        self.scratch.lock().push(scratch);
        r
    }
}

impl GraphRep for TranslatedSNodeRep {
    fn scheme_name(&self) -> &'static str {
        Scheme::SNode.name()
    }
    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        self.out_neighbors_into(p, &mut out)?;
        Ok(out)
    }
    fn out_neighbors_into(&self, p: PageId, out: &mut Vec<PageId>) -> Result<()> {
        let internal = self.renum.new_of_old[p as usize];
        self.with_scratch(|scratch| {
            self.inner
                .out_neighbors_into(internal, &mut scratch.translated)
                .map_err(rep_err)?;
            out.clear();
            out.extend(
                scratch
                    .translated
                    .iter()
                    .map(|&t| self.renum.old_of_new[t as usize]),
            );
            out.sort_unstable();
            Ok(())
        })
    }
    fn out_neighbors_batch(
        &self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
    ) -> Result<()> {
        self.with_scratch(|scratch| {
            scratch.internal_pages.clear();
            scratch
                .internal_pages
                .extend(pages.iter().map(|&p| self.renum.new_of_old[p as usize]));
            let renum = &self.renum;
            let translated = &mut scratch.translated;
            // The inner batch visits in input order, so `idx` walks `pages`.
            let mut idx = 0usize;
            self.inner
                .out_neighbors_batch(&scratch.internal_pages, &mut |_, list| {
                    translated.clear();
                    translated.extend(list.iter().map(|&t| renum.old_of_new[t as usize]));
                    translated.sort_unstable();
                    visit(pages[idx], translated);
                    idx += 1;
                })
                .map_err(rep_err)
        })
    }
    fn reset(&self) -> Result<()> {
        self.inner.clear_cache();
        Ok(())
    }
    fn degraded(&self) -> Option<wg_snode::DegradedReport> {
        Some(self.inner.degraded())
    }
    fn shard_telemetry(&self) -> Option<Vec<wg_obs::ShardStat>> {
        Some(self.inner.shard_telemetry())
    }
}

/// Applies a renumbering to a graph: edge `(u, v)` becomes
/// `(new(u), new(v))`.
pub fn renumber_graph(graph: &Graph, renum: &Renumbering) -> Graph {
    let edges = graph
        .edges()
        .map(|(u, v)| (renum.new_of_old[u as usize], renum.new_of_old[v as usize]));
    Graph::from_edges(graph.num_nodes(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_corpus::{Corpus, CorpusConfig};

    fn temp_root(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_query_reps_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn all_schemes_agree_with_ground_truth() {
        let corpus = Corpus::generate(CorpusConfig::scaled(500, 17));
        let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
        let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
        let root = temp_root("agree");
        let set = SchemeSet::build(
            &root,
            &urls,
            &domains,
            &corpus.graph,
            &SNodeConfig::default(),
            1 << 20,
        )
        .unwrap();

        for scheme in Scheme::ALL {
            let rep = set.open(scheme).unwrap();
            for p in (0..set.graph.num_nodes()).step_by(23) {
                assert_eq!(
                    rep.out_neighbors(p).unwrap(),
                    set.graph.neighbors(p),
                    "{} page {p}",
                    scheme.name()
                );
            }
            let rep_t = set.open_transpose(scheme).unwrap();
            for p in (0..set.graph.num_nodes()).step_by(31) {
                assert_eq!(
                    rep_t.out_neighbors(p).unwrap(),
                    set.transpose.neighbors(p),
                    "{} transpose page {p}",
                    scheme.name()
                );
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn renumber_graph_preserves_structure() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (3, 0)]);
        let renum = Renumbering::from_old_of_new(vec![2, 0, 3, 1]);
        let rg = renumber_graph(&g, &renum);
        assert_eq!(rg.num_edges(), 3);
        for (u, v) in g.edges() {
            assert!(rg.has_edge(renum.new_of_old[u as usize], renum.new_of_old[v as usize]));
        }
    }

    #[test]
    fn reset_is_idempotent_for_every_scheme() {
        let corpus = Corpus::generate(CorpusConfig::scaled(200, 5));
        let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
        let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
        let root = temp_root("reset");
        let set = SchemeSet::build(
            &root,
            &urls,
            &domains,
            &corpus.graph,
            &SNodeConfig::default(),
            1 << 18,
        )
        .unwrap();
        for scheme in Scheme::ALL {
            let rep = set.open(scheme).unwrap();
            rep.out_neighbors(0).unwrap();
            rep.reset().unwrap();
            rep.reset().unwrap();
            assert_eq!(rep.out_neighbors(0).unwrap(), set.graph.neighbors(0));
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
