//! Auxiliary repository indexes shared by every scheme.
//!
//! All structures live in the **S-Node page-id space** (the renumbering
//! every representation in this workspace adopts, mirroring §3.3's
//! repository-wide numbering): queries resolve their predicates here, then
//! navigate whichever graph representation is under test.

use std::collections::HashMap;
use wg_corpus::Corpus;
use wg_graph::pagerank::{pagerank, PageRankConfig};
use wg_graph::{Graph, PageId};
use wg_snode::Renumbering;

/// Inverted phrase index: phrase id → sorted page ids containing it.
#[derive(Debug, Clone)]
pub struct TextIndex {
    postings: Vec<Vec<PageId>>,
    phrases: Vec<String>,
}

impl TextIndex {
    /// Builds the index from a corpus, in renumbered page ids.
    pub fn build(corpus: &Corpus, renum: &Renumbering) -> Self {
        let mut postings: Vec<Vec<PageId>> = vec![Vec::new(); corpus.phrases.len()];
        for (old, set) in corpus.page_phrases.iter().enumerate() {
            let new = renum.new_of_old[old];
            for &ph in set {
                postings[ph as usize].push(new);
            }
        }
        for list in &mut postings {
            list.sort_unstable();
        }
        Self {
            postings,
            phrases: corpus.phrases.clone(),
        }
    }

    /// Pages containing phrase `ph` (sorted).
    pub fn pages_with_phrase(&self, ph: u32) -> &[PageId] {
        self.postings.get(ph as usize).map_or(&[], |v| v.as_slice())
    }

    /// Resolves a phrase string to its id.
    pub fn phrase_id(&self, text: &str) -> Option<u32> {
        self.phrases
            .iter()
            .position(|p| p == text)
            .map(|i| i as u32)
    }

    /// The phrase vocabulary.
    pub fn phrases(&self) -> &[String] {
        &self.phrases
    }

    /// Number of postings lists.
    pub fn num_phrases(&self) -> u32 {
        self.postings.len() as u32
    }
}

/// PageRank index (normalised ranks per page, renumbered ids).
#[derive(Debug, Clone)]
pub struct PageRankIndex {
    ranks: Vec<f64>,
}

impl PageRankIndex {
    /// Computes PageRank over `graph` (old ids) and permutes into new ids.
    pub fn build(graph: &Graph, renum: &Renumbering) -> Self {
        let result = pagerank(graph, &PageRankConfig::default());
        let mut ranks = vec![0.0f64; result.ranks.len()];
        for (old, &r) in result.ranks.iter().enumerate() {
            ranks[renum.new_of_old[old] as usize] = r;
        }
        Self { ranks }
    }

    /// The rank of page `p`.
    pub fn rank(&self, p: PageId) -> f64 {
        self.ranks[p as usize]
    }

    /// All ranks (indexed by page id).
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// The `k` top-ranked pages among `candidates` (descending rank, ties
    /// by ascending id).
    pub fn top_k_of(&self, candidates: &[PageId], k: usize) -> Vec<PageId> {
        let mut v: Vec<PageId> = candidates.to_vec();
        v.sort_by(|&a, &b| {
            self.ranks[b as usize]
                .partial_cmp(&self.ranks[a as usize])
                .expect("ranks finite")
                .then(a.cmp(&b))
        });
        v.truncate(k);
        v
    }
}

/// Domain metadata: page → domain, domain → pages, names, TLD lookup.
#[derive(Debug, Clone)]
pub struct DomainTable {
    domain_of: Vec<u32>,
    pages_of: Vec<Vec<PageId>>,
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl DomainTable {
    /// Builds the table from a corpus, in renumbered page ids.
    pub fn build(corpus: &Corpus, renum: &Renumbering) -> Self {
        let n = corpus.num_pages() as usize;
        let mut domain_of = vec![0u32; n];
        let mut pages_of: Vec<Vec<PageId>> = vec![Vec::new(); corpus.domains.len()];
        for (old, page) in corpus.pages.iter().enumerate() {
            let new = renum.new_of_old[old];
            domain_of[new as usize] = page.domain;
            pages_of[page.domain as usize].push(new);
        }
        for list in &mut pages_of {
            list.sort_unstable();
        }
        let by_name = corpus
            .domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.clone(), i as u32))
            .collect();
        Self {
            domain_of,
            pages_of,
            names: corpus.domains.clone(),
            by_name,
        }
    }

    /// Domain of page `p`.
    pub fn domain_of(&self, p: PageId) -> u32 {
        self.domain_of[p as usize]
    }

    /// Pages of domain `d` (sorted).
    pub fn pages_of(&self, d: u32) -> &[PageId] {
        self.pages_of.get(d as usize).map_or(&[], |v| v.as_slice())
    }

    /// Domain name.
    pub fn name(&self, d: u32) -> &str {
        &self.names[d as usize]
    }

    /// Number of domains.
    pub fn num_domains(&self) -> u32 {
        self.names.len() as u32
    }

    /// Domain id by exact name.
    pub fn id_by_name(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Domains whose name ends with `.{tld}`.
    pub fn domains_with_tld(&self, tld: &str) -> Vec<u32> {
        let suffix = format!(".{tld}");
        (0..self.num_domains())
            .filter(|&d| self.names[d as usize].ends_with(&suffix))
            .collect()
    }

    /// Intersects a sorted page list with a domain (both sorted).
    pub fn filter_to_domain(&self, pages: &[PageId], d: u32) -> Vec<PageId> {
        pages
            .iter()
            .copied()
            .filter(|&p| self.domain_of(p) == d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_corpus::CorpusConfig;
    use wg_snode::{build_snode, RepoInput, SNodeConfig};

    fn setup() -> (Corpus, Renumbering, std::path::PathBuf) {
        let corpus = Corpus::generate(CorpusConfig::scaled(800, 3));
        let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
        let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
        let mut dir = std::env::temp_dir();
        dir.push(format!("wg_query_idx_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &corpus.graph,
        };
        let (_s, renum) = build_snode(input, &SNodeConfig::default(), &dir).unwrap();
        (corpus, renum, dir)
    }

    #[test]
    fn text_index_matches_corpus_membership() {
        let (corpus, renum, dir) = setup();
        let idx = TextIndex::build(&corpus, &renum);
        for ph in (0..corpus.phrases.len() as u32).step_by(7) {
            let pages = idx.pages_with_phrase(ph);
            assert!(pages.windows(2).all(|w| w[0] < w[1]), "sorted postings");
            for &new in pages {
                let old = renum.old_of_new[new as usize];
                assert!(corpus.page_has_phrase(old, ph));
            }
            // Count agreement.
            let expect = (0..corpus.num_pages())
                .filter(|&old| corpus.page_has_phrase(old, ph))
                .count();
            assert_eq!(pages.len(), expect);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn domain_table_round_trips() {
        let (corpus, renum, dir) = setup();
        let dt = DomainTable::build(&corpus, &renum);
        assert_eq!(dt.num_domains(), corpus.domains.len() as u32);
        let mut covered = 0usize;
        for d in 0..dt.num_domains() {
            for &p in dt.pages_of(d) {
                assert_eq!(dt.domain_of(p), d);
                covered += 1;
            }
            assert_eq!(dt.id_by_name(dt.name(d)), Some(d));
        }
        assert_eq!(covered, corpus.num_pages() as usize);
        assert!(!dt.domains_with_tld("edu").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pagerank_index_is_permuted_correctly() {
        let (corpus, renum, dir) = setup();
        let pr = PageRankIndex::build(&corpus.graph, &renum);
        let direct = pagerank(&corpus.graph, &PageRankConfig::default());
        for old in (0..corpus.num_pages()).step_by(97) {
            let new = renum.new_of_old[old as usize];
            assert!((pr.rank(new) - direct.ranks[old as usize]).abs() < 1e-15);
        }
        let sum: f64 = pr.ranks().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_k_of_ranks_descending() {
        let pr = PageRankIndex {
            ranks: vec![0.1, 0.5, 0.2, 0.2],
        };
        assert_eq!(pr.top_k_of(&[0, 1, 2, 3], 2), vec![1, 2]);
        assert_eq!(pr.top_k_of(&[3, 0], 5), vec![3, 0]);
    }
}
