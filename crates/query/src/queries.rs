//! Queries 1–6 of Table 3, with hand-crafted execution plans (§4.3).
//!
//! Each query resolves its text/domain/PageRank predicates through the
//! shared auxiliary indexes, then performs its graph-navigation component
//! through a [`GraphRep`]. Only the navigation component is timed — the
//! paper measures "the portion of the query execution time spent in
//! accessing and traversing the Web graph" and so do we: every
//! [`GraphRep::out_neighbors_batch`] call runs under the stopwatch, index
//! lookups do not. Each query hands the representation its whole page
//! frontier in one batched call, so S-Node can group pages by supernode
//! (§3.4) and decode each graph's lists once per frontier.

use crate::index::{DomainTable, PageRankIndex, TextIndex};
use crate::{GraphRep, Result};
use std::collections::HashMap;
use std::time::Duration;
use wg_graph::PageId;
use wg_obs::Stopwatch;

/// Shared read-only query context.
#[derive(Clone, Copy)]
pub struct QueryEnv<'a> {
    /// The inverted phrase index.
    pub text: &'a TextIndex,
    /// The PageRank index.
    pub pagerank: &'a PageRankIndex,
    /// The domain table.
    pub domains: &'a DomainTable,
}

/// Navigation-time accounting for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NavStats {
    /// Wall-clock time spent inside the graph representation.
    pub nav_time: Duration,
    /// Adjacency-list fetches performed.
    pub nav_calls: u64,
    /// Total adjacency entries returned.
    pub edges_touched: u64,
}

/// A query's result rows plus its navigation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// `(key, score)` rows in result order. Keys are query-specific
    /// (domain ids, page ids, or comic indexes).
    pub rows: Vec<(u64, f64)>,
    /// Navigation accounting.
    pub nav: NavStats,
}

/// Timed wrapper around a [`GraphRep`]. Holds a shared borrow — the
/// representation itself is `&self` throughout; only the per-query
/// stopwatch accounting lives here, owned by the caller.
struct Nav<'a> {
    rep: &'a dyn GraphRep,
    stats: NavStats,
}

impl<'a> Nav<'a> {
    fn new(rep: &'a dyn GraphRep) -> Self {
        Self {
            rep,
            stats: NavStats::default(),
        }
    }

    /// Batched navigation over a whole frontier: one timed call, `visit`
    /// invoked per page in input order. S-Node groups the pages by
    /// supernode internally; baselines fall back to a scalar loop.
    fn out_batch(
        &mut self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
    ) -> Result<()> {
        let t0 = Stopwatch::start();
        let mut edges = 0u64;
        let r = self.rep.out_neighbors_batch(pages, &mut |p, list| {
            edges += list.len() as u64;
            visit(p, list);
        });
        self.stats.nav_time += t0.elapsed();
        self.stats.nav_calls += pages.len() as u64;
        if r.is_ok() {
            self.stats.edges_touched += edges;
        }
        r
    }
}

// --- Query 1 -----------------------------------------------------------------

/// Parameters of Query 1 (Analysis 1): universities that researchers on a
/// topic refer to.
#[derive(Debug, Clone)]
pub struct Q1Params {
    /// Topic phrase ("Mobile networking").
    pub phrase: u32,
    /// Home domain ("stanford.edu").
    pub source_domain: u32,
    /// TLD of the target institutions ("edu").
    pub target_tld: String,
}

/// Runs Query 1: weight the phrase pages of the home domain by normalised
/// PageRank, follow their out-links, and score every other `.tld` domain by
/// the summed weight of the pages pointing into it.
pub fn query1(env: QueryEnv<'_>, rep: &dyn GraphRep, q: &Q1Params) -> Result<QueryOutput> {
    let s: Vec<PageId> = env
        .domains
        .filter_to_domain(env.text.pages_with_phrase(q.phrase), q.source_domain);
    let total_rank: f64 = s.iter().map(|&p| env.pagerank.rank(p)).sum();
    let norm = if total_rank > 0.0 { total_rank } else { 1.0 };
    let tld_suffix = format!(".{}", q.target_tld);

    let mut nav = Nav::new(rep);
    let mut weight: HashMap<u32, f64> = HashMap::new();
    // One batched pass over the source set; `doms` is reused per page.
    let mut doms: Vec<u32> = Vec::new();
    nav.out_batch(&s, &mut |p, targets| {
        let w = env.pagerank.rank(p) / norm;
        // A page "points to domain D if it points to any page in D":
        // dedupe target domains per source.
        doms.clear();
        doms.extend(
            targets
                .iter()
                .map(|&t| env.domains.domain_of(t))
                .filter(|&d| d != q.source_domain)
                .filter(|&d| env.domains.name(d).ends_with(&tld_suffix)),
        );
        doms.sort_unstable();
        doms.dedup();
        for &d in &doms {
            *weight.entry(d).or_insert(0.0) += w;
        }
    })?;
    let mut rows: Vec<(u64, f64)> = weight.into_iter().map(|(d, w)| (u64::from(d), w)).collect();
    sort_rows(&mut rows);
    Ok(QueryOutput {
        rows,
        nav: nav.stats,
    })
}

// --- Query 2 -----------------------------------------------------------------

/// One comic strip: its characteristic phrases and its website's domain.
#[derive(Debug, Clone)]
pub struct Comic {
    /// Phrase ids standing in for the strip/character names.
    pub words: Vec<u32>,
    /// The strip's website domain (`dilbert.com`).
    pub site: u32,
}

/// Parameters of Query 2 (Analysis 2): relative comic popularity.
#[derive(Debug, Clone)]
pub struct Q2Params {
    /// The comics under comparison.
    pub comics: Vec<Comic>,
    /// The audience domain (`stanford.edu`).
    pub audience_domain: u32,
}

/// Runs Query 2: `C1` = audience pages containing ≥ 2 of the comic's
/// phrases; `C2` = links from audience pages into the comic's site;
/// popularity = `C1 + C2`. The hand-crafted plan walks the audience
/// domain's adjacency lists once, counting links into every site.
pub fn query2(env: QueryEnv<'_>, rep: &dyn GraphRep, q: &Q2Params) -> Result<QueryOutput> {
    let audience = env.domains.pages_of(q.audience_domain);

    // C1 per comic via postings intersections (no navigation).
    let mut c1 = vec![0u64; q.comics.len()];
    for (ci, comic) in q.comics.iter().enumerate() {
        for &p in audience {
            let hits = comic
                .words
                .iter()
                .filter(|&&w| env.text.pages_with_phrase(w).binary_search(&p).is_ok())
                .count();
            if hits >= 2 {
                c1[ci] += 1;
            }
        }
    }

    // C2 per comic: one pass over the audience's out-links.
    let site_of: HashMap<u32, usize> = q
        .comics
        .iter()
        .enumerate()
        .map(|(ci, c)| (c.site, ci))
        .collect();
    let mut c2 = vec![0u64; q.comics.len()];
    let mut nav = Nav::new(rep);
    nav.out_batch(audience, &mut |_, targets| {
        for &t in targets {
            if let Some(&ci) = site_of.get(&env.domains.domain_of(t)) {
                c2[ci] += 1;
            }
        }
    })?;

    let mut rows: Vec<(u64, f64)> = (0..q.comics.len())
        .map(|ci| (ci as u64, (c1[ci] + c2[ci]) as f64))
        .collect();
    sort_rows(&mut rows);
    Ok(QueryOutput {
        rows,
        nav: nav.stats,
    })
}

// --- Query 3 -----------------------------------------------------------------

/// Parameters of Query 3: the Kleinberg base set of a root set.
#[derive(Debug, Clone)]
pub struct Q3Params {
    /// Root phrase ("Internet censorship").
    pub phrase: u32,
    /// Root-set size (the paper uses the top 100 by PageRank).
    pub root_k: usize,
}

/// Runs Query 3: root set = top-`root_k` PageRank pages containing the
/// phrase; base set = roots ∪ out-neighbours ∪ in-neighbours. Returns one
/// row per base-set page (score 0).
pub fn query3(
    env: QueryEnv<'_>,
    fwd: &dyn GraphRep,
    back: &dyn GraphRep,
    q: &Q3Params,
) -> Result<QueryOutput> {
    let mut roots = env
        .pagerank
        .top_k_of(env.text.pages_with_phrase(q.phrase), q.root_k);
    let mut base: Vec<PageId> = Vec::new();
    let mut nav_f = Nav::new(fwd);
    nav_f.out_batch(&roots, &mut |_, list| base.extend_from_slice(list))?;
    let mut nav_b = Nav::new(back);
    nav_b.out_batch(&roots, &mut |_, list| base.extend_from_slice(list))?;
    // The roots join the base by move (no clone); one sort+dedup total.
    base.append(&mut roots);
    base.sort_unstable();
    base.dedup();
    let rows = base.into_iter().map(|p| (u64::from(p), 0.0)).collect();
    Ok(QueryOutput {
        rows,
        nav: NavStats {
            nav_time: nav_f.stats.nav_time + nav_b.stats.nav_time,
            nav_calls: nav_f.stats.nav_calls + nav_b.stats.nav_calls,
            edges_touched: nav_f.stats.edges_touched + nav_b.stats.edges_touched,
        },
    })
}

// --- Query 4 -----------------------------------------------------------------

/// Parameters of Query 4: most popular topic pages per university.
#[derive(Debug, Clone)]
pub struct Q4Params {
    /// Topic phrase ("Quantum cryptography").
    pub phrase: u32,
    /// University domains (Stanford, MIT, Caltech, Berkeley).
    pub universities: Vec<u32>,
    /// Result count per university (paper: 10).
    pub k: usize,
}

/// Runs Query 4: per university, rank its phrase pages by the number of
/// incoming links from outside the page's domain (transpose navigation).
/// Rows are `(university_index << 32 | page, external in-degree)`.
pub fn query4(env: QueryEnv<'_>, back: &dyn GraphRep, q: &Q4Params) -> Result<QueryOutput> {
    let mut nav = Nav::new(back);
    let mut rows = Vec::new();
    for (ui, &u) in q.universities.iter().enumerate() {
        let cands = env
            .domains
            .filter_to_domain(env.text.pages_with_phrase(q.phrase), u);
        let mut scored: Vec<(u64, f64)> = Vec::with_capacity(cands.len());
        nav.out_batch(&cands, &mut |p, incoming| {
            let external = incoming
                .iter()
                .filter(|&&src| env.domains.domain_of(src) != u)
                .count();
            scored.push(((u64::from(ui as u32) << 32) | u64::from(p), external as f64));
        })?;
        sort_rows(&mut scored);
        scored.truncate(q.k);
        rows.extend(scored);
    }
    Ok(QueryOutput {
        rows,
        nav: nav.stats,
    })
}

// --- Query 5 -----------------------------------------------------------------

/// Parameters of Query 5: ranking within a topic's induced subgraph.
#[derive(Debug, Clone)]
pub struct Q5Params {
    /// Topic phrase ("Computer music synthesis").
    pub phrase: u32,
    /// Result TLD filter (paper: "edu").
    pub result_tld: String,
    /// Result count (paper: 10).
    pub k: usize,
}

/// Runs Query 5: compute the graph induced by the phrase set `S` (walking
/// each member's out-links and keeping those landing back inside `S`),
/// rank members by induced in-degree, output the top `k` `.tld` pages.
pub fn query5(env: QueryEnv<'_>, rep: &dyn GraphRep, q: &Q5Params) -> Result<QueryOutput> {
    let s = env.text.pages_with_phrase(q.phrase);
    let mut counts: HashMap<PageId, u64> = HashMap::new();
    let mut nav = Nav::new(rep);
    nav.out_batch(s, &mut |p, targets| {
        for &t in targets {
            if t != p && s.binary_search(&t).is_ok() {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
    })?;
    let suffix = format!(".{}", q.result_tld);
    let mut rows: Vec<(u64, f64)> = s
        .iter()
        .filter(|&&p| {
            env.domains
                .name(env.domains.domain_of(p))
                .ends_with(&suffix)
        })
        .map(|&p| (u64::from(p), *counts.get(&p).unwrap_or(&0) as f64))
        .collect();
    sort_rows(&mut rows);
    rows.truncate(q.k);
    Ok(QueryOutput {
        rows,
        nav: nav.stats,
    })
}

// --- Query 6 -----------------------------------------------------------------

/// Parameters of Query 6: co-citation across two institutions.
#[derive(Debug, Clone)]
pub struct Q6Params {
    /// Shared topic phrase ("Optical Interferometry").
    pub phrase: u32,
    /// First domain (stanford.edu).
    pub domain1: u32,
    /// Second domain (berkeley.edu).
    pub domain2: u32,
}

/// Runs Query 6: `R` = pages outside both domains pointed to by at least
/// one phrase page of each; rank by total incoming links from `S1 ∪ S2`.
pub fn query6(env: QueryEnv<'_>, rep: &dyn GraphRep, q: &Q6Params) -> Result<QueryOutput> {
    let phrase_pages = env.text.pages_with_phrase(q.phrase);
    let s1 = env.domains.filter_to_domain(phrase_pages, q.domain1);
    let s2 = env.domains.filter_to_domain(phrase_pages, q.domain2);

    let mut nav = Nav::new(rep);
    let mut from1: HashMap<PageId, u64> = HashMap::new();
    nav.out_batch(&s1, &mut |_, targets| {
        for &t in targets {
            let d = env.domains.domain_of(t);
            if d != q.domain1 && d != q.domain2 {
                *from1.entry(t).or_insert(0) += 1;
            }
        }
    })?;
    let mut from2: HashMap<PageId, u64> = HashMap::new();
    nav.out_batch(&s2, &mut |_, targets| {
        for &t in targets {
            let d = env.domains.domain_of(t);
            if d != q.domain1 && d != q.domain2 {
                *from2.entry(t).or_insert(0) += 1;
            }
        }
    })?;
    let mut rows: Vec<(u64, f64)> = from1
        .iter()
        .filter_map(|(&t, &c1)| from2.get(&t).map(|&c2| (u64::from(t), (c1 + c2) as f64)))
        .collect();
    sort_rows(&mut rows);
    Ok(QueryOutput {
        rows,
        nav: nav.stats,
    })
}

/// Deterministic result order: descending score, ascending key.
fn sort_rows(rows: &mut [(u64, f64)]) {
    rows.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores finite")
            .then(a.0.cmp(&b.0))
    });
}

// --- Workload discovery -------------------------------------------------------

/// Concrete parameters for all six queries over a given corpus.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Query 1 parameters.
    pub q1: Q1Params,
    /// Query 2 parameters.
    pub q2: Q2Params,
    /// Query 3 parameters.
    pub q3: Q3Params,
    /// Query 4 parameters.
    pub q4: Q4Params,
    /// Query 5 parameters.
    pub q5: Q5Params,
    /// Query 6 parameters.
    pub q6: Q6Params,
}

impl Workload {
    /// Picks phrases and domains with non-trivial selectivity so every
    /// query has real work to do, mirroring the paper's choice of topics
    /// that match a focused set of pages.
    pub fn discover(text: &TextIndex, domains: &DomainTable) -> Workload {
        // The largest .edu domain plays Stanford; runners-up play MIT etc.
        let mut edus = domains.domains_with_tld("edu");
        edus.sort_by_key(|&d| std::cmp::Reverse(domains.pages_of(d).len()));
        let stanford = edus.first().copied().unwrap_or(0);
        let universities: Vec<u32> = edus.iter().copied().take(4).collect();

        let mut coms = domains.domains_with_tld("com");
        coms.sort_by_key(|&d| std::cmp::Reverse(domains.pages_of(d).len()));
        let berkeley = edus.get(1).copied().unwrap_or(stanford);

        // Phrase with the most support inside the Stanford stand-in.
        let phrase_support_in = |d: u32| -> Vec<(u32, usize)> {
            (0..text.num_phrases())
                .map(|ph| {
                    (
                        ph,
                        domains
                            .filter_to_domain(text.pages_with_phrase(ph), d)
                            .len(),
                    )
                })
                .collect()
        };
        let mut in_stanford = phrase_support_in(stanford);
        in_stanford.sort_by_key(|&(ph, c)| (std::cmp::Reverse(c), ph));
        let topic1 = in_stanford.first().map_or(0, |&(ph, _)| ph);

        // A phrase present in both Stanford and Berkeley stand-ins.
        let in_berkeley = phrase_support_in(berkeley);
        let shared = in_stanford
            .iter()
            .find(|&&(ph, c)| c > 0 && in_berkeley.iter().any(|&(p2, c2)| p2 == ph && c2 > 0))
            .map_or(topic1, |&(ph, _)| ph);

        // Globally popular phrases for Q5 and comic vocabularies.
        let mut by_global: Vec<(u32, usize)> = (0..text.num_phrases())
            .map(|ph| (ph, text.pages_with_phrase(ph).len()))
            .collect();
        by_global.sort_by_key(|&(ph, c)| (std::cmp::Reverse(c), ph));
        let global = |rank: usize| by_global.get(rank).map_or(0, |&(ph, _)| ph);

        // Q3 wants a *topical* phrase ("Internet censorship"): enough
        // support to fill the paper's 100-page root set, but concentrated
        // in few domains rather than uniformly popular — a root set
        // scattered over every popular page defeats the locality the
        // query is meant to exhibit.
        let topical = by_global
            .iter()
            .filter(|&&(_, c)| c >= 120)
            .max_by(|&&(a, _), &&(b, _)| {
                let conc = |ph: u32| {
                    let pages = text.pages_with_phrase(ph);
                    let mut counts: std::collections::HashMap<u32, usize> = HashMap::new();
                    for &p in pages {
                        *counts.entry(domains.domain_of(p)).or_insert(0) += 1;
                    }
                    let mut per: Vec<usize> = counts.into_values().collect();
                    per.sort_unstable_by(|x, y| y.cmp(x));
                    let top3: usize = per.iter().take(3).sum();
                    top3 as f64 / pages.len().max(1) as f64
                };
                conc(a)
                    .partial_cmp(&conc(b))
                    .expect("finite")
                    .then(b.cmp(&a))
            })
            .map_or_else(|| global(0), |&(ph, _)| ph);

        let comic_sites: Vec<u32> = coms.iter().copied().take(3).collect();
        let comics: Vec<Comic> = (0..3)
            .map(|i| Comic {
                words: vec![global(3 * i + 1), global(3 * i + 2), global(3 * i + 3)],
                site: comic_sites.get(i).copied().unwrap_or(0),
            })
            .collect();

        Workload {
            q1: Q1Params {
                phrase: topic1,
                source_domain: stanford,
                target_tld: "edu".to_string(),
            },
            q2: Q2Params {
                comics,
                audience_domain: stanford,
            },
            q3: Q3Params {
                phrase: topical,
                root_k: 100,
            },
            q4: Q4Params {
                phrase: global(1),
                universities,
                k: 10,
            },
            q5: Q5Params {
                phrase: global(2),
                result_tld: "edu".to_string(),
                k: 10,
            },
            q6: Q6Params {
                phrase: shared,
                domain1: stanford,
                domain2: berkeley,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reps::{Scheme, SchemeSet};
    use wg_corpus::{Corpus, CorpusConfig};
    use wg_snode::SNodeConfig;

    struct Fixture {
        root: std::path::PathBuf,
        set: SchemeSet,
        text: TextIndex,
        pagerank: PageRankIndex,
        domains: DomainTable,
        workload: Workload,
    }

    fn fixture(name: &str, pages: u32, seed: u64) -> Fixture {
        let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
        let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
        let doms: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
        let mut root = std::env::temp_dir();
        root.push(format!("wg_queries_{name}_{}", std::process::id()));
        let set = SchemeSet::build(
            &root,
            &urls,
            &doms,
            &corpus.graph,
            &SNodeConfig::default(),
            1 << 20,
        )
        .unwrap();
        let text = TextIndex::build(&corpus, &set.renumbering);
        let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
        let domains = DomainTable::build(&corpus, &set.renumbering);
        let workload = Workload::discover(&text, &domains);
        Fixture {
            root,
            set,
            text,
            pagerank,
            domains,
            workload,
        }
    }

    fn run_all(f: &Fixture, scheme: Scheme) -> Vec<QueryOutput> {
        let env = QueryEnv {
            text: &f.text,
            pagerank: &f.pagerank,
            domains: &f.domains,
        };
        let fwd = f.set.open(scheme).unwrap();
        let back = f.set.open_transpose(scheme).unwrap();
        vec![
            query1(env, fwd.as_ref(), &f.workload.q1).unwrap(),
            query2(env, fwd.as_ref(), &f.workload.q2).unwrap(),
            query3(env, fwd.as_ref(), back.as_ref(), &f.workload.q3).unwrap(),
            query4(env, back.as_ref(), &f.workload.q4).unwrap(),
            query5(env, fwd.as_ref(), &f.workload.q5).unwrap(),
            query6(env, fwd.as_ref(), &f.workload.q6).unwrap(),
        ]
    }

    #[test]
    fn every_scheme_returns_identical_results() {
        let f = fixture("equiv", 800, 11);
        let reference = run_all(&f, Scheme::SNode);
        assert!(
            reference.iter().any(|o| !o.rows.is_empty()),
            "workload should produce non-trivial results"
        );
        for scheme in [Scheme::Files, Scheme::Relational, Scheme::Link3] {
            let got = run_all(&f, scheme);
            for (qi, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(a.rows, b.rows, "{} disagrees on Q{}", scheme.name(), qi + 1);
            }
        }
        std::fs::remove_dir_all(&f.root).ok();
    }

    #[test]
    fn navigation_stats_are_populated() {
        let f = fixture("stats", 600, 3);
        let outputs = run_all(&f, Scheme::SNode);
        for (qi, o) in outputs.iter().enumerate() {
            assert!(o.nav.nav_calls > 0, "Q{} must navigate", qi + 1);
        }
        std::fs::remove_dir_all(&f.root).ok();
    }

    #[test]
    fn query1_weights_are_normalised() {
        let f = fixture("q1norm", 700, 9);
        let env = QueryEnv {
            text: &f.text,
            pagerank: &f.pagerank,
            domains: &f.domains,
        };
        let rep = f.set.open(Scheme::SNode).unwrap();
        let out = query1(env, rep.as_ref(), &f.workload.q1).unwrap();
        // Each source page contributes ≤ its normalised weight to each
        // domain, so no domain can exceed 1.0 total.
        for &(_, w) in &out.rows {
            assert!(w <= 1.0 + 1e-9, "weight {w} exceeds normalised total");
            assert!(w > 0.0);
        }
        // Rows sorted descending.
        assert!(out.rows.windows(2).all(|w| w[0].1 >= w[1].1));
        std::fs::remove_dir_all(&f.root).ok();
    }

    #[test]
    fn query3_base_set_contains_roots_and_neighbours() {
        let f = fixture("q3base", 600, 21);
        let env = QueryEnv {
            text: &f.text,
            pagerank: &f.pagerank,
            domains: &f.domains,
        };
        let fwd = f.set.open(Scheme::Files).unwrap();
        let back = f.set.open_transpose(Scheme::Files).unwrap();
        let out = query3(env, fwd.as_ref(), back.as_ref(), &f.workload.q3).unwrap();
        let base: Vec<u32> = out.rows.iter().map(|&(k, _)| k as u32).collect();
        let roots = f
            .pagerank
            .top_k_of(f.text.pages_with_phrase(f.workload.q3.phrase), 100);
        for &r in &roots {
            assert!(base.binary_search(&r).is_ok(), "root {r} missing");
            for &t in f.set.graph.neighbors(r) {
                assert!(base.binary_search(&t).is_ok(), "out-neighbour {t} missing");
            }
            for &s in f.set.transpose.neighbors(r) {
                assert!(base.binary_search(&s).is_ok(), "in-neighbour {s} missing");
            }
        }
        std::fs::remove_dir_all(&f.root).ok();
    }

    #[test]
    fn query5_counts_match_induced_subgraph() {
        let f = fixture("q5ind", 600, 33);
        let env = QueryEnv {
            text: &f.text,
            pagerank: &f.pagerank,
            domains: &f.domains,
        };
        let rep = f.set.open(Scheme::Files).unwrap();
        let out = query5(env, rep.as_ref(), &f.workload.q5).unwrap();
        let s = f.text.pages_with_phrase(f.workload.q5.phrase);
        for &(key, score) in &out.rows {
            let p = key as u32;
            // Recompute the induced in-degree from ground truth.
            let expect = s
                .iter()
                .filter(|&&src| src != p && f.set.graph.has_edge(src, p))
                .count() as f64;
            assert_eq!(score, expect, "page {p}");
        }
        std::fs::remove_dir_all(&f.root).ok();
    }

    #[test]
    fn query6_results_lie_outside_both_domains() {
        let f = fixture("q6dom", 700, 44);
        let env = QueryEnv {
            text: &f.text,
            pagerank: &f.pagerank,
            domains: &f.domains,
        };
        let rep = f.set.open(Scheme::Files).unwrap();
        let out = query6(env, rep.as_ref(), &f.workload.q6).unwrap();
        for &(key, score) in &out.rows {
            let p = key as u32;
            let d = f.domains.domain_of(p);
            assert_ne!(d, f.workload.q6.domain1);
            assert_ne!(d, f.workload.q6.domain2);
            assert!(score >= 2.0, "must be cited from both sides");
        }
        std::fs::remove_dir_all(&f.root).ok();
    }
}
