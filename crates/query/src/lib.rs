//! Query layer: the complex-query workload of §§1.1 and 4.3.
//!
//! The paper's queries combine three views of a repository — text predicates
//! (phrase containment), relational predicates (domain, PageRank), and
//! graph navigation. This crate provides:
//!
//! * [`index`] — the auxiliary indexes every scheme shares: an inverted
//!   phrase index, a PageRank index, and the domain table. (The paper
//!   hosts these outside the graph representation and excludes their
//!   access time from its measurements; so do we.)
//! * [`GraphRep`] — the access trait each Web-graph representation
//!   implements; all reported *navigation time* is time spent inside it.
//! * [`reps`] — adapters wrapping every representation in the workspace:
//!   S-Node, Link3 (disk), the relational store, and uncompressed files —
//!   the four schemes of Figure 11.
//! * [`queries`] — executable implementations of Queries 1–6 of Table 3,
//!   with hand-crafted plans mirroring the paper's (§4.3), plus workload
//!   discovery that picks phrase/domain parameters with non-trivial
//!   selectivity from a generated corpus.
//! * [`obsrun`] — an observed workload runner that wraps each query in
//!   metric-registry snapshots and reports per-query costs (pages
//!   fetched, lists decoded, cache hits) plus result fingerprints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod obsrun;
pub mod queries;
pub mod reps;

pub use index::{DomainTable, PageRankIndex, TextIndex};
pub use reps::Scheme;

use wg_graph::PageId;

/// Errors surfaced while executing queries.
#[derive(Debug)]
pub enum QueryError {
    /// The underlying graph representation failed.
    Rep(Box<dyn std::error::Error + Send + Sync>),
    /// A query was mis-parameterised (e.g. unknown phrase).
    BadQuery(&'static str),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Rep(e) => write!(f, "representation error: {e}"),
            QueryError::BadQuery(w) => write!(f, "bad query: {w}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Uniform access to a Web-graph representation.
///
/// `out_neighbors` returns the sorted adjacency list of `p`. Navigation
/// time — the paper's reported metric — is exactly the wall-clock time
/// spent inside this trait's methods. Implementations for the transpose
/// graph expose backlinks through the same method.
///
/// Every method takes `&self`: representations are shared read handles
/// (DESIGN.md §5f), so one opened scheme can serve any number of threads
/// concurrently. The `Send + Sync` supertraits make `Arc<dyn GraphRep>`
/// the natural server-side handle; per-call mutability (caches, scratch
/// buffers, counters) lives behind each scheme's own interior locks.
pub trait GraphRep: Send + Sync {
    /// Human-readable scheme name (for reports).
    fn scheme_name(&self) -> &'static str;

    /// The sorted adjacency list of `p`.
    fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>>;

    /// Fills `out` with the sorted adjacency list of `p`, reusing the
    /// caller's buffer. The default delegates to [`GraphRep::out_neighbors`];
    /// schemes with an allocation-free path override it.
    fn out_neighbors_into(&self, p: PageId, out: &mut Vec<PageId>) -> Result<()> {
        out.clear();
        out.extend(self.out_neighbors(p)?);
        Ok(())
    }

    /// Answers `out_neighbors` for every page of `pages`, calling `visit`
    /// exactly once per page **in input order** with its sorted adjacency
    /// list. The default is a scalar loop, so baseline schemes keep their
    /// per-page access counters; S-Node overrides it with frontier
    /// batching (one graph lookup per supernode per batch, §3.4).
    fn out_neighbors_batch(
        &self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
    ) -> Result<()> {
        let mut buf = Vec::new();
        for &p in pages {
            self.out_neighbors_into(p, &mut buf)?;
            visit(p, &buf);
        }
        Ok(())
    }

    /// Drops any caches so the next query runs cold.
    fn reset(&self) -> Result<()>;

    /// Degradation summary for schemes with graceful degradation (damaged
    /// graphs quarantined, answers partial); `None` for schemes without a
    /// quarantine path, where any damage is a hard error instead.
    fn degraded(&self) -> Option<wg_snode::DegradedReport> {
        None
    }

    /// Per-shard traffic/contention heatmap of the scheme's graph cache
    /// (`wg-serve`'s shard imbalance view); `None` for schemes without a
    /// sharded cache.
    fn shard_telemetry(&self) -> Option<Vec<wg_obs::ShardStat>> {
        None
    }
}

/// Boxes an arbitrary representation error.
pub fn rep_err<E: std::error::Error + Send + Sync + 'static>(e: E) -> QueryError {
    QueryError::Rep(Box::new(e))
}
