//! The **Plain Huffman** baseline (§4): adjacency lists whose targets are
//! canonical-Huffman-coded by in-degree.
//!
//! "Pages with higher in-degree are assigned smaller codes since they occur
//! more frequently in adjacency lists" — the same code the S-Node scheme
//! applies to its (much smaller) supernode graph. A resident offset table
//! (the page-ID index) provides O(1) random access to each page's coded
//! list.

use crate::{BaselineError, Result};
use wg_bitio::{codes, BitReader, BitWriter, HuffmanCode, HuffmanDecoder};
use wg_graph::{Graph, PageId};

/// In-memory Huffman-coded Web graph.
#[derive(Debug)]
pub struct HuffmanGraph {
    num_pages: u32,
    num_edges: u64,
    /// Coded adjacency payload (table + lists).
    bytes: Vec<u8>,
    bit_len: u64,
    /// Bit offset of each page's list (resident page-ID index).
    offsets: Vec<u64>,
    decoder: HuffmanDecoder,
}

impl HuffmanGraph {
    /// Encodes `graph`.
    pub fn build(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        // In-degree frequencies over all pages. A page that never occurs as
        // a target gets frequency 0 and no code — it never needs one.
        let mut freqs = vec![0u64; n as usize];
        for (_, t) in graph.edges() {
            freqs[t as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs);

        let mut w = BitWriter::new();
        code.write_lengths(&mut w);
        let mut offsets = Vec::with_capacity(n as usize);
        for p in 0..n {
            offsets.push(w.bit_len());
            let targets = graph.neighbors(p);
            codes::write_gamma(&mut w, targets.len() as u64);
            for &t in targets {
                code.encode(&mut w, t);
            }
        }
        let (bytes, bit_len) = w.finish();
        Self {
            num_pages: n,
            num_edges: graph.num_edges(),
            bytes,
            bit_len,
            offsets,
            decoder: code.decoder(),
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Coded payload size in bits (code table + all lists). This is the
    /// Table 1 numerator; the resident offset table is the page-ID index,
    /// which every scheme carries and Table 1 excludes.
    pub fn payload_bits(&self) -> u64 {
        self.bit_len
    }

    /// Bits per edge (Table 1's metric).
    pub fn bits_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.bit_len as f64 / self.num_edges as f64
        }
    }

    /// Bytes of the resident offset table.
    pub fn index_bytes(&self) -> usize {
        self.offsets.len() * 8
    }

    /// Random access: decodes the adjacency list of `p`.
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        if p >= self.num_pages {
            return Err(BaselineError::Corrupt("page id out of range"));
        }
        let mut r = BitReader::with_bit_len(&self.bytes, self.bit_len);
        r.seek(self.offsets[p as usize])
            .map_err(BaselineError::Bits)?;
        self.decode_list(&mut r)
    }

    /// Sequential access: decodes every list in page order, invoking
    /// `f(page, targets)`.
    pub fn for_each_list(&self, mut f: impl FnMut(PageId, &[PageId])) -> Result<()> {
        let mut r = BitReader::with_bit_len(&self.bytes, self.bit_len);
        if self.num_pages > 0 {
            r.seek(self.offsets[0]).map_err(BaselineError::Bits)?;
        }
        for p in 0..self.num_pages {
            let list = self.decode_list(&mut r)?;
            f(p, &list);
        }
        Ok(())
    }

    fn decode_list(&self, r: &mut BitReader<'_>) -> Result<Vec<PageId>> {
        let deg = codes::read_gamma(r)?;
        let mut out = Vec::with_capacity(deg.min(1 << 20) as usize);
        for _ in 0..deg {
            out.push(self.decoder.decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 2),
                (4, 2),
                (5, 2),
                (5, 0),
            ],
        )
    }

    #[test]
    fn random_access_matches_source() {
        let g = sample();
        let h = HuffmanGraph::build(&g);
        for p in 0..g.num_nodes() {
            assert_eq!(h.out_neighbors(p).unwrap(), g.neighbors(p), "page {p}");
        }
    }

    #[test]
    fn sequential_access_matches_source() {
        let g = sample();
        let h = HuffmanGraph::build(&g);
        let mut seen = 0u32;
        h.for_each_list(|p, list| {
            assert_eq!(list, g.neighbors(p));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 6);
    }

    #[test]
    fn popular_targets_get_short_codes() {
        // Page 2 has in-degree 5; its codeword must be the shortest, so a
        // graph dominated by links to 2 compresses below fixed width.
        let g = sample();
        let h = HuffmanGraph::build(&g);
        // 8 edges; fixed width would be 3 bits each = 24 + degrees.
        assert!(h.bits_per_edge() < 8.0, "bpe = {}", h.bits_per_edge());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []);
        let h = HuffmanGraph::build(&g);
        assert_eq!(h.num_pages(), 0);
        assert_eq!(h.bits_per_edge(), 0.0);
        assert!(h.out_neighbors(0).is_err());
    }

    #[test]
    fn pages_with_empty_lists() {
        let g = Graph::from_edges(4, [(0, 3)]);
        let h = HuffmanGraph::build(&g);
        assert_eq!(h.out_neighbors(0).unwrap(), vec![3]);
        for p in 1..4 {
            assert!(h.out_neighbors(p).unwrap().is_empty());
        }
    }

    #[test]
    fn larger_pseudorandom_graph_round_trips() {
        let n = 3_000u32;
        let mut s = 7u64;
        let mut edges = Vec::new();
        for u in 0..n {
            for _ in 0..10 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Zipf-flavoured targets so the Huffman table is skewed.
                let t = ((s >> 33) as u32 % n) % (1 + (s >> 45) as u32 % n);
                edges.push((u, t % n));
            }
        }
        let g = Graph::from_edges(n, edges);
        let h = HuffmanGraph::build(&g);
        for p in (0..n).step_by(131) {
            assert_eq!(h.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        assert!(h.bits_per_edge() > 0.0);
    }
}
