//! The **Link3 / Connectivity Server** baseline (Randall et al., cited as
//! [12, 13] by the paper).
//!
//! Reimplemented from the published description of the Link Database:
//!
//! * pages are assumed URL-sorted (which is how the Connectivity Server
//!   numbers them, and how this workspace numbers pages after the S-Node
//!   renumbering, so the comparison is apples-to-apples);
//! * each page's adjacency list may be **delta-encoded against one of the
//!   `WINDOW` preceding pages**: a copy bitmap over the reference list plus
//!   residual entries;
//! * residuals and plain lists are gap-coded with the first entry stored
//!   relative to the *source* page id (zig-zag γ), exploiting the locality
//!   of intra-host links;
//! * reference chains are bounded by [`MAX_CHAIN`] so random access stays
//!   O(chain · list) — the Link DB makes the same trade.
//!
//! Two variants: [`Link3Graph`] keeps the whole coded stream in memory
//! (Tables 1 and 2); [`Link3DiskStore`] keeps it in a file read through a
//! byte-budgeted block cache (Figure 11, "the remaining space was used for
//! maintaining file buffers").

use crate::{BaselineError, Result};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use wg_bitio::{codes, rle, BitReader, BitWriter};
use wg_graph::{Graph, PageId};

/// Candidate references: the previous `WINDOW` pages.
pub const WINDOW: u32 = 7;
/// Longest allowed chain of references.
pub const MAX_CHAIN: u32 = 4;

/// In-memory Link3-coded Web graph.
#[derive(Debug)]
pub struct Link3Graph {
    num_pages: u32,
    num_edges: u64,
    bytes: Vec<u8>,
    bit_len: u64,
    /// Bit offset of each page's record (resident page-ID index).
    offsets: Vec<u64>,
}

impl Link3Graph {
    /// Encodes `graph`.
    pub fn build(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut w = BitWriter::new();
        let mut offsets = Vec::with_capacity(n as usize);
        let mut chain_depth = vec![0u32; n as usize];

        for p in 0..n {
            offsets.push(w.bit_len());
            let list = graph.neighbors(p);
            // Pick the cheapest admissible reference (or none).
            let plain_cost = plain_record_cost(p, list);
            let mut best: Option<(u32, u64)> = None; // (delta, cost)
            if !list.is_empty() {
                for delta in 1..=WINDOW.min(p) {
                    let r = p - delta;
                    if chain_depth[r as usize] >= MAX_CHAIN {
                        continue;
                    }
                    let reference = graph.neighbors(r);
                    if reference.is_empty() {
                        continue;
                    }
                    let cost = ref_record_cost(p, reference, list);
                    if cost < best.map_or(plain_cost, |(_, c)| c) {
                        best = Some((delta, cost));
                    }
                }
            }
            match best {
                Some((delta, _)) => {
                    let r = p - delta;
                    chain_depth[p as usize] = chain_depth[r as usize] + 1;
                    w.write_bits(u64::from(delta), 3);
                    let reference = graph.neighbors(r);
                    let (bits, extras) = diff_against(reference, list);
                    rle::write_bitvec(&mut w, &bits);
                    write_source_relative(&mut w, p, &extras);
                }
                None => {
                    w.write_bits(0, 3);
                    write_source_relative(&mut w, p, list);
                }
            }
        }
        let (bytes, bit_len) = w.finish();
        Self {
            num_pages: n,
            num_edges: graph.num_edges(),
            bytes,
            bit_len,
            offsets,
        }
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Coded payload size in bits (Table 1 numerator).
    pub fn payload_bits(&self) -> u64 {
        self.bit_len
    }

    /// Bits per edge.
    pub fn bits_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.bit_len as f64 / self.num_edges as f64
        }
    }

    /// Bytes of the resident offset table.
    pub fn index_bytes(&self) -> usize {
        self.offsets.len() * 8
    }

    /// The raw coded stream (used by [`Link3DiskStore::create`]).
    pub fn stream(&self) -> (&[u8], u64, &[u64]) {
        (&self.bytes, self.bit_len, &self.offsets)
    }

    /// Random access: decodes the adjacency list of `p`, following its
    /// (bounded) reference chain.
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        decode_page(p, self.num_pages, &self.offsets, |off, f| {
            let mut r = BitReader::with_bit_len(&self.bytes, self.bit_len);
            r.seek(off)?;
            f(&mut r)
        })
    }

    /// Sequential access: decode every list in order.
    pub fn for_each_list(&self, mut f: impl FnMut(PageId, &[PageId])) -> Result<()> {
        // Sequential decode still needs reference lists; keep a sliding
        // window of the last WINDOW decoded lists.
        let mut window: std::collections::VecDeque<Vec<PageId>> = Default::default();
        let mut r = BitReader::with_bit_len(&self.bytes, self.bit_len);
        for p in 0..self.num_pages {
            r.seek(self.offsets[p as usize])
                .map_err(BaselineError::Bits)?;
            let delta = r.read_bits(3).map_err(BaselineError::Bits)? as u32;
            let list = if delta == 0 {
                read_source_relative(&mut r, p)?
            } else {
                let reference = window
                    .get(window.len() - delta as usize)
                    .ok_or(BaselineError::Corrupt("reference outside window"))?;
                let mut copied = Vec::with_capacity(reference.len());
                let reference = reference.clone();
                rle::read_bitvec_set_positions(&mut r, reference.len(), |i| {
                    copied.push(reference[i]);
                })?;
                let extras = read_source_relative(&mut r, p)?;
                merge_sorted(copied, extras)
            };
            f(p, &list);
            window.push_back(list);
            if window.len() > WINDOW as usize {
                window.pop_front();
            }
        }
        Ok(())
    }
}

/// Disk-resident Link3: the coded stream in a file, offsets resident,
/// record-granular positioned reads.
///
/// The Link Database reads the byte range of the requested record (plus its
/// reference chain) per access — at Web scale, requested pages are
/// scattered across a multi-gigabyte stream, so block-level caching buys
/// almost nothing and each access pays a seek. A block cache at this
/// harness's 1:1000 scale would instead hold the *entire* stream, silently
/// converting the scheme into its in-memory variant; direct reads keep the
/// per-access physics scale-faithful.
#[derive(Debug)]
pub struct Link3DiskStore {
    file: File,
    stream_id: u64,
    offsets: Vec<u64>,
    bit_len: u64,
    num_pages: u32,
    reads: std::sync::atomic::AtomicU64,
}

impl Link3DiskStore {
    /// Writes the coded stream of `graph` to `path` and opens it.
    ///
    /// `_budget_bytes` is accepted for interface parity with the other
    /// schemes; the resident offset table is this scheme's memory use.
    pub fn create(path: &Path, graph: &Graph, _budget_bytes: usize) -> Result<Self> {
        let mem = Link3Graph::build(graph);
        let (bytes, bit_len, offsets) = mem.stream();
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        drop(f);
        let file = File::open(path)?;
        Ok(Self {
            file,
            stream_id: wg_store::diskmodel::new_stream(),
            offsets: offsets.to_vec(),
            bit_len,
            num_pages: mem.num_pages(),
            reads: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// No user-level cache to clear (direct reads).
    pub fn clear_cache(&self) -> Result<()> {
        Ok(())
    }

    /// Positioned reads performed.
    pub fn read_count(&self) -> u64 {
        self.reads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Random access via one positioned read per page visit.
    ///
    /// References only ever point at the `WINDOW` preceding records and
    /// chains are bounded, so the entire reference closure of page `p`
    /// lives within the `WINDOW × MAX_CHAIN` records before it — a few
    /// hundred adjacent bytes. One read fetches all of it; paying a seek
    /// per chain hop would mis-model a region the disk head covers in a
    /// single transfer.
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        let num_pages = self.num_pages;
        let offsets = &self.offsets;
        if p >= num_pages {
            return Err(BaselineError::Corrupt(
                "link3 buffered page id out of range",
            ));
        }
        let stream_bytes = self.bit_len.div_ceil(8) as usize;
        let first_page = p.saturating_sub(WINDOW * MAX_CHAIN);
        let start_byte = (offsets[first_page as usize] / 8) as usize;
        // Window past p's own record start; grows on the rare overrun.
        let own = (offsets[p as usize] / 8) as usize;
        let mut end_byte = (own + 1024).min(stream_bytes);
        loop {
            let mut scratch = vec![0u8; end_byte - start_byte];
            self.read_at(&mut scratch, start_byte as u64)?;
            let local_bit_len =
                (self.bit_len - start_byte as u64 * 8).min(scratch.len() as u64 * 8);
            let attempt = decode_page(p, num_pages, offsets, |off, f| {
                let mut r = BitReader::with_bit_len(&scratch, local_bit_len);
                r.seek(off - start_byte as u64 * 8)?;
                f(&mut r)
            });
            match attempt {
                Ok(v) => return Ok(v),
                Err(BaselineError::Bits(wg_bitio::BitError::UnexpectedEof { .. }))
                    if end_byte < stream_bytes =>
                {
                    end_byte = (end_byte * 2).min(stream_bytes);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One positioned read through the canonical shim (portable, short
    /// reads are errors, transient errors retried with bounded backoff).
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        wg_fault::read_exact_at(&self.file, buf, offset)?;
        wg_store::diskmodel::charge_read(self.stream_id, offset, buf.len());
        self.reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
}

// --- Record codec -----------------------------------------------------------

/// Decodes page `p`'s record, recursively resolving bounded reference
/// chains. `with_reader(bit_offset, f)` positions a reader and runs `f`.
fn decode_page<F>(
    p: PageId,
    num_pages: u32,
    offsets: &[u64],
    mut with_reader: F,
) -> Result<Vec<PageId>>
where
    F: FnMut(u64, &mut dyn FnMut(&mut BitReader<'_>) -> Result<Vec<PageId>>) -> Result<Vec<PageId>>,
{
    if p >= num_pages {
        return Err(BaselineError::Corrupt("link3 page id out of range"));
    }
    // Collect the reference chain (bounded by MAX_CHAIN).
    let mut chain = vec![p];
    loop {
        let cur = *chain.last().expect("non-empty");
        let delta = with_reader(offsets[cur as usize], &mut |r| {
            Ok(vec![r.read_bits(3)? as u32])
        })?[0];
        if delta == 0 {
            break;
        }
        if chain.len() as u32 > MAX_CHAIN + 1 {
            return Err(BaselineError::Corrupt("reference chain exceeds bound"));
        }
        chain.push(cur - delta);
    }
    // Decode top-down.
    let mut current: Vec<PageId> = Vec::new();
    for &page in chain.iter().rev() {
        let reference = current;
        current = with_reader(offsets[page as usize], &mut |r| {
            let delta = r.read_bits(3)? as u32;
            if delta == 0 {
                read_source_relative(r, page)
            } else {
                let mut copied = Vec::with_capacity(reference.len());
                rle::read_bitvec_set_positions(r, reference.len(), |i| {
                    copied.push(reference[i]);
                })?;
                let extras = read_source_relative(r, page)?;
                Ok(merge_sorted(copied, extras))
            }
        })?;
    }
    Ok(current)
}

/// Cost in bits of a plain record for `(p, list)`.
fn plain_record_cost(p: PageId, list: &[PageId]) -> u64 {
    3 + source_relative_len(p, list)
}

/// Cost in bits of a referenced record.
fn ref_record_cost(p: PageId, reference: &[PageId], list: &[PageId]) -> u64 {
    let (bits, extras) = diff_against(reference, list);
    3 + rle::encoded_len(&bits) + source_relative_len(p, &extras)
}

/// Splits `target` into (copy bit vector over `reference`, extras).
fn diff_against(reference: &[PageId], target: &[PageId]) -> (Vec<bool>, Vec<PageId>) {
    let mut bits = vec![false; reference.len()];
    let mut extras = Vec::new();
    let mut ri = 0usize;
    for &t in target {
        while ri < reference.len() && reference[ri] < t {
            ri += 1;
        }
        if ri < reference.len() && reference[ri] == t {
            bits[ri] = true;
            ri += 1;
        } else {
            extras.push(t);
        }
    }
    (bits, extras)
}

/// Source-relative gap list: γ(len); zig-zag γ of `t₀ − p`; γ gaps after.
fn write_source_relative(w: &mut BitWriter, p: PageId, list: &[PageId]) {
    codes::write_gamma(w, list.len() as u64);
    let mut prev: Option<PageId> = None;
    for &t in list {
        match prev {
            None => codes::write_gamma(w, zigzag(i64::from(t) - i64::from(p))),
            Some(q) => codes::write_gamma(w, u64::from(t - q - 1)),
        }
        prev = Some(t);
    }
}

fn source_relative_len(p: PageId, list: &[PageId]) -> u64 {
    let mut total = codes::gamma_len(list.len() as u64);
    let mut prev: Option<PageId> = None;
    for &t in list {
        total += match prev {
            None => codes::gamma_len(zigzag(i64::from(t) - i64::from(p))),
            Some(q) => codes::gamma_len(u64::from(t - q - 1)),
        };
        prev = Some(t);
    }
    total
}

fn read_source_relative(r: &mut BitReader<'_>, p: PageId) -> Result<Vec<PageId>> {
    let len = codes::read_gamma(r)?;
    let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
    let mut prev: Option<PageId> = None;
    for _ in 0..len {
        let g = codes::read_gamma(r)?;
        let t = match prev {
            None => {
                let d = unzigzag(g);
                let v = i64::from(p) + d;
                if v < 0 || v > i64::from(u32::MAX) {
                    return Err(BaselineError::Corrupt("first target out of range"));
                }
                v as PageId
            }
            Some(q) => q
                .checked_add(g as u32)
                .and_then(|v| v.checked_add(1))
                .ok_or(BaselineError::Corrupt("link3 gap overflow"))?,
        };
        out.push(t);
        prev = Some(t);
    }
    Ok(out)
}

fn merge_sorted(a: Vec<PageId>, b: Vec<PageId>) -> Vec<PageId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn localish_graph(n: u32) -> Graph {
        // URL-sorted-style locality: most targets near the source, similar
        // lists among neighbours (what Link3 exploits).
        let mut edges = Vec::new();
        for u in 0..n {
            let base = u / 4 * 4; // groups of 4 share targets
            for k in 1..=5u32 {
                edges.push((u, (base + k * 3) % n));
            }
            edges.push((u, (u * 7919) % n));
        }
        Graph::from_edges(n, edges)
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [-5i64, -1, 0, 1, 7, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn random_access_matches_source() {
        let g = localish_graph(500);
        let l = Link3Graph::build(&g);
        for p in 0..g.num_nodes() {
            assert_eq!(l.out_neighbors(p).unwrap(), g.neighbors(p), "page {p}");
        }
    }

    #[test]
    fn sequential_access_matches_source() {
        let g = localish_graph(300);
        let l = Link3Graph::build(&g);
        let mut count = 0u32;
        l.for_each_list(|p, list| {
            assert_eq!(list, g.neighbors(p));
            count += 1;
        })
        .unwrap();
        assert_eq!(count, 300);
    }

    #[test]
    fn similar_neighbours_shrink_the_stream() {
        let g = localish_graph(1_000);
        let l = Link3Graph::build(&g);
        // A plain γ-coded stream of the same graph:
        let mut w = BitWriter::new();
        for p in 0..g.num_nodes() {
            write_source_relative(&mut w, p, g.neighbors(p));
        }
        assert!(
            l.payload_bits() < w.bit_len(),
            "link3 {} must beat plain gaps {}",
            l.payload_bits(),
            w.bit_len()
        );
    }

    #[test]
    fn chain_depth_is_bounded() {
        // 100 identical lists in a row would invite a 99-deep chain; the
        // encoder must cap it at MAX_CHAIN.
        let mut edges = Vec::new();
        for u in 0..100u32 {
            edges.push((u, 100));
            edges.push((u, 101));
            edges.push((u, 102));
        }
        let g = Graph::from_edges(103, edges);
        let l = Link3Graph::build(&g);
        // Every list decodable without hitting the chain bound error.
        for p in 0..g.num_nodes() {
            assert_eq!(l.out_neighbors(p).unwrap(), g.neighbors(p));
        }
    }

    #[test]
    fn empty_graph_and_empty_lists() {
        let g = Graph::from_edges(3, []);
        let l = Link3Graph::build(&g);
        for p in 0..3 {
            assert!(l.out_neighbors(p).unwrap().is_empty());
        }
        assert!(l.out_neighbors(3).is_err());
    }

    #[test]
    fn disk_store_matches_in_memory() {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_link3_disk_{}", std::process::id()));
        let g = localish_graph(400);
        let store = Link3DiskStore::create(&path, &g, 32 * 1024).unwrap();
        for p in (0..g.num_nodes()).rev() {
            assert_eq!(store.out_neighbors(p).unwrap(), g.neighbors(p), "page {p}");
        }
        assert!(store.read_count() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_store_reads_are_counted_and_reset_is_noop() {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_link3_cold_{}", std::process::id()));
        let g = localish_graph(100);
        let store = Link3DiskStore::create(&path, &g, 16 * 1024).unwrap();
        store.out_neighbors(0).unwrap();
        let before = store.read_count();
        store.clear_cache().unwrap();
        store.out_neighbors(0).unwrap();
        assert!(store.read_count() > before);
        std::fs::remove_file(&path).ok();
    }
}
