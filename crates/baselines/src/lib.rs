//! Baseline compressed Web-graph representations the paper evaluates
//! S-Node against (§4):
//!
//! * [`huffman_graph`] — the **Plain Huffman** scheme: every page id is
//!   assigned a canonical Huffman code keyed by its in-degree (frequent
//!   targets get short codes), and adjacency lists are stored as γ-coded
//!   degrees followed by Huffman-coded targets.
//! * [`link3`] — a reimplementation of the **Link3 / Connectivity Server**
//!   scheme of Randall et al.: each page may represent its adjacency list
//!   relative to one of the 7 preceding pages (copy bitmap + residual
//!   gaps), with source-relative first-gap coding to exploit URL-order
//!   locality, and bounded reference chains for fast random access.
//! * [`link3::Link3DiskStore`] — the disk-resident variant used in the
//!   Figure 11 query experiments, reading the encoded stream through a
//!   byte-budgeted block cache ("the remaining space was used for
//!   maintaining file buffers").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod huffman_graph;
pub mod link3;

pub use huffman_graph::HuffmanGraph;
pub use link3::{Link3DiskStore, Link3Graph};

/// Errors from the baseline representations.
#[derive(Debug)]
pub enum BaselineError {
    /// Bit-level decode failure.
    Bits(wg_bitio::BitError),
    /// Storage-layer failure (disk-backed Link3).
    Store(wg_store::StoreError),
    /// I/O failure.
    Io(std::io::Error),
    /// Structural inconsistency.
    Corrupt(&'static str),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Bits(e) => write!(f, "bit-level decode error: {e}"),
            BaselineError::Store(e) => write!(f, "storage error: {e}"),
            BaselineError::Io(e) => write!(f, "I/O error: {e}"),
            BaselineError::Corrupt(w) => write!(f, "corrupt representation: {w}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Bits(e) => Some(e),
            BaselineError::Store(e) => Some(e),
            BaselineError::Io(e) => Some(e),
            BaselineError::Corrupt(_) => None,
        }
    }
}

impl From<wg_bitio::BitError> for BaselineError {
    fn from(e: wg_bitio::BitError) -> Self {
        BaselineError::Bits(e)
    }
}
impl From<wg_store::StoreError> for BaselineError {
    fn from(e: wg_store::StoreError) -> Self {
        BaselineError::Store(e)
    }
}
impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
