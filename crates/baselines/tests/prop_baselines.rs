//! Property tests: both baseline representations must reproduce arbitrary
//! graphs exactly, in memory and (for Link3) through the disk path.

use proptest::prelude::*;
use wg_baselines::{HuffmanGraph, Link3DiskStore, Link3Graph};
use wg_graph::Graph;

fn arb_graph(max_n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n), 0..=max_edges)
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn huffman_reproduces_arbitrary_graphs(g in arb_graph(150, 1_500)) {
        let h = HuffmanGraph::build(&g);
        for p in 0..g.num_nodes() {
            prop_assert_eq!(h.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        let mut count = 0;
        h.for_each_list(|p, list| {
            assert_eq!(list, g.neighbors(p));
            count += 1;
        })
        .unwrap();
        prop_assert_eq!(count, g.num_nodes());
    }

    #[test]
    fn link3_reproduces_arbitrary_graphs(g in arb_graph(150, 1_500)) {
        let l = Link3Graph::build(&g);
        for p in 0..g.num_nodes() {
            prop_assert_eq!(l.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        let mut count = 0;
        l.for_each_list(|p, list| {
            assert_eq!(list, g.neighbors(p));
            count += 1;
        })
        .unwrap();
        prop_assert_eq!(count, g.num_nodes());
    }

    #[test]
    fn link3_disk_agrees_with_in_memory(g in arb_graph(80, 600), seed in any::<u64>()) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "wg_prop_link3_{}_{}",
            std::process::id(),
            seed
        ));
        let store = Link3DiskStore::create(&path, &g, 64 * 1024).unwrap();
        // Random access order.
        let mut order: Vec<u32> = (0..g.num_nodes()).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for &p in &order {
            prop_assert_eq!(store.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        std::fs::remove_file(&path).ok();
    }
}
