//! Live service telemetry: per-op rolling latency windows, per-stage
//! attribution, shard heatmaps, and a structured slow-query log.
//!
//! Everything here is gated on the process-wide
//! [`wg_obs::telemetry_enabled`] flag, raised by [`Server::start`] from
//! [`ServeConfig::telemetry`]. With the flag down, the serve path pays one
//! relaxed atomic load per request and records nothing.
//!
//! The design separates *live* from *cumulative* state deliberately:
//!
//! * **Live percentiles** come from [`RollingHistogram`]s — a fixed ring
//!   of log2-bucket windows rotated every [`WINDOW_EVERY`] requests
//!   (a logical tick, so tests are deterministic), holding [`WINDOWS`]
//!   windows. `p50/p90/p99` in the snapshot therefore describe *recent*
//!   traffic, not the whole run.
//! * **Monotonic counts** (total requests, per-op counts, per-op stage
//!   nanosecond sums, cumulative stage histograms) never expire, so a
//!   client polling [`ServeTelemetry::snapshot_json`] can assert they only
//!   grow — the concurrent-serve test does exactly that.
//!
//! [`Server::start`]: crate::server::Server::start
//! [`ServeConfig::telemetry`]: crate::server::ServeConfig::telemetry

use crate::server::{ServeContext, ServerStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wg_obs::{Counter, HistData, Histogram, RollingHistogram, ShardStat, Stage, NUM_STAGES};

/// Ops with per-op telemetry: ping, the six workload queries, raw
/// navigation. Unknown opcodes land in the server's error counter only.
pub const NUM_OPS: usize = 8;

/// Display names, indexed by the op index [`dispatch`] reports.
///
/// [`dispatch`]: crate::server::Server
pub const OP_NAMES: [&str; NUM_OPS] = ["ping", "q1", "q2", "q3", "q4", "q5", "q6", "nav"];

/// Requests per rolling window (the logical tick driving rotation).
pub const WINDOW_EVERY: u64 = 64;

/// Windows held live per op (`WINDOWS × WINDOW_EVERY` requests of
/// history feed the live percentiles).
pub const WINDOWS: usize = 8;

/// Slow-query entries retained in memory (oldest evicted first).
pub const SLOWLOG_CAP: usize = 128;

/// Stage-overrun tolerance: flag when the stage sum exceeds
/// `total × SAMPLE_SCALE + 200 µs`. Stages are disjoint slices of the
/// request's wall time, so their *exact* sum is ≤ total; the 1-in-8
/// sampling of the per-list sites ([`wg_obs::stage_sample`]) inflates
/// any one stage by at most [`wg_obs::SAMPLE_SCALE`], so the scaled sum
/// can never legitimately exceed `SAMPLE_SCALE × total` (plus timer
/// noise). Crossing that bound means the attribution itself is broken —
/// a stage double-counted, or a scope leaking across requests.
const OVERRUN_SLACK_NS: u64 = 200_000;

/// One retained slow-query record (also emitted to stderr as JSON).
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Request sequence number (0-based, server lifetime).
    pub seq: u64,
    /// Op display name.
    pub op: &'static str,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// Response status wire byte.
    pub status: u8,
    /// FNV-1a row fingerprint (0 for non-query ops).
    pub fingerprint: u64,
    /// Per-stage microseconds, indexed by [`Stage`].
    pub stages_us: [u64; NUM_STAGES],
}

impl SlowEntry {
    /// Renders the entry as one JSON line (the slowlog wire format:
    /// `{"seq":..,"op":"q3","total_us":..,"status":0,
    /// "fingerprint":"..hex..","stages_us":{"queue_wait":..,...}}`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push_str(&format!(
            "{{\"seq\":{},\"op\":\"{}\",\"total_us\":{},\"status\":{},\"fingerprint\":\"{:016x}\",\"stages_us\":{{",
            self.seq, self.op, self.total_us, self.status, self.fingerprint
        ));
        for (i, st) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", st.name(), self.stages_us[i]));
        }
        s.push_str("}}");
        s
    }
}

/// Shared telemetry state for one running server.
pub struct ServeTelemetry {
    /// Request sequence counter; `seq / WINDOW_EVERY` is the logical
    /// window number every rolling histogram rotates on.
    seq: AtomicU64,
    /// Cumulative per-op request counts (monotonic).
    op_counts: [Counter; NUM_OPS],
    /// Cumulative per-op end-to-end nanoseconds (monotonic; the
    /// denominator of the attribution cross-check: stage sums must stay
    /// within tolerance of this).
    op_total_ns: [Counter; NUM_OPS],
    /// Live per-op end-to-end latency (rolling windows, nanoseconds).
    op_latency: Vec<RollingHistogram>,
    /// Cumulative all-ops latency distribution per stage (nanoseconds;
    /// zero-duration stages are not recorded, so `count` per stage is
    /// "requests in which the stage actually ran").
    stage_hist: [Histogram; NUM_STAGES],
    /// Cumulative per-op per-stage nanosecond sums (the attribution
    /// matrix: where did each op's time go?).
    op_stage_ns: [[Counter; NUM_STAGES]; NUM_OPS],
    /// Requests whose stage sum exceeded the overrun tolerance.
    stage_overruns: Counter,
    /// Slowlog threshold in nanoseconds (0 = disabled).
    slowlog_ns: u64,
    /// Retained slow queries, oldest first.
    slowlog: Mutex<VecDeque<SlowEntry>>,
}

impl ServeTelemetry {
    /// Creates telemetry state; `slowlog_us` of 0 disables the slowlog.
    pub fn new(slowlog_us: u64) -> Self {
        Self {
            seq: AtomicU64::new(0),
            op_counts: std::array::from_fn(|_| Counter::new()),
            op_total_ns: std::array::from_fn(|_| Counter::new()),
            op_latency: (0..NUM_OPS)
                .map(|_| RollingHistogram::new(WINDOWS))
                .collect(),
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            op_stage_ns: std::array::from_fn(|_| std::array::from_fn(|_| Counter::new())),
            stage_overruns: Counter::new(),
            slowlog_ns: slowlog_us.saturating_mul(1_000),
            slowlog: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one finished request: rotates the op's rolling window,
    /// feeds the attribution matrix, checks stage-sum sanity, and
    /// captures a slowlog entry when over threshold. Stages are disjoint
    /// slices of `total_ns`, so their sum is ≤ `SAMPLE_SCALE × total`
    /// up to timer noise (exact stages are ≤ total; the sampled per-list
    /// stages can each be inflated at most `SAMPLE_SCALE`-fold).
    pub fn record_request(
        &self,
        op_idx: usize,
        status: u8,
        fingerprint: u64,
        total_ns: u64,
        stages: &[u64; NUM_STAGES],
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if op_idx >= NUM_OPS {
            return; // unknown opcode: counted by ServerStats.errors only
        }
        self.op_counts[op_idx].inc();
        self.op_total_ns[op_idx].add(total_ns);
        self.op_latency[op_idx].record(seq / WINDOW_EVERY, total_ns);
        let mut sum = 0u64;
        for (i, &ns) in stages.iter().enumerate() {
            sum = sum.saturating_add(ns);
            self.op_stage_ns[op_idx][i].add(ns);
            if ns > 0 {
                self.stage_hist[i].record(ns);
            }
        }
        if sum
            > total_ns
                .saturating_mul(wg_obs::SAMPLE_SCALE)
                .saturating_add(OVERRUN_SLACK_NS)
        {
            self.stage_overruns.inc();
        }
        if self.slowlog_ns > 0 && total_ns >= self.slowlog_ns {
            let entry = SlowEntry {
                seq,
                op: OP_NAMES[op_idx],
                total_us: total_ns / 1_000,
                status,
                fingerprint,
                stages_us: std::array::from_fn(|i| stages[i] / 1_000),
            };
            eprintln!("{}", entry.to_json());
            let mut log = match self.slowlog.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if log.len() == SLOWLOG_CAP {
                log.pop_front();
            }
            log.push_back(entry);
        }
    }

    /// Total requests recorded (monotonic).
    pub fn requests(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Cumulative request count for op `i` (monotonic).
    pub fn op_count(&self, i: usize) -> u64 {
        self.op_counts[i].get()
    }

    /// Cumulative nanoseconds op `i` spent in `stage`.
    pub fn op_stage_ns(&self, i: usize, stage: Stage) -> u64 {
        self.op_stage_ns[i][stage.index()].get()
    }

    /// Cumulative end-to-end nanoseconds of op `i` (monotonic).
    pub fn op_total_ns(&self, i: usize) -> u64 {
        self.op_total_ns[i].get()
    }

    /// Merged live latency distribution for op `i` (recent windows only).
    pub fn live_latency(&self, i: usize) -> HistData {
        self.op_latency[i].snapshot().merged()
    }

    /// Cumulative all-ops latency distribution of `stage`.
    pub fn stage_data(&self, stage: Stage) -> HistData {
        HistData::of(&self.stage_hist[stage.index()])
    }

    /// Requests whose stage sum exceeded the overrun tolerance.
    pub fn stage_overruns(&self) -> u64 {
        self.stage_overruns.get()
    }

    /// Copies the retained slowlog, oldest first.
    pub fn slowlog(&self) -> Vec<SlowEntry> {
        match self.slowlog.lock() {
            Ok(g) => g.clone().into(),
            Err(p) => p.into_inner().clone().into(),
        }
    }

    /// Renders the full live snapshot as JSON.
    ///
    /// The output is *line-oriented*: one line per op, per stage, and per
    /// shard, with fixed key order — `wgr top` renders it by scanning
    /// lines, and tests diff it structurally. All values are numbers or
    /// fixed identifier strings, so no escaping is required.
    pub fn snapshot_json(&self, stats: &ServerStats, ctx: &ServeContext) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!(
            "\"server\":{{\"connections\":{},\"requests\":{},\"degraded\":{},\"errors\":{},\"overloaded\":{}}},\n",
            stats.connections.load(Ordering::Relaxed),
            stats.requests.load(Ordering::Relaxed),
            stats.degraded.load(Ordering::Relaxed),
            stats.errors.load(Ordering::Relaxed),
            stats.overloaded.load(Ordering::Relaxed),
        ));
        s.push_str(&format!(
            "\"telemetry\":{{\"requests\":{},\"stage_overruns\":{},\"slowlog_len\":{},\"window_every\":{WINDOW_EVERY},\"windows\":{WINDOWS}}},\n",
            self.requests(),
            self.stage_overruns(),
            self.slowlog().len(),
        ));
        s.push_str("\"ops\":[\n");
        for (i, name) in OP_NAMES.iter().enumerate() {
            let live = self.live_latency(i);
            s.push_str(&format!(
                "{{\"op\":\"{}\",\"count\":{},\"total_us\":{},\"live_count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"stages_us\":{{",
                name,
                self.op_count(i),
                self.op_total_ns(i) / 1_000,
                live.count,
                live.mean() / 1_000,
                live.percentile(0.50) / 1_000,
                live.percentile(0.90) / 1_000,
                live.percentile(0.99) / 1_000,
            ));
            for (j, st) in Stage::ALL.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\"{}\":{}",
                    st.name(),
                    self.op_stage_ns[i][j].get() / 1_000
                ));
            }
            s.push_str("}}");
            s.push_str(if i + 1 < NUM_OPS { ",\n" } else { "\n" });
        }
        s.push_str("],\n\"stages\":[\n");
        for (j, st) in Stage::ALL.iter().enumerate() {
            let d = self.stage_data(*st);
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{}}}{}",
                st.name(),
                d.count,
                d.mean() / 1_000,
                d.percentile(0.50) / 1_000,
                d.percentile(0.99) / 1_000,
                if j + 1 < NUM_STAGES { ",\n" } else { "\n" },
            ));
        }
        s.push_str("],\n\"shards\":[\n");
        let fwd = ctx.fwd.shard_telemetry().unwrap_or_default();
        let back = ctx.back.shard_telemetry().unwrap_or_default();
        let total = fwd.len() + back.len();
        let mut at = 0usize;
        for (graph, shards) in [("fwd", &fwd), ("back", &back)] {
            for sh in shards.iter() {
                at += 1;
                s.push_str(&shard_json(graph, sh));
                s.push_str(if at < total { ",\n" } else { "\n" });
            }
        }
        s.push_str("],\n");
        let memo = wg_snode::cache::memo_lock_stats();
        s.push_str(&format!(
            "\"locks\":[{{\"lock\":\"memo\",\"acquisitions\":{},\"contended\":{},\"wait_us\":{},\"hold_us\":{}}}]\n",
            memo.acquisitions,
            memo.contended,
            memo.wait_ns / 1_000,
            memo.hold_ns / 1_000,
        ));
        s.push('}');
        s
    }
}

/// One shard-heatmap JSON line.
fn shard_json(graph: &str, sh: &ShardStat) -> String {
    format!(
        "{{\"graph\":\"{}\",\"shard\":{},\"hits\":{},\"misses\":{},\"entries\":{},\"bytes\":{},\"acquisitions\":{},\"contended\":{},\"wait_us\":{},\"hold_us\":{}}}",
        graph,
        sh.shard,
        sh.hits,
        sh.misses,
        sh.entries,
        sh.bytes,
        sh.lock.acquisitions,
        sh.lock.contended,
        sh.lock.wait_ns / 1_000,
        sh.lock.hold_ns / 1_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(v: [u64; NUM_STAGES]) -> [u64; NUM_STAGES] {
        v
    }

    #[test]
    fn record_request_accumulates_monotonic_counters() {
        let t = ServeTelemetry::new(0);
        t.record_request(1, 0, 7, 10_000, &stages([1_000, 2_000, 3_000, 500, 100]));
        t.record_request(1, 0, 7, 20_000, &stages([0, 0, 0, 0, 0]));
        t.record_request(7, 0, 0, 5_000, &stages([0, 1_000, 0, 0, 0]));
        assert_eq!(t.requests(), 3);
        assert_eq!(t.op_count(1), 2);
        assert_eq!(t.op_count(7), 1);
        assert_eq!(t.op_total_ns(1), 30_000);
        assert_eq!(t.op_stage_ns(1, Stage::ShardLock), 2_000);
        assert_eq!(t.op_stage_ns(7, Stage::ShardLock), 1_000);
        // Zero-duration stages are not recorded into the distribution.
        assert_eq!(t.stage_data(Stage::ShardLock).count, 2);
        assert_eq!(t.stage_data(Stage::RespWrite).count, 1);
        assert_eq!(t.live_latency(1).count, 2);
        assert_eq!(t.stage_overruns(), 0);
    }

    #[test]
    fn unknown_op_index_is_ignored() {
        let t = ServeTelemetry::new(0);
        t.record_request(NUM_OPS, 2, 0, 1_000, &stages([0; NUM_STAGES]));
        // Sequence advances (the request happened) but no op bucket moves.
        assert_eq!(t.requests(), 1);
        for i in 0..NUM_OPS {
            assert_eq!(t.op_count(i), 0);
        }
    }

    #[test]
    fn stage_overrun_is_flagged() {
        let t = ServeTelemetry::new(0);
        // Sum of stages (2 ms) far exceeds total (1 µs) × SAMPLE_SCALE
        // + tolerance.
        t.record_request(2, 0, 0, 1_000, &stages([1_000_000, 1_000_000, 0, 0, 0]));
        assert_eq!(t.stage_overruns(), 1);
        // A sane request does not trip the check.
        t.record_request(2, 0, 0, 1_000_000, &stages([200_000, 300_000, 0, 0, 0]));
        assert_eq!(t.stage_overruns(), 1);
    }

    #[test]
    fn slowlog_captures_over_threshold_and_is_bounded() {
        let t = ServeTelemetry::new(100); // 100 µs threshold
        t.record_request(3, 0, 0xabcd, 50_000, &stages([0; NUM_STAGES]));
        assert!(t.slowlog().is_empty(), "fast request must not be logged");
        for _ in 0..(SLOWLOG_CAP + 10) {
            t.record_request(3, 3, 0xabcd, 250_000, &stages([1_000, 0, 0, 200_000, 0]));
        }
        let log = t.slowlog();
        assert_eq!(log.len(), SLOWLOG_CAP, "slowlog is bounded");
        let e = log.last().unwrap();
        assert_eq!(e.op, "q3");
        assert_eq!(e.total_us, 250);
        assert_eq!(e.status, 3);
        let json = e.to_json();
        assert!(json.contains("\"op\":\"q3\""), "{json}");
        assert!(
            json.contains("\"fingerprint\":\"000000000000abcd\""),
            "{json}"
        );
        assert!(json.contains("\"list_decode\":200"), "{json}");
    }

    #[test]
    fn rolling_windows_expire_old_latency() {
        let t = ServeTelemetry::new(0);
        // Fill enough requests to rotate every window out: the first
        // sample's window (0) must no longer be live at the end.
        t.record_request(0, 0, 0, 99, &stages([0; NUM_STAGES]));
        let spins = WINDOW_EVERY * (WINDOWS as u64 + 2);
        for _ in 0..spins {
            t.record_request(0, 0, 0, 1, &stages([0; NUM_STAGES]));
        }
        let live = t.live_latency(0);
        assert!(live.count < t.op_count(0), "old windows must expire");
        assert_eq!(t.op_count(0), spins + 1, "cumulative count never expires");
    }
}
