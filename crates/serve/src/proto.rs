//! Wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 le body_len][body_len bytes]
//! ```
//!
//! Request body: `[u8 opcode][payload]`
//!
//! | opcode | payload          | meaning                                  |
//! |--------|------------------|------------------------------------------|
//! | 0      | —                | ping (health check)                      |
//! | 1–6    | —                | run Query N of the server's workload     |
//! | 7      | `u32 le page`    | raw `out_neighbors(page)` (forward graph)|
//! | 8      | —                | live telemetry snapshot (JSON payload)   |
//!
//! Response body: `[u8 status][payload]`
//!
//! | status | meaning                         | payload                     |
//! |--------|---------------------------------|-----------------------------|
//! | 0      | ok                              | opcode-specific (below)     |
//! | 2      | error                           | utf-8 message               |
//! | 3      | degraded (partial answer)       | opcode-specific (below)     |
//! | 4      | overloaded (admission refused)  | empty                       |
//!
//! Status bytes 2 and 3 deliberately mirror the `wgr` process exit codes
//! (2 = unusable, 3 = degraded answers) so a client can forward them.
//!
//! Query payload: `[u64 le fingerprint][u32 le nrows][nrows × (u64 le key,
//! u64 le score_bits)]` — the fingerprint is [`fingerprint_rows`] over the
//! rows, the same FNV-1a the committed `BENCH_query.json` pins, so a
//! client can both verify the frame and cross-check the benchmark file.
//! Ping payload: empty. `out_neighbors` payload: `[u32 le n][n × u32 le]`.
//! Stats payload: a UTF-8 JSON document (line-oriented: one line per op,
//! stage, and cache shard — see `telemetry::ServeTelemetry::snapshot_json`).

use std::io::{Read, Write};

/// Ping opcode.
pub const OP_PING: u8 = 0;
/// Raw forward-graph `out_neighbors` opcode.
pub const OP_OUT_NEIGHBORS: u8 = 7;
/// Live telemetry snapshot opcode. The response payload is the JSON
/// document [`crate::telemetry::ServeTelemetry::snapshot_json`] renders
/// (always available; mostly-zero when the server runs with telemetry
/// off).
pub const OP_STATS: u8 = 8;
/// Largest accepted *request* body (requests are tiny; anything larger is
/// a protocol violation, not a big query).
pub const MAX_REQUEST: u32 = 4096;
/// Largest accepted *response* body (bounded by result rows / adjacency
/// size; 16 MiB is orders of magnitude above any 20k-corpus answer).
pub const MAX_RESPONSE: u32 = 16 << 20;

/// Response status byte. `Error`/`Degraded` use the same numbers as the
/// `wgr` exit-code contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Full answer.
    Ok,
    /// Request failed; payload is a message.
    Error,
    /// Partial answer: the representation has quarantined supernodes.
    Degraded,
    /// Admission queue full; retry later.
    Overloaded,
}

impl Status {
    /// Wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Error => 2,
            Status::Degraded => 3,
            Status::Overloaded => 4,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(Status::Ok),
            2 => Some(Status::Error),
            3 => Some(Status::Degraded),
            4 => Some(Status::Overloaded),
            _ => None,
        }
    }

    /// The process exit code this status maps to under the wg-fault
    /// contract (0 clean, 2 unusable, 3 degraded).
    pub fn exit_code(self) -> i32 {
        match self {
            Status::Ok => 0,
            Status::Error | Status::Overloaded => 2,
            Status::Degraded => 3,
        }
    }
}

/// Writes one frame: length prefix plus `body`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| std::io::Error::other("frame body exceeds u32 length"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body. Returns `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the connection between requests).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None), // clean EOF before a new frame
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_len {
        return Err(std::io::Error::other(format!(
            "frame of {len} bytes exceeds the {max_len}-byte limit"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Encodes a query response payload: fingerprint, row count, rows.
pub fn encode_rows(fingerprint: u64, rows: &[(u64, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + rows.len() * 16);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for &(k, score) in rows {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&score.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a query response payload produced by [`encode_rows`].
pub fn decode_rows(payload: &[u8]) -> Option<(u64, Vec<(u64, f64)>)> {
    let fp = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let n = u32::from_le_bytes(payload.get(8..12)?.try_into().ok()?) as usize;
    let body = payload.get(12..)?;
    if body.len() != n * 16 {
        return None;
    }
    let mut rows = Vec::with_capacity(n);
    for chunk in body.chunks_exact(16) {
        let k = u64::from_le_bytes(chunk[..8].try_into().ok()?);
        let bits = u64::from_le_bytes(chunk[8..].try_into().ok()?);
        rows.push((k, f64::from_bits(bits)));
    }
    Some((fp, rows))
}

/// Encodes an adjacency-list response payload.
pub fn encode_pages(pages: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + pages.len() * 4);
    out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    for &p in pages {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Decodes an adjacency-list response payload.
pub fn decode_pages(payload: &[u8]) -> Option<Vec<u32>> {
    let n = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let body = payload.get(4..)?;
    if body.len() != n * 4 {
        return None;
    }
    Some(
        body.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip() {
        let rows = vec![(3u64, 0.25f64), (9, -1.5), (u64::MAX, f64::MIN_POSITIVE)];
        let enc = encode_rows(0xdead_beef, &rows);
        let (fp, back) = decode_rows(&enc).unwrap();
        assert_eq!(fp, 0xdead_beef);
        assert_eq!(back, rows);
    }

    #[test]
    fn pages_round_trip() {
        let pages = vec![0u32, 7, u32::MAX];
        assert_eq!(decode_pages(&encode_pages(&pages)).unwrap(), pages);
        assert_eq!(decode_pages(&encode_pages(&[])).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let enc = encode_rows(1, &[(1, 1.0)]);
        assert!(decode_rows(&enc[..enc.len() - 1]).is_none());
        assert!(decode_rows(&[]).is_none());
        let enc = encode_pages(&[1, 2]);
        assert!(decode_pages(&enc[..enc.len() - 1]).is_none());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        assert!(read_frame(&mut &buf[..], 10).is_err());
    }

    #[test]
    fn status_bytes_match_exit_contract() {
        for s in [
            Status::Ok,
            Status::Error,
            Status::Degraded,
            Status::Overloaded,
        ] {
            assert_eq!(Status::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(Status::Ok.exit_code(), 0);
        assert_eq!(Status::Error.exit_code(), 2);
        assert_eq!(Status::Degraded.exit_code(), 3);
        assert_eq!(Status::from_u8(1), None);
    }
}
