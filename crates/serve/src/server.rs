//! The server: shared context, bounded admission queue, worker pool.

use crate::proto::{self, Status};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use wg_obs::{record_span, Stopwatch};
use wg_query::queries::{
    query1, query2, query3, query4, query5, query6, QueryEnv, QueryOutput, Workload,
};
use wg_query::{obsrun, DomainTable, GraphRep, PageRankIndex, TextIndex};

/// Everything a request needs, shared (immutably) by every worker. The
/// two `GraphRep` handles are the refactor's product: `&self` navigation
/// over one decoded representation, safe to hit from any thread.
pub struct ServeContext {
    /// The inverted phrase index.
    pub text: TextIndex,
    /// The PageRank index.
    pub pagerank: PageRankIndex,
    /// The domain table.
    pub domains: DomainTable,
    /// The discovered workload whose parameters opcodes 1–6 execute.
    pub workload: Workload,
    /// Forward-graph representation.
    pub fwd: Box<dyn GraphRep>,
    /// Transpose (backlink) representation.
    pub back: Box<dyn GraphRep>,
    /// Number of pages (bounds-checks raw navigation requests).
    pub num_pages: u32,
}

impl ServeContext {
    /// The borrowed query environment over this context's indexes.
    pub fn env(&self) -> QueryEnv<'_> {
        QueryEnv {
            text: &self.text,
            pagerank: &self.pagerank,
            domains: &self.domains,
        }
    }

    /// Runs workload query `n` (1–6) against the shared representations.
    pub fn run_query(&self, n: u8) -> wg_query::Result<QueryOutput> {
        let env = self.env();
        let w = &self.workload;
        match n {
            1 => query1(env, self.fwd.as_ref(), &w.q1),
            2 => query2(env, self.fwd.as_ref(), &w.q2),
            3 => query3(env, self.fwd.as_ref(), self.back.as_ref(), &w.q3),
            4 => query4(env, self.back.as_ref(), &w.q4),
            5 => query5(env, self.fwd.as_ref(), &w.q5),
            6 => query6(env, self.fwd.as_ref(), &w.q6),
            _ => Err(wg_query::QueryError::BadQuery("opcode out of range")),
        }
    }

    /// Merged degradation report across both representations; `None` when
    /// neither scheme supports graceful degradation.
    pub fn degraded(&self) -> Option<wg_snode::DegradedReport> {
        match (self.fwd.degraded(), self.back.degraded()) {
            (Some(f), Some(b)) => Some(wg_snode::DegradedReport {
                quarantined_supernodes: f.quarantined_supernodes + b.quarantined_supernodes,
                skipped_edges: f.skipped_edges + b.skipped_edges,
                retries: f.retries + b.retries,
            }),
            (one, other) => one.or(other),
        }
    }

    /// `Degraded` when any supernode is quarantined, else `Ok` — the
    /// per-response analogue of the wg-fault exit contract.
    fn answer_status(&self) -> Status {
        match self.degraded() {
            Some(d) if !d.is_clean() => Status::Degraded,
            _ => Status::Ok,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (connection owners). Default: one per core.
    pub workers: usize,
    /// Admission-queue bound: connections accepted but not yet claimed by
    /// a worker. Beyond it, new connections get `Overloaded` and close.
    pub queue_cap: usize,
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral; read it back from
    /// [`Server::port`]).
    pub port: u16,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            // Floor of 2: a worker owns its connection until EOF, so a
            // single-worker server can never serve two held-open
            // connections — a foot-gun on one-core machines.
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().max(2)),
            queue_cap: 256,
            port: 0,
        }
    }
}

/// Cumulative request accounting, shared by all workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted into the admission queue.
    pub connections: AtomicU64,
    /// Requests answered (any status).
    pub requests: AtomicU64,
    /// Responses carrying `Status::Degraded`.
    pub degraded: AtomicU64,
    /// Responses carrying `Status::Error`.
    pub errors: AtomicU64,
    /// Connections refused with `Status::Overloaded`.
    pub overloaded: AtomicU64,
}

/// Bounded blocking MPMC queue of accepted connections.
struct Admission {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    cap: usize,
    closed: AtomicBool,
}

impl Admission {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap: cap.max(1),
            closed: AtomicBool::new(false),
        }
    }

    /// Non-blocking enqueue; a full queue hands the stream back so the
    /// acceptor can refuse it explicitly.
    fn push(&self, s: TcpStream) -> Result<(), TcpStream> {
        let mut q = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if q.len() >= self.cap {
            return Err(s);
        }
        q.push_back(s);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            q = match self.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// A running server. Dropping it without [`Server::shutdown`] detaches the
/// threads (the process usually exits right after); call `shutdown` for a
/// clean join.
pub struct Server {
    port: u16,
    shutdown: Arc<AtomicBool>,
    queue: Arc<Admission>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the acceptor and worker threads.
    pub fn start(ctx: Arc<ServeContext>, cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Admission::new(cfg.queue_cap));
        let stats = Arc::new(ServerStats::default());

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&ctx);
            let stats = Arc::clone(&stats);
            workers.push(std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    serve_connection(&ctx, &stats, stream);
                }
            }));
        }

        let acceptor = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    match queue.push(stream) {
                        Ok(()) => {
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(refused) => {
                            stats.overloaded.fetch_add(1, Ordering::Relaxed);
                            refuse_overloaded(refused);
                        }
                    }
                }
            })
        };
        Ok(Server {
            port,
            shutdown,
            queue,
            stats,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) -> Arc<ServerStats> {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        drop(TcpStream::connect(("127.0.0.1", self.port)));
        if let Some(a) = self.acceptor.take() {
            drop(a.join());
        }
        self.queue.close();
        for w in self.workers.drain(..) {
            drop(w.join());
        }
        Arc::clone(&self.stats)
    }
}

/// Serves every request of one connection, then returns the worker to the
/// admission queue.
fn serve_connection(ctx: &ServeContext, stats: &ServerStats, mut stream: TcpStream) {
    drop(stream.set_nodelay(true));
    loop {
        let body = match proto::read_frame(&mut stream, proto::MAX_REQUEST) {
            Ok(Some(b)) => b,
            Ok(None) | Err(_) => return, // clean close or broken peer
        };
        let sw = Stopwatch::start();
        let (status, payload, label) = dispatch(ctx, &body);
        record_span(&format!("serve.{label}"), "serve", &sw);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            Status::Degraded => {
                stats.degraded.fetch_add(1, Ordering::Relaxed);
            }
            Status::Error => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let mut frame = Vec::with_capacity(1 + payload.len());
        frame.push(status.as_u8());
        frame.extend_from_slice(&payload);
        if proto::write_frame(&mut stream, &frame).is_err() {
            return;
        }
    }
}

/// Executes one request body; returns `(status, payload, span label)`.
fn dispatch(ctx: &ServeContext, body: &[u8]) -> (Status, Vec<u8>, &'static str) {
    const Q_LABELS: [&str; 6] = ["q1", "q2", "q3", "q4", "q5", "q6"];
    let Some(&op) = body.first() else {
        return (Status::Error, b"empty request".to_vec(), "bad");
    };
    match op {
        proto::OP_PING => (Status::Ok, Vec::new(), "ping"),
        n @ 1..=6 => {
            let label = Q_LABELS[usize::from(n) - 1];
            match ctx.run_query(n) {
                Ok(out) => {
                    let fp = obsrun::fingerprint_rows(&out.rows);
                    (
                        ctx.answer_status(),
                        proto::encode_rows(fp, &out.rows),
                        label,
                    )
                }
                Err(e) => (Status::Error, e.to_string().into_bytes(), label),
            }
        }
        proto::OP_OUT_NEIGHBORS => {
            let Some(raw) = body.get(1..5).and_then(|b| <[u8; 4]>::try_from(b).ok()) else {
                return (
                    Status::Error,
                    b"out_neighbors payload must be a u32 page id".to_vec(),
                    "nav",
                );
            };
            let p = u32::from_le_bytes(raw);
            if p >= ctx.num_pages {
                return (Status::Error, b"page id out of range".to_vec(), "nav");
            }
            match ctx.fwd.out_neighbors(p) {
                Ok(list) => (ctx.answer_status(), proto::encode_pages(&list), "nav"),
                Err(e) => (Status::Error, e.to_string().into_bytes(), "nav"),
            }
        }
        _ => (Status::Error, b"unknown opcode".to_vec(), "bad"),
    }
}

/// Writes an `Overloaded` response on a connection the admission queue
/// refused, then drops it.
pub fn refuse_overloaded(mut stream: TcpStream) {
    let frame = [Status::Overloaded.as_u8()];
    drop(stream.set_nodelay(true));
    drop(proto::write_frame(&mut stream, &frame));
    drop(stream.flush());
}
