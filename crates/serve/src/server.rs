//! The server: shared context, bounded admission queue, worker pool.

use crate::proto::{self, Status};
use crate::telemetry::{ServeTelemetry, NUM_OPS};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use wg_obs::{
    record_span_args, stage_add, stage_scope_begin, stage_scope_end, telemetry_enabled, Stage,
    Stopwatch,
};
use wg_query::queries::{
    query1, query2, query3, query4, query5, query6, QueryEnv, QueryOutput, Workload,
};
use wg_query::{obsrun, DomainTable, GraphRep, PageRankIndex, TextIndex};

/// Everything a request needs, shared (immutably) by every worker. The
/// two `GraphRep` handles are the refactor's product: `&self` navigation
/// over one decoded representation, safe to hit from any thread.
pub struct ServeContext {
    /// The inverted phrase index.
    pub text: TextIndex,
    /// The PageRank index.
    pub pagerank: PageRankIndex,
    /// The domain table.
    pub domains: DomainTable,
    /// The discovered workload whose parameters opcodes 1–6 execute.
    pub workload: Workload,
    /// Forward-graph representation.
    pub fwd: Box<dyn GraphRep>,
    /// Transpose (backlink) representation.
    pub back: Box<dyn GraphRep>,
    /// Number of pages (bounds-checks raw navigation requests).
    pub num_pages: u32,
}

impl ServeContext {
    /// The borrowed query environment over this context's indexes.
    pub fn env(&self) -> QueryEnv<'_> {
        QueryEnv {
            text: &self.text,
            pagerank: &self.pagerank,
            domains: &self.domains,
        }
    }

    /// Runs workload query `n` (1–6) against the shared representations.
    pub fn run_query(&self, n: u8) -> wg_query::Result<QueryOutput> {
        let env = self.env();
        let w = &self.workload;
        match n {
            1 => query1(env, self.fwd.as_ref(), &w.q1),
            2 => query2(env, self.fwd.as_ref(), &w.q2),
            3 => query3(env, self.fwd.as_ref(), self.back.as_ref(), &w.q3),
            4 => query4(env, self.back.as_ref(), &w.q4),
            5 => query5(env, self.fwd.as_ref(), &w.q5),
            6 => query6(env, self.fwd.as_ref(), &w.q6),
            _ => Err(wg_query::QueryError::BadQuery("opcode out of range")),
        }
    }

    /// Merged degradation report across both representations; `None` when
    /// neither scheme supports graceful degradation.
    pub fn degraded(&self) -> Option<wg_snode::DegradedReport> {
        match (self.fwd.degraded(), self.back.degraded()) {
            (Some(f), Some(b)) => Some(wg_snode::DegradedReport {
                quarantined_supernodes: f.quarantined_supernodes + b.quarantined_supernodes,
                skipped_edges: f.skipped_edges + b.skipped_edges,
                retries: f.retries + b.retries,
            }),
            (one, other) => one.or(other),
        }
    }

    /// `Degraded` when any supernode is quarantined, else `Ok` — the
    /// per-response analogue of the wg-fault exit contract.
    fn answer_status(&self) -> Status {
        match self.degraded() {
            Some(d) if !d.is_clean() => Status::Degraded,
            _ => Status::Ok,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (connection owners). Default: one per core.
    pub workers: usize,
    /// Admission-queue bound: connections accepted but not yet claimed by
    /// a worker. Beyond it, new connections get `Overloaded` and close.
    pub queue_cap: usize,
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral; read it back from
    /// [`Server::port`]).
    pub port: u16,
    /// Slow-query threshold in microseconds; requests at or above it are
    /// logged to stderr as JSON and retained in the slowlog ring. 0
    /// disables the slowlog.
    pub slowlog_us: u64,
    /// Service telemetry (per-stage attribution, rolling latency windows,
    /// lock contention timing). `Server::start` raises or lowers the
    /// **process-wide** [`wg_obs::telemetry_enabled`] flag to match, so
    /// servers sharing a process should agree on this setting.
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            // Floor of 2: a worker owns its connection until EOF, so a
            // single-worker server can never serve two held-open
            // connections — a foot-gun on one-core machines.
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().max(2)),
            queue_cap: 256,
            port: 0,
            slowlog_us: 0,
            telemetry: true,
        }
    }
}

/// Cumulative request accounting, shared by all workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted into the admission queue.
    pub connections: AtomicU64,
    /// Requests answered (any status).
    pub requests: AtomicU64,
    /// Responses carrying `Status::Degraded`.
    pub degraded: AtomicU64,
    /// Responses carrying `Status::Error`.
    pub errors: AtomicU64,
    /// Connections refused with `Status::Overloaded`.
    pub overloaded: AtomicU64,
}

/// Bounded blocking MPMC queue of accepted connections. Each entry
/// carries the stopwatch started at admission, so the claiming worker can
/// attribute the queue wait to the connection's first request.
struct Admission {
    inner: Mutex<VecDeque<(TcpStream, Stopwatch)>>,
    ready: Condvar,
    cap: usize,
    closed: AtomicBool,
}

impl Admission {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap: cap.max(1),
            closed: AtomicBool::new(false),
        }
    }

    /// Non-blocking enqueue; a full queue hands the stream back so the
    /// acceptor can refuse it explicitly.
    fn push(&self, s: TcpStream) -> Result<(), TcpStream> {
        let mut q = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if q.len() >= self.cap {
            return Err(s);
        }
        q.push_back((s, Stopwatch::start()));
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue; `None` once closed and drained. Returns the
    /// stream and its admission-queue wait in nanoseconds.
    fn pop(&self) -> Option<(TcpStream, u64)> {
        let mut q = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some((s, sw)) = q.pop_front() {
                return Some((s, sw.elapsed_ns()));
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            q = match self.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// A running server. Dropping it without [`Server::shutdown`] detaches the
/// threads (the process usually exits right after); call `shutdown` for a
/// clean join.
pub struct Server {
    port: u16,
    shutdown: Arc<AtomicBool>,
    queue: Arc<Admission>,
    stats: Arc<ServerStats>,
    telemetry: Arc<ServeTelemetry>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Everything a worker thread needs per request: the immutable context,
/// the cumulative stats, and the telemetry sink.
struct Shared {
    ctx: Arc<ServeContext>,
    stats: Arc<ServerStats>,
    tel: Arc<ServeTelemetry>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the acceptor and worker threads.
    pub fn start(ctx: Arc<ServeContext>, cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Admission::new(cfg.queue_cap));
        let stats = Arc::new(ServerStats::default());
        let telemetry = Arc::new(ServeTelemetry::new(cfg.slowlog_us));
        wg_obs::set_telemetry_enabled(cfg.telemetry);

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&queue);
            let shared = Shared {
                ctx: Arc::clone(&ctx),
                stats: Arc::clone(&stats),
                tel: Arc::clone(&telemetry),
            };
            workers.push(std::thread::spawn(move || {
                while let Some((stream, queue_wait_ns)) = queue.pop() {
                    serve_connection(&shared, stream, queue_wait_ns);
                }
            }));
        }

        let acceptor = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    match queue.push(stream) {
                        Ok(()) => {
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(refused) => {
                            stats.overloaded.fetch_add(1, Ordering::Relaxed);
                            refuse_overloaded(refused);
                        }
                    }
                }
            })
        };
        Ok(Server {
            port,
            shutdown,
            queue,
            stats,
            telemetry,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Shared telemetry handle (`wgr bench --serve` reads per-stage and
    /// per-op aggregates from it directly, without wire round-trips).
    pub fn telemetry(&self) -> Arc<ServeTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) -> Arc<ServerStats> {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        drop(TcpStream::connect(("127.0.0.1", self.port)));
        if let Some(a) = self.acceptor.take() {
            drop(a.join());
        }
        self.queue.close();
        for w in self.workers.drain(..) {
            drop(w.join());
        }
        Arc::clone(&self.stats)
    }
}

/// Serves every request of one connection, then returns the worker to the
/// admission queue.
///
/// `queue_wait_ns` — the time the connection spent in the admission queue
/// — is attributed to the **first** request's [`Stage::QueueWait`] and
/// added to its end-to-end total, so stage sums stay ≤ total by
/// construction (each stage is a disjoint slice of the total).
fn serve_connection(shared: &Shared, mut stream: TcpStream, queue_wait_ns: u64) {
    drop(stream.set_nodelay(true));
    let mut pending_queue_wait = queue_wait_ns;
    loop {
        let body = match proto::read_frame(&mut stream, proto::MAX_REQUEST) {
            Ok(Some(b)) => b,
            Ok(None) | Err(_) => return, // clean close or broken peer
        };
        let tel_on = telemetry_enabled();
        if tel_on {
            stage_scope_begin();
        }
        let sw = Stopwatch::start();
        let (status, payload, label, op_idx, fingerprint) = dispatch(shared, &body);
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            Status::Degraded => {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            }
            Status::Error => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let mut frame = Vec::with_capacity(1 + payload.len());
        frame.push(status.as_u8());
        frame.extend_from_slice(&payload);
        let write_sw = tel_on.then(Stopwatch::start);
        let write_ok = proto::write_frame(&mut stream, &frame).is_ok();
        if let Some(wsw) = write_sw {
            stage_add(Stage::RespWrite, wsw.elapsed_ns());
        }
        if tel_on {
            let mut stages = stage_scope_end();
            let mut total_ns = sw.elapsed_ns();
            if pending_queue_wait > 0 {
                stages[Stage::QueueWait.index()] = pending_queue_wait;
                total_ns = total_ns.saturating_add(pending_queue_wait);
            }
            shared
                .tel
                .record_request(op_idx, status.as_u8(), fingerprint, total_ns, &stages);
        }
        pending_queue_wait = 0;
        record_span_args(&format!("serve.{label}"), "serve", &sw, &[("op", label)]);
        if !write_ok {
            return;
        }
    }
}

/// Executes one request body; returns `(status, payload, span label,
/// telemetry op index, row fingerprint)`. The op index addresses the
/// per-op telemetry buckets ([`crate::telemetry::OP_NAMES`]); stats and
/// unknown opcodes report `NUM_OPS`, which the telemetry sink ignores.
fn dispatch(shared: &Shared, body: &[u8]) -> (Status, Vec<u8>, &'static str, usize, u64) {
    const Q_LABELS: [&str; 6] = ["q1", "q2", "q3", "q4", "q5", "q6"];
    let ctx = shared.ctx.as_ref();
    let Some(&op) = body.first() else {
        return (Status::Error, b"empty request".to_vec(), "bad", NUM_OPS, 0);
    };
    match op {
        proto::OP_PING => (Status::Ok, Vec::new(), "ping", 0, 0),
        n @ 1..=6 => {
            let label = Q_LABELS[usize::from(n) - 1];
            let op_idx = usize::from(n);
            match ctx.run_query(n) {
                Ok(out) => {
                    let fp = obsrun::fingerprint_rows(&out.rows);
                    (
                        ctx.answer_status(),
                        proto::encode_rows(fp, &out.rows),
                        label,
                        op_idx,
                        fp,
                    )
                }
                Err(e) => (Status::Error, e.to_string().into_bytes(), label, op_idx, 0),
            }
        }
        proto::OP_OUT_NEIGHBORS => {
            let Some(raw) = body.get(1..5).and_then(|b| <[u8; 4]>::try_from(b).ok()) else {
                return (
                    Status::Error,
                    b"out_neighbors payload must be a u32 page id".to_vec(),
                    "nav",
                    7,
                    0,
                );
            };
            let p = u32::from_le_bytes(raw);
            if p >= ctx.num_pages {
                return (Status::Error, b"page id out of range".to_vec(), "nav", 7, 0);
            }
            match ctx.fwd.out_neighbors(p) {
                Ok(list) => (ctx.answer_status(), proto::encode_pages(&list), "nav", 7, 0),
                Err(e) => (Status::Error, e.to_string().into_bytes(), "nav", 7, 0),
            }
        }
        proto::OP_STATS => {
            let json = shared.tel.snapshot_json(&shared.stats, ctx);
            (Status::Ok, json.into_bytes(), "stats", NUM_OPS, 0)
        }
        _ => (Status::Error, b"unknown opcode".to_vec(), "bad", NUM_OPS, 0),
    }
}

/// Writes an `Overloaded` response on a connection the admission queue
/// refused, then drops it.
pub fn refuse_overloaded(mut stream: TcpStream) {
    let frame = [Status::Overloaded.as_u8()];
    drop(stream.set_nodelay(true));
    drop(proto::write_frame(&mut stream, &frame));
    drop(stream.flush());
}
