//! Blocking client for the wg-serve protocol, used by `wgr bench
//! --serve`, the CI smoke step, and the tests.

use crate::proto::{self, Status};
use std::io;
use std::net::TcpStream;
use wg_graph::PageId;

/// One decoded query response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Response status (`Ok` or `Degraded` carry rows).
    pub status: Status,
    /// Server-computed FNV-1a fingerprint of the rows.
    pub fingerprint: u64,
    /// Result rows.
    pub rows: Vec<(u64, f64)>,
}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

fn proto_err(what: &str) -> io::Error {
    io::Error::other(format!("protocol violation: {what}"))
}

impl Client {
    /// Connects to a server on `127.0.0.1:port`.
    pub fn connect(port: u16) -> io::Result<Self> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request frame and reads the response `(status, payload)`.
    fn round_trip(&mut self, body: &[u8]) -> io::Result<(Status, Vec<u8>)> {
        proto::write_frame(&mut self.stream, body)?;
        let resp = proto::read_frame(&mut self.stream, proto::MAX_RESPONSE)?
            .ok_or_else(|| proto_err("server closed before responding"))?;
        let (&status_byte, payload) = resp
            .split_first()
            .ok_or_else(|| proto_err("empty response frame"))?;
        let status =
            Status::from_u8(status_byte).ok_or_else(|| proto_err("unknown status byte"))?;
        Ok((status, payload.to_vec()))
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<Status> {
        Ok(self.round_trip(&[proto::OP_PING])?.0)
    }

    /// Runs workload query `n` (1–6).
    pub fn query(&mut self, n: u8) -> io::Result<QueryReply> {
        let (status, payload) = self.round_trip(&[n])?;
        match status {
            Status::Ok | Status::Degraded => {
                let (fingerprint, rows) =
                    proto::decode_rows(&payload).ok_or_else(|| proto_err("bad query payload"))?;
                Ok(QueryReply {
                    status,
                    fingerprint,
                    rows,
                })
            }
            Status::Error => Err(io::Error::other(format!(
                "server error: {}",
                String::from_utf8_lossy(&payload)
            ))),
            Status::Overloaded => Err(io::Error::other("server overloaded")),
        }
    }

    /// Raw forward navigation: the sorted adjacency list of `p`.
    pub fn out_neighbors(&mut self, p: PageId) -> io::Result<(Status, Vec<PageId>)> {
        let mut body = vec![proto::OP_OUT_NEIGHBORS];
        body.extend_from_slice(&p.to_le_bytes());
        let (status, payload) = self.round_trip(&body)?;
        match status {
            Status::Ok | Status::Degraded => {
                let pages =
                    proto::decode_pages(&payload).ok_or_else(|| proto_err("bad nav payload"))?;
                Ok((status, pages))
            }
            Status::Error => Err(io::Error::other(format!(
                "server error: {}",
                String::from_utf8_lossy(&payload)
            ))),
            Status::Overloaded => Err(io::Error::other("server overloaded")),
        }
    }

    /// Fetches the live telemetry snapshot as a JSON string.
    pub fn stats(&mut self) -> io::Result<String> {
        let (status, payload) = self.round_trip(&[proto::OP_STATS])?;
        match status {
            Status::Ok => {
                String::from_utf8(payload).map_err(|_| proto_err("stats payload is not UTF-8"))
            }
            Status::Error => Err(io::Error::other(format!(
                "server error: {}",
                String::from_utf8_lossy(&payload)
            ))),
            _ => Err(proto_err("unexpected stats status")),
        }
    }

    /// Reads a bare status frame — what an admission-refused connection
    /// receives instead of an answer.
    pub fn read_refusal(&mut self) -> io::Result<Option<Status>> {
        match proto::read_frame(&mut self.stream, proto::MAX_RESPONSE)? {
            None => Ok(None),
            Some(frame) => Ok(frame.first().copied().and_then(Status::from_u8)),
        }
    }
}
