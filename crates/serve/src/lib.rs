//! wg-serve: a thread-per-core concurrent query service over the shared
//! read path.
//!
//! The shared-read-path refactor (DESIGN.md §5f) makes every opened
//! representation a `Sync` handle: decoded state is immutable, and all
//! per-call mutability (list memos, page frames, scratch buffers,
//! degradation bookkeeping) hides behind sharded or short critical-section
//! locks. This crate is the payoff: **one** decoded S-Node representation
//! (forward and transpose) serving Queries 1–6 and raw `out_neighbors`
//! navigation to any number of concurrent clients, with no per-connection
//! graph state.
//!
//! Architecture:
//!
//! * [`ServeContext`] owns the auxiliary indexes, the discovered workload,
//!   and the two [`wg_query::GraphRep`] handles, shared via `Arc` across
//!   all workers.
//! * [`Server`] binds a TCP listener; one acceptor thread feeds accepted
//!   connections into a **bounded admission queue**; a fixed pool of
//!   worker threads (default: one per core) drains it, each worker owning
//!   a connection for its whole lifetime. When the queue is full the
//!   acceptor replies `overloaded` and closes — bounded memory, explicit
//!   backpressure, no silent queueing.
//! * [`proto`] defines the length-prefixed binary frames; [`Client`] is
//!   the matching blocking client used by `wgr bench --serve`, the CI
//!   smoke step, and the tests.
//!
//! Degradation follows the wg-fault exit contract: a query answered over a
//! representation with quarantined supernodes still returns rows, but with
//! status [`proto::Status::Degraded`] (the wire analogue of exit code 3);
//! hard failures return [`proto::Status::Error`] (exit code 2).
//!
//! Observability (DESIGN.md §5g): with [`ServeConfig::telemetry`] on, every
//! request's latency is attributed to five disjoint stages (queue wait,
//! shard-lock wait, cache lookup, list decode, response write), live
//! percentiles roll over fixed request-count windows, the cache shard
//! mutexes export a contention heatmap, and the `Stats` wire op
//! ([`proto::OP_STATS`]) returns the whole snapshot as JSON — rendered
//! live by `wgr top`. See [`telemetry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use client::{Client, QueryReply};
pub use proto::Status;
pub use server::{ServeConfig, ServeContext, Server, ServerStats};
pub use telemetry::{ServeTelemetry, SlowEntry, NUM_OPS, OP_NAMES};
