//! End-to-end wg-serve tests: one shared S-Node representation serving
//! concurrent clients, with byte-identical answers to a single-threaded
//! run, plus admission-queue overload behaviour.

// Test code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;
use wg_corpus::{Corpus, CorpusConfig};
use wg_query::obsrun::fingerprint_rows;
use wg_query::queries::Workload;
use wg_query::reps::{Scheme, SchemeSet};
use wg_query::{DomainTable, PageRankIndex, TextIndex};
use wg_serve::{Client, ServeConfig, ServeContext, Server, Status};
use wg_snode::SNodeConfig;

struct Fx {
    root: std::path::PathBuf,
    graph: wg_graph::Graph,
    ctx: Arc<ServeContext>,
    /// Single-threaded reference fingerprints for q1..q6.
    reference: [u64; 6],
}

impl Drop for Fx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn setup(pages: u32, seed: u64, name: &str) -> Fx {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, seed));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut root = std::env::temp_dir();
    root.push(format!("wg_serve_{name}_{}", std::process::id()));
    let set = SchemeSet::build(
        &root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .unwrap();
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let domain_table = DomainTable::build(&corpus, &set.renumbering);
    let workload = Workload::discover(&text, &domain_table);
    let ctx = Arc::new(ServeContext {
        text,
        pagerank,
        domains: domain_table,
        workload,
        fwd: set.open(Scheme::SNode).unwrap(),
        back: set.open_transpose(Scheme::SNode).unwrap(),
        num_pages: set.graph.num_nodes(),
    });
    let mut reference = [0u64; 6];
    for (i, r) in reference.iter_mut().enumerate() {
        *r = fingerprint_rows(&ctx.run_query(i as u8 + 1).unwrap().rows);
    }
    let graph = set.graph.clone();
    Fx {
        root,
        graph,
        ctx,
        reference,
    }
}

#[test]
fn concurrent_clients_get_single_threaded_answers() {
    let f = setup(1_500, 11, "conc");
    // Explicit worker count: a worker owns a connection until EOF, so we
    // need real concurrency regardless of the host's core count.
    let cfg = ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&f.ctx), &cfg).unwrap();
    let port = server.port();

    let clients = 16;
    std::thread::scope(|s| {
        for c in 0..clients {
            let reference = f.reference;
            let graph = &f.graph;
            s.spawn(move || {
                let mut cl = Client::connect(port).unwrap();
                assert_eq!(cl.ping().unwrap(), Status::Ok);
                for n in 1..=6u8 {
                    let reply = cl.query(n).unwrap();
                    assert_eq!(reply.status, Status::Ok, "client {c} q{n}");
                    assert_eq!(
                        reply.fingerprint,
                        reference[usize::from(n) - 1],
                        "client {c} q{n} fingerprint drifted under concurrency"
                    );
                    assert_eq!(reply.fingerprint, fingerprint_rows(&reply.rows));
                }
                // Raw navigation answers must equal ground truth.
                for p in (0..graph.num_nodes()).step_by(211 + c) {
                    let (status, list) = cl.out_neighbors(p).unwrap();
                    assert_eq!(status, Status::Ok);
                    assert_eq!(list, graph.neighbors(p), "client {c} page {p}");
                }
            });
        }
    });

    let stats = server.shutdown();
    let served = stats.requests.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        served >= clients as u64 * 7,
        "expected at least {} requests, served {served}",
        clients * 7
    );
    assert_eq!(stats.errors.load(std::sync::atomic::Ordering::Relaxed), 0);
    assert_eq!(stats.degraded.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn admission_queue_refuses_when_full() {
    let f = setup(400, 3, "overload");
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&f.ctx), &cfg).unwrap();
    let port = server.port();

    // Occupy the only worker: a served connection held open.
    let mut busy = Client::connect(port).unwrap();
    assert_eq!(busy.ping().unwrap(), Status::Ok);

    // One connection fits the queue; the ones after it must be refused
    // with an explicit Overloaded frame, not a silent reset.
    let queued = Client::connect(port).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut refused = 0;
    for _ in 0..3 {
        let mut extra = Client::connect(port).unwrap();
        if extra.read_refusal().unwrap() == Some(Status::Overloaded) {
            refused += 1;
        }
    }
    assert!(refused >= 2, "expected refusals beyond the queue bound");

    // Close our connections before shutdown: workers drain in-flight
    // connections to EOF, so a held-open client would block the join.
    drop(busy);
    drop(queued);
    let stats = server.shutdown();
    assert!(
        stats.overloaded.load(std::sync::atomic::Ordering::Relaxed) >= 2,
        "overload counter must record the refusals"
    );
}

/// Extracts the first `"key":<digits>` value after `at` in `json`.
fn field_u64(json: &str, key: &str, at: usize) -> u64 {
    let pat = format!("\"{key}\":");
    let i = json[at..].find(&pat).unwrap() + at + pat.len();
    json[i..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Per-op cumulative counts, shard traffic sum, and telemetry request
/// count from one Stats snapshot.
fn digest(json: &str) -> (u64, [u64; 8], u64) {
    let requests = field_u64(json, "requests", json.find("\"telemetry\":").unwrap());
    let mut ops = [0u64; 8];
    for (i, name) in ["ping", "q1", "q2", "q3", "q4", "q5", "q6", "nav"]
        .iter()
        .enumerate()
    {
        let at = json.find(&format!("\"op\":\"{name}\"")).unwrap();
        ops[i] = field_u64(json, "count", at);
    }
    let shard_traffic = json
        .lines()
        .filter(|l| l.contains("\"graph\":"))
        .map(|l| field_u64(l, "hits", 0) + field_u64(l, "misses", 0))
        .sum();
    (requests, ops, shard_traffic)
}

#[test]
fn stats_op_snapshot_is_monotonic_and_complete() {
    let f = setup(800, 7, "stats");
    // Telemetry is on by default; slowlog everything so the ring fills.
    let cfg = ServeConfig {
        workers: 4,
        slowlog_us: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&f.ctx), &cfg).unwrap();
    let port = server.port();

    let mut cl = Client::connect(port).unwrap();
    assert_eq!(cl.ping().unwrap(), Status::Ok);
    for n in 1..=6u8 {
        assert_eq!(
            cl.query(n).unwrap().fingerprint,
            f.reference[usize::from(n) - 1]
        );
    }
    for p in (0..f.graph.num_nodes()).step_by(97) {
        cl.out_neighbors(p).unwrap();
    }
    let snap1 = cl.stats().unwrap();

    // Completeness: every op, every stage, and the full shard heatmap of
    // both graphs must be present in one snapshot.
    for op in ["ping", "q1", "q2", "q3", "q4", "q5", "q6", "nav"] {
        assert!(
            snap1.contains(&format!("\"op\":\"{op}\"")),
            "missing op {op}"
        );
    }
    for stage in [
        "queue_wait",
        "shard_lock",
        "cache_lookup",
        "list_decode",
        "resp_write",
    ] {
        assert!(
            snap1.contains(&format!("\"stage\":\"{stage}\"")),
            "missing stage {stage}"
        );
        assert!(
            snap1.contains(&format!("\"{stage}\":")),
            "missing per-op stage key {stage}"
        );
    }
    for graph in ["fwd", "back"] {
        for shard in 0..8 {
            assert!(
                snap1
                    .lines()
                    .any(|l| l.contains(&format!("\"graph\":\"{graph}\""))
                        && l.contains(&format!("\"shard\":{shard},"))),
                "missing {graph} shard {shard}"
            );
        }
    }

    // The queries exercised the sharded cache under telemetry: the stage
    // distributions and the heatmap must have actually observed traffic.
    let lookup_at = snap1.find("\"stage\":\"cache_lookup\"").unwrap();
    assert!(
        field_u64(&snap1, "count", lookup_at) > 0,
        "no cache lookups attributed"
    );
    let (req1, ops1, shards1) = digest(&snap1);
    assert!(req1 > 0);
    assert!(shards1 > 0, "shard heatmap saw no traffic");
    assert!(
        ops1.iter().all(|&c| c > 0),
        "every op was exercised: {ops1:?}"
    );

    // More traffic, then a second snapshot: every cumulative quantity
    // must be monotonic (rolling windows may expire, counts may not).
    for n in 1..=6u8 {
        cl.query(n).unwrap();
    }
    cl.ping().unwrap();
    cl.out_neighbors(0).unwrap();
    let snap2 = cl.stats().unwrap();
    let (req2, ops2, shards2) = digest(&snap2);
    assert!(req2 >= req1 + 8, "telemetry request count must grow");
    for i in 0..8 {
        assert!(ops2[i] >= ops1[i], "op {i} count decreased");
    }
    assert!(ops2[1] == ops1[1] + 1, "q1 count must grow by exactly 1");
    assert!(shards2 >= shards1, "shard traffic decreased");

    // The slowlog threshold of 1 µs catches real queries.
    let slow_at = snap2.find("\"slowlog_len\":").unwrap();
    assert!(
        field_u64(&snap2, "slowlog_len", slow_at) > 0,
        "slowlog stayed empty"
    );

    drop(cl);
    server.shutdown();
}

#[test]
fn malformed_requests_get_error_status_not_a_crash() {
    let f = setup(400, 5, "badreq");
    // Two held-open connections (cl + the raw stream) need two workers.
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&f.ctx), &cfg).unwrap();
    let port = server.port();

    let mut cl = Client::connect(port).unwrap();
    // Unknown opcode → Error (client surfaces it as Err).
    let mut stream = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
    wg_serve::proto::write_frame(&mut stream, &[99]).unwrap();
    let resp = wg_serve::proto::read_frame(&mut stream, 1 << 20)
        .unwrap()
        .unwrap();
    assert_eq!(Status::from_u8(resp[0]), Some(Status::Error));
    // Out-of-range page → Error, connection stays usable for the peer.
    wg_serve::proto::write_frame(&mut stream, &{
        let mut b = vec![wg_serve::proto::OP_OUT_NEIGHBORS];
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        b
    })
    .unwrap();
    let resp = wg_serve::proto::read_frame(&mut stream, 1 << 20)
        .unwrap()
        .unwrap();
    assert_eq!(Status::from_u8(resp[0]), Some(Status::Error));
    drop(stream);

    // The server is still healthy afterwards.
    assert_eq!(cl.ping().unwrap(), Status::Ok);
    assert_eq!(cl.query(1).unwrap().fingerprint, f.reference[0]);
    drop(cl); // workers drain open connections before shutdown joins
    server.shutdown();
}
