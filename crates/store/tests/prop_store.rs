//! Property tests on the storage substrate: the B+tree must behave exactly
//! like an ordered map and the heap file like an append-only store, under
//! arbitrary operation sequences and pathological buffer budgets.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wg_store::btree::BTree;
use wg_store::buffer::BufferPool;
use wg_store::heap::HeapFile;
use wg_store::pager::Pager;
use wg_store::PAGE_SIZE;

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    // Include a counter so shrinking reruns don't collide.
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    p.push(format!(
        "wg_prop_store_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn btree_matches_ordered_map(
        ops in prop::collection::vec((0u64..5_000, any::<u64>()), 1..800),
        budget_pages in 2usize..12,
    ) {
        let path = temp_path("btree");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager, budget_pages * PAGE_SIZE);
        let mut tree = BTree::create(pool).unwrap();
        let mut model = BTreeMap::new();
        for &(k, v) in &ops {
            tree.insert(k, v).unwrap();
            model.insert(k, v);
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        // Point lookups agree (present and absent keys).
        for &(k, _) in ops.iter().take(50) {
            prop_assert_eq!(tree.get(k).unwrap(), model.get(&k).copied());
        }
        prop_assert_eq!(tree.get(9_999_999).unwrap(), None);
        // Full scan agrees in order and content.
        let mut scanned = Vec::new();
        tree.range(0, u64::MAX, |k, v| scanned.push((k, v))).unwrap();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn btree_bounded_range_scans(
        keys in prop::collection::btree_set(0u64..10_000, 1..300),
        lo in 0u64..10_000,
        width in 0u64..5_000,
    ) {
        let path = temp_path("range");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager, 8 * PAGE_SIZE);
        let mut tree = BTree::create(pool).unwrap();
        for &k in &keys {
            tree.insert(k, k * 3).unwrap();
        }
        let hi = lo + width;
        let mut got = Vec::new();
        tree.range(lo, hi, |k, v| {
            got.push(k);
            assert_eq!(v, k * 3);
        })
        .unwrap();
        let expect: Vec<u64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
        prop_assert_eq!(got, expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_rows_round_trip_in_any_order(
        rows in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2_000), 1..120),
        budget_pages in 1usize..6,
        read_order_seed in any::<u64>(),
    ) {
        let path = temp_path("heap");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager, budget_pages * PAGE_SIZE);
        let mut heap = HeapFile::create(pool);
        let ptrs: Vec<_> = rows.iter().map(|r| heap.insert(r).unwrap()).collect();
        // Read back in a shuffled order.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut s = read_order_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for &i in &order {
            prop_assert_eq!(&heap.read(ptrs[i]).unwrap(), &rows[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_handles_oversized_rows(
        sizes in prop::collection::vec(1usize..40_000, 1..12),
    ) {
        let path = temp_path("bigrows");
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager, 4 * PAGE_SIZE);
        let mut heap = HeapFile::create(pool);
        let rows: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (0..s).map(|j| ((i * 37 + j) % 251) as u8).collect())
            .collect();
        let ptrs: Vec<_> = rows.iter().map(|r| heap.insert(r).unwrap()).collect();
        for (ptr, row) in ptrs.iter().zip(&rows) {
            prop_assert_eq!(&heap.read(*ptr).unwrap(), row);
        }
        std::fs::remove_file(&path).ok();
    }
}
