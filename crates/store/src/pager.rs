//! Page-granular file manager.
//!
//! A [`Pager`] owns one file divided into [`PAGE_SIZE`] pages, addressed by
//! dense [`PageNo`]. It performs raw positioned reads/writes and tracks I/O
//! counts so experiments can report physical access statistics (the paper
//! instruments loads/unloads the same way, §4.3).

use crate::{Result, StoreError, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Index of a page within a pager's file.
pub type PageNo = u32;

/// Counters of physical page I/O, built on obs counters. Per-pager by
/// default; when metrics were enabled at construction the same events
/// also feed the global `store.pager.page_reads` / `page_writes`
/// counters (the paper's disk-cost unit, aggregated across files).
#[derive(Debug, Default)]
pub struct IoStats {
    reads: wg_obs::Counter,
    writes: wg_obs::Counter,
}

impl IoStats {
    /// Physical page reads performed.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }
    /// Physical page writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }
    /// Resets both counters.
    pub fn reset(&self) {
        self.reads.reset();
        self.writes.reset();
    }
}

/// Global page-I/O counters, resolved once per pager when metrics are on.
#[derive(Debug)]
struct GlobalIo {
    page_reads: wg_obs::Counter,
    page_writes: wg_obs::Counter,
}

impl GlobalIo {
    fn auto() -> Option<Self> {
        if !wg_obs::metrics_enabled() {
            return None;
        }
        let reg = wg_obs::global();
        Some(Self {
            page_reads: reg.counter("store.pager.page_reads"),
            page_writes: reg.counter("store.pager.page_writes"),
        })
    }
}

/// One paged file.
#[derive(Debug)]
pub struct Pager {
    file: File,
    num_pages: PageNo,
    stats: IoStats,
    global_io: Option<GlobalIo>,
    /// Stream id for simulated-disk seek accounting.
    stream: u64,
}

impl Pager {
    /// Creates (truncating) a paged file at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            num_pages: 0,
            stats: IoStats::default(),
            global_io: GlobalIo::auto(),
            stream: crate::diskmodel::new_stream(),
        })
    }

    /// Opens an existing paged file read-only-compatible (reads and writes
    /// both allowed; the file is not truncated).
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Corrupt("file length not page-aligned"));
        }
        let num_pages = (len / PAGE_SIZE as u64) as PageNo;
        Ok(Self {
            file,
            num_pages,
            stats: IoStats::default(),
            global_io: GlobalIo::auto(),
            stream: crate::diskmodel::new_stream(),
        })
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> PageNo {
        self.num_pages
    }

    /// I/O statistics for this pager.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&mut self) -> Result<PageNo> {
        let no = self.num_pages;
        let zeros = [0u8; PAGE_SIZE];
        self.write_page(no, &zeros)?;
        Ok(no)
    }

    /// Reads page `no` into `buf`. Shared-receiver: the read is positioned
    /// (no seek on the shared file cursor), so concurrent readers through
    /// one pager are safe.
    pub fn read_page(&self, no: PageNo, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        if no >= self.num_pages {
            return Err(StoreError::Corrupt("read past end of paged file"));
        }
        // Through the canonical shim: positioned, retried, injectable.
        wg_fault::read_exact_at(&self.file, buf, u64::from(no) * PAGE_SIZE as u64)?;
        crate::diskmodel::charge_read(self.stream, u64::from(no) * PAGE_SIZE as u64, PAGE_SIZE);
        self.stats.reads.inc();
        if let Some(g) = &self.global_io {
            g.page_reads.inc();
        }
        Ok(())
    }

    /// Writes `buf` to page `no`, extending the file if `no` is the next
    /// unallocated page.
    pub fn write_page(&mut self, no: PageNo, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        if no > self.num_pages {
            return Err(StoreError::Corrupt("write would leave a hole"));
        }
        self.file
            .seek(SeekFrom::Start(u64::from(no) * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        if no == self.num_pages {
            self.num_pages += 1;
        }
        self.stats.writes.inc();
        if let Some(g) = &self.global_io {
            g.page_writes.inc();
        }
        Ok(())
    }

    /// Flushes file contents to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_store_pager_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let path = temp_path("rw");
        let mut pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (0, 1));

        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(b, &page).unwrap();

        let mut back = [0u8; PAGE_SIZE];
        pager.read_page(b, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
        // Page a is still zeroed.
        pager.read_page(a, &mut back).unwrap();
        assert!(back.iter().all(|&x| x == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_contents() {
        let path = temp_path("reopen");
        {
            let mut pager = Pager::create(&path).unwrap();
            let p = pager.allocate().unwrap();
            let mut page = [7u8; PAGE_SIZE];
            page[3] = 99;
            pager.write_page(p, &page).unwrap();
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.num_pages(), 1);
        let mut back = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut back).unwrap();
        assert_eq!(back[3], 99);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_read_is_error() {
        let path = temp_path("oor");
        let pager = Pager::create(&path).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(pager.read_page(0, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn holes_are_rejected() {
        let path = temp_path("hole");
        let mut pager = Pager::create(&path).unwrap();
        let page = [0u8; PAGE_SIZE];
        assert!(pager.write_page(5, &page).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_count_physical_io() {
        let path = temp_path("stats");
        let mut pager = Pager::create(&path).unwrap();
        let p = pager.allocate().unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(p, &mut buf).unwrap();
        pager.read_page(p, &mut buf).unwrap();
        assert_eq!(pager.stats().reads(), 2);
        assert_eq!(pager.stats().writes(), 1); // from allocate
        pager.stats().reset();
        assert_eq!(pager.stats().reads(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn misaligned_file_is_rejected() {
        let path = temp_path("misalign");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
