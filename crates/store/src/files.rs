//! The uncompressed-file baseline.
//!
//! The paper's worst-performing scheme stores plain uncompressed adjacency
//! lists in files, with the page-ID and domain indexes held permanently in
//! memory (§4.3). One positioned read fetches one adjacency list; there is
//! no compression and no caching beyond what the OS provides — which is the
//! point of the baseline.

use crate::{Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use wg_graph::{Graph, PageId};

/// Uncompressed adjacency lists in a flat file, with an in-memory offset
/// index.
#[derive(Debug)]
pub struct UncompressedFileStore {
    file: File,
    /// Byte offset of each page's record; one extra entry marks the end.
    offsets: Vec<u64>,
    /// Byte length of each page's record.
    lengths: Vec<u64>,
    /// Pages per domain (the in-memory domain index).
    domain_pages: Vec<Vec<PageId>>,
    /// Number of positioned reads performed.
    read_count: AtomicU64,
    /// Global counters (`store.files.*`), present only when metrics were
    /// enabled at build time.
    counters: Option<FilesCounters>,
    /// Stream id for simulated-disk seek accounting.
    stream: u64,
}

/// Registry counters for the uncompressed-file baseline's reads.
/// `pages_fetched` counts 8 KiB pages spanned per positioned read.
#[derive(Debug)]
struct FilesCounters {
    reads: wg_obs::Counter,
    pages_fetched: wg_obs::Counter,
}

impl FilesCounters {
    fn auto() -> Option<Self> {
        if !wg_obs::metrics_enabled() {
            return None;
        }
        let reg = wg_obs::global();
        Some(Self {
            reads: reg.counter("store.files.reads"),
            pages_fetched: reg.counter("store.files.pages_fetched"),
        })
    }
}

impl UncompressedFileStore {
    /// Writes `graph` to `path` and returns a reader over it.
    ///
    /// Record format per page: `degree: u32 LE` then `degree` target ids.
    pub fn build(path: &Path, graph: &Graph, domain_of: &[u32]) -> Result<Self> {
        let layout: Vec<PageId> = (0..graph.num_nodes()).collect();
        Self::build_with_layout(path, graph, domain_of, &layout)
    }

    /// Like [`UncompressedFileStore::build`], but records are physically
    /// written in `layout` order (a permutation of the page ids — e.g.
    /// crawl order, which is how a repository's adjacency files actually
    /// arrive on disk; the resident offset index still maps ids directly).
    pub fn build_with_layout(
        path: &Path,
        graph: &Graph,
        domain_of: &[u32],
        layout: &[PageId],
    ) -> Result<Self> {
        assert_eq!(domain_of.len(), graph.num_nodes() as usize);
        assert_eq!(layout.len(), graph.num_nodes() as usize);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut offsets = vec![0u64; graph.num_nodes() as usize + 1];
        let mut lengths = vec![0u64; graph.num_nodes() as usize];
        {
            let mut w = BufWriter::new(&file);
            let mut pos = 0u64;
            for &p in layout {
                offsets[p as usize] = pos;
                let targets = graph.neighbors(p);
                let degree = u32::try_from(targets.len())
                    .map_err(|_| StoreError::Full("adjacency list exceeds u32 record header"))?;
                w.write_all(&degree.to_le_bytes())?;
                for &t in targets {
                    w.write_all(&t.to_le_bytes())?;
                }
                let len = 4 + targets.len() as u64 * 4;
                lengths[p as usize] = len;
                pos += len;
            }
            offsets[graph.num_nodes() as usize] = pos;
            w.flush()?;
        }
        file.sync_data()?;

        let num_domains = domain_of.iter().copied().max().map_or(0, |d| d + 1);
        let mut domain_pages = vec![Vec::new(); num_domains as usize];
        for (p, &d) in domain_of.iter().enumerate() {
            domain_pages[d as usize].push(p as PageId);
        }

        Ok(Self {
            file,
            offsets,
            lengths,
            domain_pages,
            read_count: AtomicU64::new(0),
            counters: FilesCounters::auto(),
            stream: crate::diskmodel::new_stream(),
        })
    }

    /// Number of pages stored.
    pub fn num_pages(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Positioned reads performed so far.
    pub fn read_count(&self) -> u64 {
        self.read_count.load(Ordering::Relaxed)
    }

    /// Fetches the adjacency list of `p` with one positioned read.
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        let idx = p as usize;
        if idx + 1 >= self.offsets.len() {
            return Err(StoreError::Corrupt("store page id out of range"));
        }
        let start = self.offsets[idx];
        let len = self.lengths[idx] as usize;
        let mut buf = vec![0u8; len];
        self.read_at(&mut buf, start)?;
        crate::diskmodel::charge_read(self.stream, start, len);
        self.read_count.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.counters {
            let page = crate::PAGE_SIZE as u64;
            let pages = if len == 0 {
                0
            } else {
                (start + len as u64 - 1) / page - start / page + 1
            };
            c.reads.inc();
            c.pages_fetched.add(pages);
        }
        if len < 4 {
            return Err(StoreError::Corrupt("record shorter than its header"));
        }
        let degree = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len != 4 + degree * 4 {
            return Err(StoreError::Corrupt("record length mismatch"));
        }
        let mut out = Vec::with_capacity(degree);
        for i in 0..degree {
            let off = 4 + i * 4;
            out.push(u32::from_le_bytes([
                buf[off],
                buf[off + 1],
                buf[off + 2],
                buf[off + 3],
            ]));
        }
        Ok(out)
    }

    /// Pages in `domain`, from the resident domain index.
    pub fn pages_in_domain(&self, domain: u32) -> &[PageId] {
        self.domain_pages
            .get(domain as usize)
            .map_or(&[], |v| v.as_slice())
    }

    /// Bytes the data file occupies.
    pub fn file_bytes(&self) -> u64 {
        self.lengths.iter().sum()
    }

    /// Bytes of the permanently-resident indexes (offset + length + domain
    /// tables).
    pub fn resident_index_bytes(&self) -> usize {
        self.offsets.len() * 8
            + self.lengths.len() * 8
            + self
                .domain_pages
                .iter()
                .map(|v| v.len() * 4 + 24)
                .sum::<usize>()
    }

    /// One positioned read through the canonical shim: portable on
    /// non-unix (seek + full-buffer read, `Interrupted` handled), short
    /// reads are errors, transient errors retried with bounded backoff.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        wg_fault::read_exact_at(&self.file, buf, offset)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_store_files_{name}_{}", std::process::id()));
        p
    }

    fn sample() -> (Graph, Vec<u32>) {
        let g = Graph::from_edges(5, [(0, 1), (0, 4), (1, 2), (3, 0), (3, 1), (3, 2), (3, 4)]);
        (g, vec![0, 0, 1, 1, 2])
    }

    #[test]
    fn lists_round_trip() {
        let path = temp("rt");
        let (g, doms) = sample();
        let store = UncompressedFileStore::build(&path, &g, &doms).unwrap();
        for p in 0..g.num_nodes() {
            assert_eq!(store.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        assert_eq!(store.num_pages(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lists_are_fine() {
        let path = temp("empty");
        let g = Graph::from_edges(3, []);
        let store = UncompressedFileStore::build(&path, &g, &[0, 0, 0]).unwrap();
        for p in 0..3 {
            assert!(store.out_neighbors(p).unwrap().is_empty());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn domain_index_contents() {
        let path = temp("dom");
        let (g, doms) = sample();
        let store = UncompressedFileStore::build(&path, &g, &doms).unwrap();
        assert_eq!(store.pages_in_domain(0), &[0, 1]);
        assert_eq!(store.pages_in_domain(1), &[2, 3]);
        assert_eq!(store.pages_in_domain(2), &[4]);
        assert!(store.pages_in_domain(7).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_size_is_exactly_uncompressed() {
        let path = temp("size");
        let (g, doms) = sample();
        let store = UncompressedFileStore::build(&path, &g, &doms).unwrap();
        // 5 headers (4 bytes) + 7 edges (4 bytes) = 48 bytes.
        assert_eq!(store.file_bytes(), 5 * 4 + 7 * 4);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), store.file_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_page_is_error() {
        let path = temp("oob");
        let (g, doms) = sample();
        let store = UncompressedFileStore::build(&path, &g, &doms).unwrap();
        assert!(store.out_neighbors(5).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_count_tracks_accesses() {
        let path = temp("count");
        let (g, doms) = sample();
        let store = UncompressedFileStore::build(&path, &g, &doms).unwrap();
        store.out_neighbors(0).unwrap();
        store.out_neighbors(3).unwrap();
        assert_eq!(store.read_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
