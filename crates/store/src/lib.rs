//! Storage substrate for the baseline Web-graph representations.
//!
//! The paper compares the S-Node representation against, among others, a
//! **relational database** (PostgreSQL storing adjacency lists as rows,
//! B-tree indexed) and **uncompressed files** of adjacency lists. Neither is
//! available as a reusable in-process component, so this crate builds the
//! required machinery from scratch:
//!
//! * [`pager`] — a page-granular file manager (8 KiB pages).
//! * [`buffer`] — a clock (second-chance) buffer pool with a byte budget,
//!   standing in for PostgreSQL's `shared_buffers` so the §4.3 memory caps
//!   apply to the relational baseline the way the paper applied them.
//! * [`btree`] — an on-disk B+tree (`u64 → u64`) used for the page-ID and
//!   domain indexes.
//! * [`heap`] — slotted heap pages with overflow chains for rows larger
//!   than a page (high in-degree pages in the transpose graph).
//! * [`relational`] — the PostgreSQL-substitute graph store built on the
//!   above.
//! * [`files`] — the plain uncompressed-file baseline: raw `u32` adjacency
//!   arrays with an in-memory offset index, one `pread` per list access.
//! * [`region`] — shared immutable byte regions, the safe `mmap` stand-in
//!   behind the S-Node zero-copy resident read path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod diskmodel;
pub mod files;
pub mod heap;
pub mod pager;
pub mod region;
pub mod relational;

pub use region::{Region, RegionSlice};

/// Size of every on-disk page in this crate.
pub const PAGE_SIZE: usize = 8192;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural corruption detected in a page or index.
    Corrupt(&'static str),
    /// A fixed-capacity structure was asked to hold more than it can.
    Full(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt(w) => write!(f, "storage corruption: {w}"),
            StoreError::Full(w) => write!(f, "storage capacity exceeded: {w}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
