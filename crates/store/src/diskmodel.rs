//! Simulated disk-access cost.
//!
//! The paper's experiments ran on a 2002 dual-Pentium-III testbed whose
//! disks charged milliseconds per seek — I/O dominated query navigation
//! time, which is exactly why a representation that loads *fewer, adjacent*
//! graphs wins Figure 11. On modern NVMe with a warm page cache, positioned
//! reads cost microseconds and the comparison degenerates into a pure CPU
//! benchmark that no longer measures locality at all.
//!
//! This module restores the paper's I/O economics as a documented
//! substitution (DESIGN.md §4): every physical read in the storage layer
//! calls [`charge_read`], which busy-waits `seek + bytes/bandwidth` against
//! a configurable disk model. The default model is **off** (zero cost) so
//! unit tests and library users are unaffected; the Figure 11/12 harness
//! enables it with parameters scaled from the paper's era (down-scaled
//! latencies, identical seek-to-bandwidth *ratio*, which is what determines
//! the relative standings).

use std::sync::atomic::{AtomicU64, Ordering};
use wg_obs::Stopwatch;

/// Monotonic stream-id source (one id per open file/store).
static NEXT_STREAM: AtomicU64 = AtomicU64::new(1);

/// Last stream read from, for sequential-read detection.
static LAST_STREAM: AtomicU64 = AtomicU64::new(0);
/// End offset of the last read on that stream.
static LAST_END: AtomicU64 = AtomicU64::new(u64::MAX);

/// Allocates a stream id for a file handle (used for seek accounting).
pub fn new_stream() -> u64 {
    NEXT_STREAM.fetch_add(1, Ordering::Relaxed)
}

/// Simulated seek latency per read, in nanoseconds. 0 = no simulation.
static SEEK_NS: AtomicU64 = AtomicU64::new(0);
/// Simulated transfer rate, bytes per microsecond. 0 = infinite.
static BYTES_PER_US: AtomicU64 = AtomicU64::new(0);
/// Reads charged so far (for reporting).
static READS: AtomicU64 = AtomicU64::new(0);
/// Bytes charged so far.
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Enables the simulated disk: every read costs `seek_us` microseconds plus
/// transfer time at `mb_per_s` megabytes/second. Pass `(0, 0)` to disable.
pub fn set_disk_model(seek_us: u64, mb_per_s: u64) {
    SEEK_NS.store(seek_us * 1_000, Ordering::Relaxed);
    BYTES_PER_US.store(mb_per_s, Ordering::Relaxed); // 1 MB/s == 1 byte/µs
    reset_counters();
}

/// Resets the read/byte counters.
pub fn reset_counters() {
    READS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

/// `(reads, bytes)` charged since the last reset.
pub fn counters() -> (u64, u64) {
    (READS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

/// Charges one positioned read of `bytes` at `offset` on `stream`.
///
/// A read that continues exactly where the previous read on the same
/// stream ended pays only transfer time — **no seek**. This is the physical
/// effect the paper's linear ordering is designed around (§3.3: relevant
/// graphs are adjacent on disk and "were loaded with a minimum number of
/// disk seeks"); charging every read a full seek would erase it.
///
/// Busy-waits rather than sleeping: the simulated latencies are tens of
/// microseconds, well below reliable sleep granularity.
pub fn charge_read(stream: u64, offset: u64, bytes: usize) {
    READS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let sequential =
        LAST_STREAM.load(Ordering::Relaxed) == stream && LAST_END.load(Ordering::Relaxed) == offset;
    LAST_STREAM.store(stream, Ordering::Relaxed);
    LAST_END.store(offset + bytes as u64, Ordering::Relaxed);
    let seek = if sequential {
        0
    } else {
        SEEK_NS.load(Ordering::Relaxed)
    };
    let bpu = BYTES_PER_US.load(Ordering::Relaxed);
    if seek == 0 && (bpu == 0 || SEEK_NS.load(Ordering::Relaxed) == 0) {
        return;
    }
    let transfer_ns = (bytes as u64)
        .saturating_mul(1_000)
        .checked_div(bpu)
        .unwrap_or(0);
    let deadline = std::time::Duration::from_nanos(seek + transfer_ns);
    if deadline.is_zero() {
        return;
    }
    let start = Stopwatch::start();
    while start.elapsed() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn disabled_model_is_free_and_counts() {
        set_disk_model(0, 0);
        reset_counters();
        let stream = new_stream();
        let t0 = Instant::now();
        for i in 0..1000u64 {
            charge_read(stream, i * 100_000, 4096);
        }
        assert!(t0.elapsed().as_millis() < 50, "disabled model must be fast");
        let (reads, bytes) = counters();
        assert_eq!(reads, 1000);
        assert_eq!(bytes, 4096 * 1000);
    }

    #[test]
    fn sequential_reads_skip_the_seek() {
        set_disk_model(500, 0); // pure seek cost
        let stream = new_stream();
        charge_read(stream, 0, 4096); // position the head
        let t0 = Instant::now();
        for i in 1..41u64 {
            charge_read(stream, i * 4096, 4096); // all contiguous
        }
        let sequential = t0.elapsed();
        let t0 = Instant::now();
        for i in 0..40u64 {
            charge_read(stream, i * 1_000_000, 4096); // all scattered
        }
        let scattered = t0.elapsed();
        assert!(
            scattered > sequential * 5,
            "scattered ({scattered:?}) must dwarf sequential ({sequential:?})"
        );
        set_disk_model(0, 0);
    }

    #[test]
    fn enabled_model_charges_time() {
        set_disk_model(200, 100); // 200µs seek, 100 MB/s
        let stream = new_stream();
        let t0 = Instant::now();
        for i in 0..20u64 {
            charge_read(stream, i * 1_000_000, 8192);
        }
        // 20 × (200µs + ~82µs transfer) ≈ 5.6ms minimum.
        assert!(
            t0.elapsed().as_micros() >= 4_000,
            "model must slow reads, took {:?}",
            t0.elapsed()
        );
        set_disk_model(0, 0);
    }
}
