//! Slotted heap pages with overflow chains.
//!
//! Rows (serialised adjacency lists) are appended to slotted pages; rows
//! larger than the inline threshold spill into a chain of dedicated
//! overflow pages. This mirrors how row stores actually hold wide tuples
//! (PostgreSQL would TOAST them) — necessary here because transpose-graph
//! rows for popular pages can exceed a page.

use crate::buffer::BufferPool;
use crate::pager::PageNo;
use crate::{Result, StoreError, PAGE_SIZE};

const TYPE_HEAP: u8 = 3;
const TYPE_OVERFLOW: u8 = 4;

/// Heap page header: type(1) + pad(1) + n_slots(2) + free_off(2).
const HEAP_HEADER: usize = 6;
/// Overflow page header: type(1) + pad(1) + used(2) + next(4).
const OVF_HEADER: usize = 8;
/// Per-slot directory entry: offset(2) + len(2), stored from the page end.
const SLOT_SIZE: usize = 4;
/// Slot length marker meaning "payload is an overflow handle".
const OVERFLOW_MARK: u16 = u16::MAX;
/// Inline payload of an overflow row: total_len(4) + first_page(4).
const OVF_HANDLE: usize = 8;
/// Largest row stored inline.
const INLINE_MAX: usize = PAGE_SIZE - HEAP_HEADER - SLOT_SIZE - 8;

/// Location of a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPtr {
    /// Page holding the slot.
    pub page: PageNo,
    /// Slot index within the page.
    pub slot: u16,
}

impl RowPtr {
    /// Packs into a `u64` for storage as a B+tree value.
    pub fn to_u64(self) -> u64 {
        (u64::from(self.page) << 16) | u64::from(self.slot)
    }

    /// Unpacks from [`RowPtr::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        Self {
            page: (v >> 16) as PageNo,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// Append-only heap file of variable-length rows.
#[derive(Debug)]
pub struct HeapFile {
    pool: BufferPool,
    /// Page currently accepting inline rows (`None` before first insert).
    current: Option<PageNo>,
}

impl HeapFile {
    /// Creates an empty heap in `pool`'s file.
    pub fn create(pool: BufferPool) -> Self {
        Self {
            pool,
            current: None,
        }
    }

    /// Reopens a heap (appends will go to fresh pages).
    pub fn open(pool: BufferPool) -> Self {
        Self {
            pool,
            current: None,
        }
    }

    /// The underlying buffer pool (all pool access APIs are `&self`).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Appends a row, returning its location.
    pub fn insert(&mut self, data: &[u8]) -> Result<RowPtr> {
        if data.len() <= INLINE_MAX {
            self.insert_inline(data)
        } else {
            let (total, first) = self.write_overflow(data)?;
            let mut handle = [0u8; OVF_HANDLE];
            handle[..4].copy_from_slice(&total.to_le_bytes());
            handle[4..].copy_from_slice(&first.to_le_bytes());
            self.insert_slot(&handle, OVERFLOW_MARK)
        }
    }

    /// Reads a row back. Shared-receiver: reads go through the pool's
    /// internal lock, so concurrent readers can share one heap handle.
    pub fn read(&self, ptr: RowPtr) -> Result<Vec<u8>> {
        enum Row {
            Inline(Vec<u8>),
            Overflow { total: u32, first: PageNo },
        }
        let row = self.pool.with_page(ptr.page, |p| {
            if p[0] != TYPE_HEAP {
                return Err(StoreError::Corrupt("row pointer into non-heap page"));
            }
            let n_slots = u16::from_le_bytes([p[2], p[3]]);
            if ptr.slot >= n_slots {
                return Err(StoreError::Corrupt("slot out of range"));
            }
            let dir = PAGE_SIZE - SLOT_SIZE * (ptr.slot as usize + 1);
            let off = u16::from_le_bytes([p[dir], p[dir + 1]]) as usize;
            let len = u16::from_le_bytes([p[dir + 2], p[dir + 3]]);
            if len == OVERFLOW_MARK {
                let total = u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]);
                let first = u32::from_le_bytes([p[off + 4], p[off + 5], p[off + 6], p[off + 7]]);
                Ok(Row::Overflow { total, first })
            } else {
                Ok(Row::Inline(p[off..off + len as usize].to_vec()))
            }
        })??;
        match row {
            Row::Inline(v) => Ok(v),
            Row::Overflow { total, first } => self.read_overflow(total, first),
        }
    }

    fn insert_inline(&mut self, data: &[u8]) -> Result<RowPtr> {
        self.insert_slot(data, data.len() as u16)
    }

    /// Places `payload` in a slot whose directory length field is `len_field`
    /// (the real length, or [`OVERFLOW_MARK`]).
    fn insert_slot(&mut self, payload: &[u8], len_field: u16) -> Result<RowPtr> {
        let need = payload.len() + SLOT_SIZE;
        // Find or create a page with room.
        let current = self.current;
        let has_room = match current {
            Some(p) => self.free_space(p)? >= need,
            None => false,
        };
        let page = match current {
            Some(p) if has_room => p,
            _ => {
                let p = self.pool.allocate()?;
                self.pool.with_page_mut(p, |buf| {
                    buf.fill(0);
                    buf[0] = TYPE_HEAP;
                    buf[4..6].copy_from_slice(&(HEAP_HEADER as u16).to_le_bytes());
                })?;
                self.current = Some(p);
                p
            }
        };
        let slot = self.pool.with_page_mut(page, |p| {
            let n_slots = u16::from_le_bytes([p[2], p[3]]);
            let free_off = u16::from_le_bytes([p[4], p[5]]) as usize;
            p[free_off..free_off + payload.len()].copy_from_slice(payload);
            let dir = PAGE_SIZE - SLOT_SIZE * (n_slots as usize + 1);
            p[dir..dir + 2].copy_from_slice(&(free_off as u16).to_le_bytes());
            p[dir + 2..dir + 4].copy_from_slice(&len_field.to_le_bytes());
            p[2..4].copy_from_slice(&(n_slots + 1).to_le_bytes());
            p[4..6].copy_from_slice(&((free_off + payload.len()) as u16).to_le_bytes());
            n_slots
        })?;
        Ok(RowPtr { page, slot })
    }

    fn free_space(&mut self, page: PageNo) -> Result<usize> {
        self.pool.with_page(page, |p| {
            let n_slots = u16::from_le_bytes([p[2], p[3]]) as usize;
            let free_off = u16::from_le_bytes([p[4], p[5]]) as usize;
            let dir_start = PAGE_SIZE - SLOT_SIZE * n_slots;
            dir_start.saturating_sub(free_off)
        })
    }

    /// Writes `data` across a fresh overflow chain; returns (len, first page).
    fn write_overflow(&mut self, data: &[u8]) -> Result<(u32, PageNo)> {
        let chunk = PAGE_SIZE - OVF_HEADER;
        let mut pages = Vec::with_capacity(data.len() / chunk + 1);
        for _ in 0..data.len().div_ceil(chunk) {
            pages.push(self.pool.allocate()?);
        }
        for (i, part) in data.chunks(chunk).enumerate() {
            let next = pages.get(i + 1).copied().unwrap_or(PageNo::MAX);
            self.pool.with_page_mut(pages[i], |p| {
                p.fill(0);
                p[0] = TYPE_OVERFLOW;
                p[2..4].copy_from_slice(&(part.len() as u16).to_le_bytes());
                p[4..8].copy_from_slice(&next.to_le_bytes());
                p[OVF_HEADER..OVF_HEADER + part.len()].copy_from_slice(part);
            })?;
        }
        Ok((data.len() as u32, pages[0]))
    }

    fn read_overflow(&self, total: u32, first: PageNo) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total as usize);
        let mut page = first;
        while out.len() < total as usize {
            if page == PageNo::MAX {
                return Err(StoreError::Corrupt("overflow chain ended early"));
            }
            let next = self.pool.with_page(page, |p| {
                if p[0] != TYPE_OVERFLOW {
                    return Err(StoreError::Corrupt("bad overflow page type"));
                }
                let used = u16::from_le_bytes([p[2], p[3]]) as usize;
                let next = u32::from_le_bytes([p[4], p[5], p[6], p[7]]);
                out.extend_from_slice(&p[OVF_HEADER..OVF_HEADER + used]);
                Ok(next)
            })??;
            page = next;
        }
        if out.len() != total as usize {
            return Err(StoreError::Corrupt("overflow length mismatch"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn fresh(name: &str, budget_pages: usize) -> (HeapFile, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_store_heap_{name}_{}", std::process::id()));
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager, budget_pages * PAGE_SIZE);
        (HeapFile::create(pool), path)
    }

    #[test]
    fn small_rows_round_trip() {
        let (mut h, path) = fresh("small", 8);
        let a = h.insert(b"hello").unwrap();
        let b = h.insert(b"world!").unwrap();
        let c = h.insert(&[]).unwrap();
        assert_eq!(h.read(a).unwrap(), b"hello");
        assert_eq!(h.read(b).unwrap(), b"world!");
        assert_eq!(h.read(c).unwrap(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rows_pack_multiple_per_page() {
        let (mut h, path) = fresh("pack", 8);
        let a = h.insert(&[1u8; 100]).unwrap();
        let b = h.insert(&[2u8; 100]).unwrap();
        assert_eq!(a.page, b.page, "two small rows share a page");
        assert_ne!(a.slot, b.slot);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_overflow_starts_new_page() {
        let (mut h, path) = fresh("newpage", 16);
        let big = vec![7u8; 3000];
        let a = h.insert(&big).unwrap();
        let b = h.insert(&big).unwrap();
        let c = h.insert(&big).unwrap();
        assert_eq!(a.page, b.page);
        assert_ne!(b.page, c.page, "third 3000-byte row cannot fit page 1");
        assert_eq!(h.read(c).unwrap(), big);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_rows_use_overflow_chains() {
        let (mut h, path) = fresh("ovf", 32);
        let sizes = [INLINE_MAX + 1, PAGE_SIZE * 2 + 17, PAGE_SIZE * 5];
        let mut ptrs = Vec::new();
        let mut datas = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            let data: Vec<u8> = (0..s).map(|j| ((i * 31 + j) % 251) as u8).collect();
            ptrs.push(h.insert(&data).unwrap());
            datas.push(data);
        }
        // Interleave a small row.
        let small = h.insert(b"tiny").unwrap();
        for (p, d) in ptrs.iter().zip(&datas) {
            assert_eq!(h.read(*p).unwrap(), *d);
        }
        assert_eq!(h.read(small).unwrap(), b"tiny");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rowptr_u64_round_trip() {
        for (page, slot) in [
            (0u32, 0u16),
            (1, 2),
            (123_456, 999),
            (PageNo::MAX >> 16, 65_534),
        ] {
            let p = RowPtr { page, slot };
            assert_eq!(RowPtr::from_u64(p.to_u64()), p);
        }
    }

    #[test]
    fn many_rows_under_small_pool() {
        let (mut h, path) = fresh("many", 2);
        let mut ptrs = Vec::new();
        for i in 0..2_000u32 {
            let row = i.to_le_bytes().repeat(1 + (i % 50) as usize);
            ptrs.push((h.insert(&row).unwrap(), row));
        }
        for (p, row) in ptrs.iter().rev() {
            assert_eq!(&h.read(*p).unwrap(), row);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_slot_is_error() {
        let (mut h, path) = fresh("badslot", 4);
        let p = h.insert(b"x").unwrap();
        let bogus = RowPtr {
            page: p.page,
            slot: 99,
        };
        assert!(h.read(bogus).is_err());
        std::fs::remove_file(&path).ok();
    }
}
