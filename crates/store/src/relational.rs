//! The relational-database baseline: adjacency lists as table rows.
//!
//! The paper stores each page's adjacency list as a row in a PostgreSQL
//! table with B-tree indexes on page id and domain, letting the database's
//! buffer manager implement the experiment's memory cap (§4). This module
//! reproduces that architecture in-process:
//!
//! * a [`HeapFile`] holds one row per page: `degree: u32` followed by the
//!   target ids;
//! * a [`BTree`] maps page id → row pointer (the "page-ID index");
//! * a second [`BTree`] maps `(domain, page)` → page (the "domain index"),
//!   queried by key-range scan exactly like a composite B-tree index;
//! * every component reads through a [`BufferPool`] so the total byte
//!   budget is enforced.

use crate::btree::BTree;
use crate::buffer::{BufferPool, CacheStats};
use crate::heap::{HeapFile, RowPtr};
use crate::pager::Pager;
use crate::{Result, StoreError};
use std::path::Path;
use wg_graph::{Graph, PageId};

/// Fraction of the byte budget given to the row heap; the rest is split
/// between the two indexes.
const HEAP_SHARE: f64 = 0.6;
const PAGEID_SHARE: f64 = 0.25;

/// A disk-backed relational graph store (PostgreSQL substitute).
#[derive(Debug)]
pub struct RelationalGraphStore {
    rows: HeapFile,
    pageid_index: BTree,
    domain_index: BTree,
}

impl RelationalGraphStore {
    /// Builds the store for `graph` under `dir`, with each page's domain
    /// given by `domain_of`. `budget_bytes` caps total cached memory.
    pub fn build(
        dir: &Path,
        graph: &Graph,
        domain_of: &[u32],
        budget_bytes: usize,
    ) -> Result<Self> {
        let layout: Vec<PageId> = (0..graph.num_nodes()).collect();
        Self::build_with_layout(dir, graph, domain_of, budget_bytes, &layout)
    }

    /// Like [`RelationalGraphStore::build`], but rows are inserted (and
    /// thus heap-placed) in `layout` order — e.g. crawl order, matching how
    /// a production table would have been populated.
    pub fn build_with_layout(
        dir: &Path,
        graph: &Graph,
        domain_of: &[u32],
        budget_bytes: usize,
        layout: &[PageId],
    ) -> Result<Self> {
        assert_eq!(
            domain_of.len(),
            graph.num_nodes() as usize,
            "one domain per page required"
        );
        assert_eq!(layout.len(), graph.num_nodes() as usize);
        std::fs::create_dir_all(dir)?;
        let mut store = Self::create_files(dir, budget_bytes)?;

        for &p in layout {
            let targets = graph.neighbors(p);
            let mut row = Vec::with_capacity(4 + targets.len() * 4);
            row.extend_from_slice(&(targets.len() as u32).to_le_bytes());
            for &t in targets {
                row.extend_from_slice(&t.to_le_bytes());
            }
            let ptr = store.rows.insert(&row)?;
            store.pageid_index.insert(u64::from(p), ptr.to_u64())?;
            store
                .domain_index
                .insert(domain_key(domain_of[p as usize], p), u64::from(p))?;
        }
        store.flush()?;
        Ok(store)
    }

    /// Reopens a store previously built under `dir`.
    pub fn open(dir: &Path, budget_bytes: usize) -> Result<Self> {
        let (heap_budget, pageid_budget, domain_budget) = split_budget(budget_bytes);
        let rows = HeapFile::open(BufferPool::new(
            Pager::open(&dir.join("rows.heap"))?,
            heap_budget,
        ));
        let pageid_index = BTree::open(BufferPool::new(
            Pager::open(&dir.join("pageid.btree"))?,
            pageid_budget,
        ))?;
        let domain_index = BTree::open(BufferPool::new(
            Pager::open(&dir.join("domain.btree"))?,
            domain_budget,
        ))?;
        Ok(Self {
            rows,
            pageid_index,
            domain_index,
        })
    }

    fn create_files(dir: &Path, budget_bytes: usize) -> Result<Self> {
        let (heap_budget, pageid_budget, domain_budget) = split_budget(budget_bytes);
        let rows = HeapFile::create(BufferPool::new(
            Pager::create(&dir.join("rows.heap"))?,
            heap_budget,
        ));
        let pageid_index = BTree::create(BufferPool::new(
            Pager::create(&dir.join("pageid.btree"))?,
            pageid_budget,
        ))?;
        let domain_index = BTree::create(BufferPool::new(
            Pager::create(&dir.join("domain.btree"))?,
            domain_budget,
        ))?;
        Ok(Self {
            rows,
            pageid_index,
            domain_index,
        })
    }

    /// The adjacency list of `p` (index lookup + row fetch). Shared-receiver:
    /// both structures read through `&self` buffer pools.
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        let Some(ptr) = self.pageid_index.get(u64::from(p))? else {
            return Err(StoreError::Corrupt("page id missing from index"));
        };
        let row = self.rows.read(RowPtr::from_u64(ptr))?;
        decode_row(&row)
    }

    /// All pages in `domain`, via composite-index range scan.
    pub fn pages_in_domain(&self, domain: u32) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        self.domain_index.range(
            domain_key(domain, 0),
            domain_key(domain, PageId::MAX),
            |_, v| out.push(v as PageId),
        )?;
        Ok(out)
    }

    /// Flushes all dirty pages.
    pub fn flush(&self) -> Result<()> {
        self.rows.pool().flush()?;
        self.pageid_index.pool().flush()?;
        self.domain_index.pool().flush()
    }

    /// Drops all cached pages, cold-starting the next query run.
    pub fn clear_cache(&self) -> Result<()> {
        self.rows.pool().clear()?;
        self.pageid_index.pool().clear()?;
        self.domain_index.pool().clear()
    }

    /// Combined cache statistics across heap + indexes.
    pub fn cache_stats(&self) -> CacheStats {
        let a = self.rows.pool().stats();
        let b = self.pageid_index.pool().stats();
        let c = self.domain_index.pool().stats();
        CacheStats {
            hits: a.hits + b.hits + c.hits,
            misses: a.misses + b.misses + c.misses,
            evictions: a.evictions + b.evictions + c.evictions,
        }
    }

    /// Total bytes of the on-disk files.
    pub fn disk_bytes(&self) -> u64 {
        use crate::PAGE_SIZE;
        let pages = u64::from(self.rows.pool().num_disk_pages())
            + u64::from(self.pageid_index.pool().num_disk_pages())
            + u64::from(self.domain_index.pool().num_disk_pages());
        pages * PAGE_SIZE as u64
    }
}

/// Composite key `(domain, page)` for the domain index.
fn domain_key(domain: u32, page: PageId) -> u64 {
    (u64::from(domain) << 32) | u64::from(page)
}

fn split_budget(budget_bytes: usize) -> (usize, usize, usize) {
    let heap = (budget_bytes as f64 * HEAP_SHARE) as usize;
    let pageid = (budget_bytes as f64 * PAGEID_SHARE) as usize;
    let domain = budget_bytes.saturating_sub(heap + pageid);
    (heap, pageid, domain)
}

fn decode_row(row: &[u8]) -> Result<Vec<PageId>> {
    if row.len() < 4 {
        return Err(StoreError::Corrupt("row shorter than its header"));
    }
    let degree = u32::from_le_bytes([row[0], row[1], row[2], row[3]]) as usize;
    if row.len() != 4 + degree * 4 {
        return Err(StoreError::Corrupt("row length does not match degree"));
    }
    let mut out = Vec::with_capacity(degree);
    for i in 0..degree {
        let off = 4 + i * 4;
        out.push(u32::from_le_bytes([
            row[off],
            row[off + 1],
            row[off + 2],
            row[off + 3],
        ]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_store_rel_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_graph() -> (Graph, Vec<u32>) {
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (5, 1),
            ],
        );
        let domains = vec![0, 0, 1, 1, 1, 2];
        (g, domains)
    }

    #[test]
    fn adjacency_round_trips() {
        let dir = temp_dir("adj");
        let (g, doms) = sample_graph();
        let store = RelationalGraphStore::build(&dir, &g, &doms, 1 << 20).unwrap();
        for p in 0..g.num_nodes() {
            assert_eq!(store.out_neighbors(p).unwrap(), g.neighbors(p), "page {p}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn domain_scan_returns_members_sorted() {
        let dir = temp_dir("dom");
        let (g, doms) = sample_graph();
        let store = RelationalGraphStore::build(&dir, &g, &doms, 1 << 20).unwrap();
        assert_eq!(store.pages_in_domain(0).unwrap(), vec![0, 1]);
        assert_eq!(store.pages_in_domain(1).unwrap(), vec![2, 3, 4]);
        assert_eq!(store.pages_in_domain(2).unwrap(), vec![5]);
        assert!(store.pages_in_domain(9).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_preserves_everything() {
        let dir = temp_dir("reopen");
        let (g, doms) = sample_graph();
        {
            RelationalGraphStore::build(&dir, &g, &doms, 1 << 20).unwrap();
        }
        let store = RelationalGraphStore::open(&dir, 1 << 20).unwrap();
        for p in 0..g.num_nodes() {
            assert_eq!(store.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        assert_eq!(store.pages_in_domain(1).unwrap(), vec![2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_graph_with_tight_budget() {
        let dir = temp_dir("tight");
        // 2000 pages, ~10 links each; budget of ~8 pages of cache forces
        // heavy eviction on both build and read paths.
        let n = 2_000u32;
        let edges = (0..n).flat_map(|u| (1..=10u32).map(move |k| (u, (u + k * 37) % n)));
        let g = Graph::from_edges(n, edges);
        let doms: Vec<u32> = (0..n).map(|p| p % 13).collect();
        let store = RelationalGraphStore::build(&dir, &g, &doms, 64 * 1024).unwrap();
        for p in (0..n).step_by(173) {
            assert_eq!(store.out_neighbors(p).unwrap(), g.neighbors(p));
        }
        let d5 = store.pages_in_domain(5).unwrap();
        assert_eq!(d5.len(), (0..n).filter(|p| p % 13 == 5).count());
        let stats = store.cache_stats();
        assert!(stats.evictions > 0, "tight budget must evict");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let dir = temp_dir("cold");
        let (g, doms) = sample_graph();
        let store = RelationalGraphStore::build(&dir, &g, &doms, 1 << 20).unwrap();
        store.out_neighbors(0).unwrap();
        store.clear_cache().unwrap();
        let before = store.cache_stats();
        store.out_neighbors(0).unwrap();
        let after = store.cache_stats();
        assert!(after.misses > before.misses, "cold read must miss");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn high_degree_rows_overflow_correctly() {
        let dir = temp_dir("wide");
        // One page with 5000 out-links: the row (20 KB) spans overflow pages.
        let n = 5_001u32;
        let edges = (1..n).map(|t| (0u32, t));
        let g = Graph::from_edges(n, edges);
        let doms = vec![0u32; n as usize];
        let store = RelationalGraphStore::build(&dir, &g, &doms, 1 << 20).unwrap();
        let nb = store.out_neighbors(0).unwrap();
        assert_eq!(nb.len(), 5_000);
        assert_eq!(nb, g.neighbors(0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
