//! Clock (second-chance) buffer pool with a byte budget.
//!
//! The §4.3 experiments cap *all* schemes at a fixed amount of memory for
//! graph data. For the relational baseline the paper lets the database's
//! buffer manager handle that cap; this pool plays that role. It caches
//! whole pages, evicts with the clock algorithm, and exposes hit/miss
//! counters.
//!
//! The pool is the storage layer's interior-mutability boundary for the
//! shared read path (DESIGN.md §5f): frames, the page map, the clock hand
//! and the pager all live behind one mutex, so every access API takes
//! `&self` and a pool can sit inside a shared, `Sync` store handle.
//! Page-granular latching was considered and rejected — the pool fronts a
//! *single* file whose closures copy a few bytes out per call, so the
//! critical section is tiny and one lock per pool keeps the eviction and
//! dirty-write-back invariants trivially atomic. Statistics live in shared
//! [`wg_obs::CacheMetrics`] counters (the same struct the core graph cache
//! uses), registered as `store.buffer.*` under `--metrics`.

use crate::pager::{PageNo, Pager};
use crate::{Result, PAGE_SIZE};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use wg_obs::{stage_add, telemetry_enabled, LockMetrics, Stage, Stopwatch};

/// Cache hit/miss statistics: a point-in-time view over the pool's
/// [`wg_obs::CacheMetrics`] counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests satisfied from the pool.
    pub hits: u64,
    /// Requests that required a physical read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

/// A fixed-budget page cache in front of a [`Pager`].
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    metrics: wg_obs::CacheMetrics,
    /// Contention profile of the single pool mutex (`store.buffer.lock`
    /// under `--metrics`; wait/hold timing is telemetry-gated).
    lock_metrics: LockMetrics,
}

/// The mutable state: everything the clock algorithm touches.
#[derive(Debug)]
struct PoolInner {
    pager: Pager,
    /// Frame storage; each frame holds exactly one page.
    frames: Vec<Frame>,
    /// page → frame index.
    map: HashMap<PageNo, usize>,
    /// Clock hand for second-chance eviction.
    hand: usize,
}

#[derive(Debug)]
struct Frame {
    page_no: PageNo,
    data: Box<[u8; PAGE_SIZE]>,
    referenced: bool,
    dirty: bool,
    occupied: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            page_no: 0,
            data: Box::new([0u8; PAGE_SIZE]),
            referenced: false,
            dirty: false,
            occupied: false,
        }
    }
}

impl BufferPool {
    /// Creates a pool over `pager` holding at most `budget_bytes` of page
    /// data (at least one page).
    pub fn new(pager: Pager, budget_bytes: usize) -> Self {
        let capacity = (budget_bytes / PAGE_SIZE).max(1);
        Self {
            inner: Mutex::new(PoolInner {
                pager,
                frames: (0..capacity).map(|_| Frame::empty()).collect(),
                map: HashMap::with_capacity(capacity),
                hand: 0,
            }),
            metrics: wg_obs::CacheMetrics::auto("store.buffer"),
            lock_metrics: LockMetrics::auto("store.buffer.lock"),
        }
    }

    /// Acquires the pool mutex; when telemetry is on, the hot read path's
    /// wait time is counted against [`Stage::ShardLock`] (the pool lock is
    /// the storage layer's analogue of a cache shard mutex).
    fn lock_inner(&self) -> MutexGuard<'_, PoolInner> {
        if !telemetry_enabled() {
            return self.inner.lock();
        }
        self.lock_metrics.acquisitions.inc();
        if let Some(g) = self.inner.try_lock() {
            return g;
        }
        self.lock_metrics.contended.inc();
        let sw = Stopwatch::start();
        let g = self.inner.lock();
        let ns = sw.elapsed_ns();
        self.lock_metrics.wait_ns.add(ns);
        stage_add(Stage::ShardLock, ns);
        g
    }

    /// Point-in-time contention profile of the pool mutex.
    pub fn lock_stats(&self) -> wg_obs::LockStats {
        self.lock_metrics.stats()
    }

    /// Number of frames in the pool.
    pub fn capacity(&self) -> usize {
        self.lock_inner().frames.len()
    }

    /// Cache statistics so far (a view over the obs counters).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            evictions: self.metrics.evictions.get(),
        }
    }

    /// Resets cache statistics.
    pub fn reset_stats(&self) {
        self.metrics.reset();
    }

    /// Number of pages in the underlying file.
    pub fn num_disk_pages(&self) -> PageNo {
        self.lock_inner().pager.num_pages()
    }

    /// Allocates a fresh page (bypasses the cache; the new page is all
    /// zeros on disk and becomes cached on first touch).
    pub fn allocate(&self) -> Result<PageNo> {
        self.lock_inner().pager.allocate()
    }

    /// Reads page `no` through the cache and passes it to `f`. The closure
    /// runs under the pool lock — it must not call back into the pool.
    pub fn with_page<R>(&self, no: PageNo, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let mut inner = self.lock_inner();
        let _held = self.lock_metrics.held();
        let idx = inner.fetch(no, &self.metrics)?;
        inner.frames[idx].referenced = true;
        Ok(f(&inner.frames[idx].data))
    }

    /// Reads page `no` through the cache, lets `f` mutate it, and marks the
    /// frame dirty. The closure runs under the pool lock.
    pub fn with_page_mut<R>(
        &self,
        no: PageNo,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let mut inner = self.lock_inner();
        let _held = self.lock_metrics.held();
        let idx = inner.fetch(no, &self.metrics)?;
        inner.frames[idx].referenced = true;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Writes all dirty frames back and syncs the file.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.lock_inner();
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].occupied && inner.frames[idx].dirty {
                let no = inner.frames[idx].page_no;
                // Split-borrow through the struct: frame data and pager.
                let PoolInner { pager, frames, .. } = &mut *inner;
                pager.write_page(no, &frames[idx].data)?;
                inner.frames[idx].dirty = false;
            }
        }
        inner.pager.sync()
    }

    /// Drops every cached page (writing dirty ones back first). Used by the
    /// experiments to cold-start a query run.
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        let mut inner = self.lock_inner();
        for f in &mut inner.frames {
            f.occupied = false;
            f.referenced = false;
        }
        inner.map.clear();
        Ok(())
    }
}

impl PoolInner {
    /// Ensures `no` is resident and returns its frame index.
    fn fetch(&mut self, no: PageNo, metrics: &wg_obs::CacheMetrics) -> Result<usize> {
        if let Some(&idx) = self.map.get(&no) {
            metrics.hits.inc();
            return Ok(idx);
        }
        metrics.misses.inc();
        let idx = self.victim()?;
        if self.frames[idx].occupied {
            if self.frames[idx].dirty {
                self.pager
                    .write_page(self.frames[idx].page_no, &self.frames[idx].data)?;
            }
            self.map.remove(&self.frames[idx].page_no);
            metrics.evictions.inc();
        }
        self.pager.read_page(no, &mut self.frames[idx].data)?;
        metrics.bytes_loaded.add(PAGE_SIZE as u64);
        self.frames[idx].page_no = no;
        self.frames[idx].occupied = true;
        self.frames[idx].dirty = false;
        self.frames[idx].referenced = false;
        self.map.insert(no, idx);
        Ok(idx)
    }

    /// Clock sweep: returns a frame to (re)use.
    fn victim(&mut self) -> Result<usize> {
        // First, any unoccupied frame.
        if let Some(idx) = self.frames.iter().position(|f| !f.occupied) {
            return Ok(idx);
        }
        // Second chance: clear ref bits until a victim appears. Two full
        // sweeps guarantee termination.
        for _ in 0..self.frames.len() * 2 + 1 {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
            } else {
                return Ok(idx);
            }
        }
        unreachable!("clock sweep always finds a victim within two passes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(name: &str, pages: usize, budget_pages: usize) -> (BufferPool, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_store_pool_{name}_{}", std::process::id()));
        let mut pager = Pager::create(&path).unwrap();
        for i in 0..pages {
            let no = pager.allocate().unwrap();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8;
            pager.write_page(no, &page).unwrap();
        }
        (BufferPool::new(pager, budget_pages * PAGE_SIZE), path)
    }

    #[test]
    fn hits_after_first_access() {
        let (pool, path) = pool("hits", 4, 4);
        pool.with_page(2, |p| assert_eq!(p[0], 2)).unwrap();
        pool.with_page(2, |p| assert_eq!(p[0], 2)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_under_pressure() {
        let (pool, path) = pool("evict", 10, 2);
        for no in 0..10u32 {
            pool.with_page(no, |p| assert_eq!(p[0], no as u8)).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 10);
        assert_eq!(s.evictions, 8, "2 frames hold 2 pages; 8 evictions");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (pool, path) = pool("dirty", 5, 1);
        pool.with_page_mut(0, |p| p[100] = 42).unwrap();
        // Touch other pages to force eviction of page 0.
        for no in 1..5u32 {
            pool.with_page(no, |_| ()).unwrap();
        }
        pool.with_page(0, |p| assert_eq!(p[100], 42)).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_persists_to_pager() {
        let (pool, path) = pool("flush", 2, 2);
        pool.with_page_mut(1, |p| p[7] = 9).unwrap();
        pool.flush().unwrap();
        // Bypass the pool and read through a fresh pager.
        let pager = Pager::open(&path).unwrap();
        let mut page = [0u8; PAGE_SIZE];
        pager.read_page(1, &mut page).unwrap();
        assert_eq!(page[7], 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clear_cold_starts_the_cache() {
        let (pool, path) = pool("clear", 3, 3);
        for no in 0..3u32 {
            pool.with_page(no, |_| ()).unwrap();
        }
        pool.clear().unwrap();
        pool.reset_stats();
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1, "cache must be cold after clear");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frequently_used_pages_survive_clock_sweep() {
        let (pool, path) = pool("clock", 6, 3);
        // Keep page 0 hot while streaming through the rest.
        for no in 1..6u32 {
            pool.with_page(0, |_| ()).unwrap();
            pool.with_page(no, |_| ()).unwrap();
        }
        pool.reset_stats();
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(pool.stats().hits, 1, "hot page should still be resident");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_below_one_page_still_works() {
        let (pool, path) = pool("tiny", 3, 0);
        assert_eq!(pool.capacity(), 1);
        for no in 0..3u32 {
            pool.with_page(no, |p| assert_eq!(p[0], no as u8)).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_share_one_pool() {
        let (pool, path) = pool("conc", 8, 4);
        let pool = std::sync::Arc::new(pool);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..50u32 {
                        let no = round % 8;
                        pool.with_page(no, |p| assert_eq!(p[0], no as u8)).unwrap();
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4 * 50);
        std::fs::remove_file(&path).ok();
    }
}
