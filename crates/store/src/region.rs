//! Shared immutable byte regions — the safe stand-in for `mmap`.
//!
//! The workspace forbids `unsafe`, so true memory mapping is off the
//! table; what the zero-copy read path actually needs from `mmap` is
//! narrower: **one resident copy of a file that many readers can borrow
//! slices of without per-read allocation or copying**. A [`Region`] is
//! exactly that — a reference-counted immutable buffer — and a
//! [`RegionSlice`] is a cheap handle to a sub-range that derefs to
//! `[u8]` and keeps the buffer alive for as long as the slice is held.
//!
//! Lifetime/safety argument (DESIGN.md §5i): the buffer behind a
//! `Region` is written once at construction and never mutated or
//! reallocated afterwards (the `Arc<[u8]>` owns it and nothing exposes
//! `&mut`), so a `RegionSlice`'s bytes are stable for its whole life;
//! the `Arc` guarantees the backing allocation outlives every
//! outstanding slice, which is the property an OS `mmap` would provide
//! via the page cache — minus the possibility of the file changing
//! underneath, which the checksum layer would catch with `mmap` and
//! cannot occur at all here.

use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted immutable byte buffer, shared by any number of
/// [`RegionSlice`] handles.
#[derive(Debug, Clone)]
pub struct Region {
    bytes: Arc<[u8]>,
}

impl Region {
    /// Takes ownership of `bytes` as a shared immutable region.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Self {
            bytes: Arc::from(bytes),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the region holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The whole region as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// A borrowing handle to `offset .. offset + len`, or `None` when the
    /// range falls outside the region. The handle is allocation-free:
    /// it clones the `Arc` and remembers the range.
    pub fn slice(&self, offset: usize, len: usize) -> Option<RegionSlice> {
        let end = offset.checked_add(len)?;
        if end > self.bytes.len() {
            return None;
        }
        Some(RegionSlice {
            bytes: Arc::clone(&self.bytes),
            offset,
            len,
        })
    }
}

/// A sub-range of a [`Region`] that keeps the backing buffer alive.
/// Derefs to `[u8]`, so it drops into any API that borrows bytes.
#[derive(Debug, Clone)]
pub struct RegionSlice {
    bytes: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl RegionSlice {
    /// Slice length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for RegionSlice {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.bytes[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for RegionSlice {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_borrow_without_copying() {
        let r = Region::from_vec((0u8..100).collect());
        let a = r.slice(10, 5).unwrap();
        let b = r.slice(10, 5).unwrap();
        assert_eq!(&*a, &[10, 11, 12, 13, 14]);
        assert_eq!(&*a, &*b);
        // Same backing allocation: the slices point into the region.
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
        assert!(std::ptr::eq(a.as_ptr(), r.as_slice()[10..].as_ptr()));
    }

    #[test]
    fn slice_outlives_region_handle() {
        let s = {
            let r = Region::from_vec(vec![7u8; 32]);
            r.slice(8, 8).unwrap()
        };
        assert_eq!(&*s, &[7u8; 8]);
    }

    #[test]
    fn out_of_range_slices_are_none() {
        let r = Region::from_vec(vec![0u8; 16]);
        assert!(r.slice(0, 16).is_some());
        assert!(r.slice(0, 17).is_none());
        assert!(r.slice(16, 1).is_none());
        assert!(r.slice(usize::MAX, 2).is_none(), "overflow guarded");
        assert!(r.slice(16, 0).is_some(), "empty tail slice is fine");
    }

    #[test]
    fn empty_region() {
        let r = Region::from_vec(Vec::new());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.slice(0, 0).unwrap().is_empty());
    }
}
