//! On-disk B+tree mapping `u64` keys to `u64` values.
//!
//! This is the index machinery behind the relational baseline: the paper's
//! PostgreSQL setup uses "internal B-tree indexing facilities" for its
//! page-ID and domain indexes (§4), so the substitute store needs a real
//! B+tree, not an in-memory map.
//!
//! Design: classic B+tree over [`BufferPool`] pages. Leaves hold sorted
//! `(key, value)` pairs and are chained left-to-right for range scans;
//! internal nodes hold separator keys. Inserts split upward; the tree only
//! grows (the workloads are build-once/read-many — deletions are not part
//! of any experiment and are intentionally unsupported).
//!
//! Page 0 of the tree's file is a meta page holding a magic number and the
//! root page number, so a tree can be reopened from disk.

use crate::buffer::BufferPool;
use crate::pager::PageNo;
use crate::{Result, StoreError, PAGE_SIZE};

const MAGIC: u32 = 0xB7EE_0003;
const NO_PAGE: PageNo = PageNo::MAX;

const TYPE_LEAF: u8 = 1;
const TYPE_INTERNAL: u8 = 2;

/// Max entries per leaf: header is 8 bytes, entries 16 bytes each.
const LEAF_CAP: usize = (PAGE_SIZE - 8) / 16;
/// Max separators per internal node: header 8 bytes + first child 4, then
/// 12 bytes per (key, child) pair.
const INTERNAL_CAP: usize = (PAGE_SIZE - 12) / 12;

/// A B+tree over its own paged file.
#[derive(Debug)]
pub struct BTree {
    pool: BufferPool,
    root: PageNo,
    height: u32,
    len: u64,
}

/// Decoded node, used during structural modifications.
enum Node {
    Leaf {
        entries: Vec<(u64, u64)>,
        next: PageNo,
    },
    Internal {
        /// children.len() == keys.len() + 1
        keys: Vec<u64>,
        children: Vec<PageNo>,
    },
}

impl BTree {
    /// Creates a new empty tree whose pages live in `pool`'s file.
    pub fn create(pool: BufferPool) -> Result<Self> {
        let meta = pool.allocate()?;
        debug_assert_eq!(meta, 0, "meta page must be page 0");
        let root = pool.allocate()?;
        let node = Node::Leaf {
            entries: Vec::new(),
            next: NO_PAGE,
        };
        write_node(&pool, root, &node)?;
        let mut tree = Self {
            pool,
            root,
            height: 0,
            len: 0,
        };
        tree.write_meta()?;
        Ok(tree)
    }

    /// Reopens a tree previously built in `pool`'s file.
    pub fn open(pool: BufferPool) -> Result<Self> {
        let (root, height, len) =
            pool.with_page(0, |p| (read_u32(p, 4), read_u32(p, 8), read_u64(p, 12)))?;
        let magic = pool.with_page(0, |p| read_u32(p, 0))?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt("bad btree magic"));
        }
        Ok(Self {
            pool,
            root,
            height,
            len,
        })
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The buffer pool (stats inspection, flush/clear between runs — the
    /// pool API is `&self` throughout).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Inserts `key → value`, replacing any existing value (upsert).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<()> {
        match self.insert_rec(self.root, key, value)? {
            InsertResult::Done { replaced } => {
                if !replaced {
                    self.len += 1;
                }
            }
            InsertResult::Split {
                sep,
                right,
                replaced,
            } => {
                // Grow a new root.
                let new_root = self.pool.allocate()?;
                let node = Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                };
                write_node(&self.pool, new_root, &node)?;
                self.root = new_root;
                self.height += 1;
                if !replaced {
                    self.len += 1;
                }
            }
        }
        self.write_meta()
    }

    /// Looks up `key`. Shared-receiver: the descent only reads pages, and
    /// the pool serialises frame access internally.
    pub fn get(&self, key: u64) -> Result<Option<u64>> {
        let mut page = self.root;
        loop {
            enum Step {
                Descend(PageNo),
                Found(Option<u64>),
            }
            let step = self.pool.with_page(page, |p| match p[0] {
                TYPE_INTERNAL => {
                    let child = internal_lookup(p, key);
                    Ok(Step::Descend(child))
                }
                TYPE_LEAF => Ok(Step::Found(leaf_lookup(p, key))),
                _ => Err(StoreError::Corrupt("unknown btree node type in lookup")),
            })??;
            match step {
                Step::Descend(child) => page = child,
                Step::Found(v) => return Ok(v),
            }
        }
    }

    /// Visits all pairs with `key ∈ [lo, hi]` in ascending key order.
    pub fn range(&self, lo: u64, hi: u64, mut f: impl FnMut(u64, u64)) -> Result<()> {
        // Descend to the leaf containing lo.
        let mut page = self.root;
        loop {
            let (is_leaf, next) = self.pool.with_page(page, |p| {
                if p[0] == TYPE_INTERNAL {
                    (false, internal_lookup(p, lo))
                } else {
                    (true, 0)
                }
            })?;
            if is_leaf {
                break;
            }
            page = next;
        }
        // Walk the leaf chain.
        let mut current = page;
        loop {
            let (entries, next) = self.pool.with_page(current, |p| {
                let count = read_u16(p, 2) as usize;
                let next = read_u32(p, 4);
                let mut v = Vec::with_capacity(count);
                for i in 0..count {
                    let off = 8 + i * 16;
                    v.push((read_u64(p, off), read_u64(p, off + 8)));
                }
                (v, next)
            })?;
            for (k, val) in entries {
                if k > hi {
                    return Ok(());
                }
                if k >= lo {
                    f(k, val);
                }
            }
            if next == NO_PAGE {
                return Ok(());
            }
            current = next;
        }
    }

    fn write_meta(&mut self) -> Result<()> {
        let (root, height, len) = (self.root, self.height, self.len);
        self.pool.with_page_mut(0, |p| {
            write_u32(p, 0, MAGIC);
            write_u32(p, 4, root);
            write_u32(p, 8, height);
            write_u64(p, 12, len);
        })
    }

    fn insert_rec(&mut self, page: PageNo, key: u64, value: u64) -> Result<InsertResult> {
        let node_type = self.pool.with_page(page, |p| p[0])?;
        match node_type {
            TYPE_LEAF => {
                let mut node = read_node(&self.pool, page)?;
                let Node::Leaf { entries, next } = &mut node else {
                    unreachable!()
                };
                let replaced = match entries.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(i) => {
                        entries[i].1 = value;
                        true
                    }
                    Err(i) => {
                        entries.insert(i, (key, value));
                        false
                    }
                };
                if entries.len() <= LEAF_CAP {
                    write_node(&self.pool, page, &node)?;
                    return Ok(InsertResult::Done { replaced });
                }
                // Split the leaf.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0;
                let right_page = self.pool.allocate()?;
                let right = Node::Leaf {
                    entries: right_entries,
                    next: *next,
                };
                *next = right_page;
                write_node(&self.pool, right_page, &right)?;
                write_node(&self.pool, page, &node)?;
                Ok(InsertResult::Split {
                    sep,
                    right: right_page,
                    replaced,
                })
            }
            TYPE_INTERNAL => {
                let child = self.pool.with_page(page, |p| internal_lookup(p, key))?;
                let res = self.insert_rec(child, key, value)?;
                let InsertResult::Split {
                    sep,
                    right,
                    replaced,
                } = res
                else {
                    return Ok(res);
                };
                let mut node = read_node(&self.pool, page)?;
                let Node::Internal { keys, children } = &mut node else {
                    unreachable!()
                };
                let pos = keys.partition_point(|&k| k <= sep);
                keys.insert(pos, sep);
                children.insert(pos + 1, right);
                if keys.len() <= INTERNAL_CAP {
                    write_node(&self.pool, page, &node)?;
                    return Ok(InsertResult::Done { replaced });
                }
                // Split the internal node; the middle key moves up.
                let mid = keys.len() / 2;
                let up = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove `up`
                let right_children = children.split_off(mid + 1);
                let right_page = self.pool.allocate()?;
                let right_node = Node::Internal {
                    keys: right_keys,
                    children: right_children,
                };
                write_node(&self.pool, right_page, &right_node)?;
                write_node(&self.pool, page, &node)?;
                Ok(InsertResult::Split {
                    sep: up,
                    right: right_page,
                    replaced,
                })
            }
            _ => Err(StoreError::Corrupt("unknown btree node type in insert")),
        }
    }
}

enum InsertResult {
    Done {
        replaced: bool,
    },
    Split {
        sep: u64,
        right: PageNo,
        replaced: bool,
    },
}

// --- Page (de)serialisation --------------------------------------------------

fn read_node(pool: &BufferPool, page: PageNo) -> Result<Node> {
    pool.with_page(page, |p| match p[0] {
        TYPE_LEAF => {
            let count = read_u16(p, 2) as usize;
            let next = read_u32(p, 4);
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let off = 8 + i * 16;
                entries.push((read_u64(p, off), read_u64(p, off + 8)));
            }
            Ok(Node::Leaf { entries, next })
        }
        TYPE_INTERNAL => {
            let count = read_u16(p, 2) as usize;
            let mut children = Vec::with_capacity(count + 1);
            children.push(read_u32(p, 8));
            let mut keys = Vec::with_capacity(count);
            for i in 0..count {
                let off = 12 + i * 12;
                keys.push(read_u64(p, off));
                children.push(read_u32(p, off + 8));
            }
            Ok(Node::Internal { keys, children })
        }
        _ => Err(StoreError::Corrupt("unknown btree node type in node parse")),
    })?
}

fn write_node(pool: &BufferPool, page: PageNo, node: &Node) -> Result<()> {
    pool.with_page_mut(page, |p| {
        p.fill(0);
        match node {
            Node::Leaf { entries, next } => {
                assert!(entries.len() <= LEAF_CAP);
                p[0] = TYPE_LEAF;
                write_u16(p, 2, entries.len() as u16);
                write_u32(p, 4, *next);
                for (i, &(k, v)) in entries.iter().enumerate() {
                    let off = 8 + i * 16;
                    write_u64(p, off, k);
                    write_u64(p, off + 8, v);
                }
            }
            Node::Internal { keys, children } => {
                assert!(keys.len() <= INTERNAL_CAP);
                assert_eq!(children.len(), keys.len() + 1);
                p[0] = TYPE_INTERNAL;
                write_u16(p, 2, keys.len() as u16);
                write_u32(p, 8, children[0]);
                for (i, &k) in keys.iter().enumerate() {
                    let off = 12 + i * 12;
                    write_u64(p, off, k);
                    write_u32(p, off + 8, children[i + 1]);
                }
            }
        }
    })
}

/// Finds the child to descend into for `key` in an internal page.
fn internal_lookup(p: &[u8; PAGE_SIZE], key: u64) -> PageNo {
    let count = read_u16(p, 2) as usize;
    // Binary search over separator keys.
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = read_u64(p, 12 + mid * 12);
        if key < k {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // lo = number of separators ≤ key → child index lo.
    if lo == 0 {
        read_u32(p, 8)
    } else {
        read_u32(p, 12 + (lo - 1) * 12 + 8)
    }
}

/// Binary-searches a leaf page for `key`.
fn leaf_lookup(p: &[u8; PAGE_SIZE], key: u64) -> Option<u64> {
    let count = read_u16(p, 2) as usize;
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let k = read_u64(p, 8 + mid * 16);
        match k.cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Some(read_u64(p, 8 + mid * 16 + 8)),
        }
    }
    None
}

fn read_u16(p: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([p[off], p[off + 1]])
}
fn read_u32(p: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]])
}
fn read_u64(p: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&p[off..off + 8]);
    u64::from_le_bytes(b)
}
fn write_u16(p: &mut [u8], off: usize, v: u16) {
    p[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn write_u32(p: &mut [u8], off: usize, v: u32) {
    p[off..off + 4].copy_from_slice(&v.to_le_bytes());
}
fn write_u64(p: &mut [u8], off: usize, v: u64) {
    p[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn fresh(name: &str, budget_pages: usize) -> (BTree, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_store_btree_{name}_{}", std::process::id()));
        let pager = Pager::create(&path).unwrap();
        let pool = BufferPool::new(pager, budget_pages * PAGE_SIZE);
        (BTree::create(pool).unwrap(), path)
    }

    #[test]
    fn insert_and_get_small() {
        let (mut t, path) = fresh("small", 16);
        t.insert(5, 50).unwrap();
        t.insert(1, 10).unwrap();
        t.insert(9, 90).unwrap();
        assert_eq!(t.get(5).unwrap(), Some(50));
        assert_eq!(t.get(1).unwrap(), Some(10));
        assert_eq!(t.get(9).unwrap(), Some(90));
        assert_eq!(t.get(7).unwrap(), None);
        assert_eq!(t.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn upsert_replaces() {
        let (mut t, path) = fresh("upsert", 16);
        t.insert(3, 30).unwrap();
        t.insert(3, 33).unwrap();
        assert_eq!(t.get(3).unwrap(), Some(33));
        assert_eq!(t.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_sequential_inserts_split_leaves() {
        let (mut t, path) = fresh("seq", 64);
        let n = 5_000u64;
        for k in 0..n {
            t.insert(k, k * 2).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height() >= 1, "5000 keys must split the root leaf");
        for k in (0..n).step_by(97) {
            assert_eq!(t.get(k).unwrap(), Some(k * 2), "key {k}");
        }
        assert_eq!(t.get(n).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_random_inserts() {
        let (mut t, path) = fresh("rand", 64);
        // Deterministic pseudo-random permutation.
        let n = 4_000u64;
        let mut keys: Vec<u64> = (0..n).map(|i| (i * 2654435761) % 1_000_003).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        let mut s = 12345u64;
        for i in (1..shuffled.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for &k in &shuffled {
            t.insert(k, k + 7).unwrap();
        }
        assert_eq!(t.len(), keys.len() as u64);
        for &k in keys.iter().step_by(53) {
            assert_eq!(t.get(k).unwrap(), Some(k + 7));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let (mut t, path) = fresh("range", 64);
        for k in (0..2_000u64).map(|i| i * 3) {
            t.insert(k, k).unwrap();
        }
        let mut seen = Vec::new();
        t.range(100, 400, |k, v| {
            assert_eq!(k, v);
            seen.push(k);
        })
        .unwrap();
        let expect: Vec<u64> = (0..2_000)
            .map(|i| i * 3)
            .filter(|&k| (100..=400).contains(&k))
            .collect();
        assert_eq!(seen, expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn full_range_scan_returns_everything_in_order() {
        let (mut t, path) = fresh("fullscan", 64);
        for k in 0..3_000u64 {
            t.insert(k * 7 % 10_007, k).unwrap();
        }
        let mut prev = None;
        let mut count = 0u64;
        t.range(0, u64::MAX, |k, _| {
            if let Some(p) = prev {
                assert!(k > p, "scan out of order");
            }
            prev = Some(k);
            count += 1;
        })
        .unwrap();
        assert_eq!(count, t.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_from_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_store_btree_reopen_{}", std::process::id()));
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager, 32 * PAGE_SIZE);
            let mut t = BTree::create(pool).unwrap();
            for k in 0..2_000u64 {
                t.insert(k, k + 1).unwrap();
            }
            t.pool().flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager, 32 * PAGE_SIZE);
        let t = BTree::open(pool).unwrap();
        assert_eq!(t.len(), 2_000);
        assert_eq!(t.get(1234).unwrap(), Some(1235));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // 2-frame pool forces constant eviction during splits.
        let (mut t, path) = fresh("tinypool", 2);
        for k in 0..3_000u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..3_000).step_by(211) {
            assert_eq!(t.get(k).unwrap(), Some(k));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let mut path = std::env::temp_dir();
        path.push(format!("wg_store_btree_garbage_{}", std::process::id()));
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager, 4 * PAGE_SIZE);
        assert!(BTree::open(pool).is_err());
        std::fs::remove_file(&path).ok();
    }
}
