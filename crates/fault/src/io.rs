//! The canonical read shim.
//!
//! Every positioned read in the workspace's storage crates goes through
//! [`read_exact_at`], and every whole-file slurp through [`read_file`].
//! One choke point buys three properties:
//!
//! * **portability** — the non-unix fallback is a real seek + `read_exact`
//!   loop that handles `ErrorKind::Interrupted`, not a stub;
//! * **transient-fault injection** — an installed [`crate::FaultPlan`] can
//!   make the n-th shim read fail with `EIO` or `Interrupted`,
//!   deterministically, without touching call sites;
//! * **bounded-backoff retry** — transient errors are retried up to
//!   [`RETRY_ATTEMPTS`] times with millisecond backoff before surfacing,
//!   so a blip costs latency, not availability. Retries are counted
//!   globally ([`retries_performed`]) and, when metrics are enabled,
//!   mirrored to the `fault.retries` registry counter.

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// How many times a transient read error is attempted in total before it
/// surfaces to the caller.
pub const RETRY_ATTEMPTS: u32 = 4;

/// Kind of transient error an installed plan injects at the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// `ErrorKind::Interrupted` — the classic retryable signal.
    Interrupted,
    /// An `EIO`-style error (`ErrorKind::Other`), retryable by policy.
    Eio,
}

/// Transient faults keyed by global shim-read sequence number.
#[derive(Debug, Default)]
struct TransientPlan {
    /// Sorted `(read index, kind)` pairs; index counts shim reads since
    /// install.
    faults: Vec<(u64, TransientKind)>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static READ_SEQ: AtomicU64 = AtomicU64::new(0);
static RETRIES: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<TransientPlan>> = Mutex::new(None);

fn lock_plan() -> std::sync::MutexGuard<'static, Option<TransientPlan>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs transient read faults: the shim's `indices[i].0`-th read (as
/// counted from this call) fails once with the paired kind. Replaces any
/// previously installed set and resets the read counter.
pub fn install_transients(mut faults: Vec<(u64, TransientKind)>) {
    faults.sort_unstable_by_key(|&(i, _)| i);
    READ_SEQ.store(0, Ordering::SeqCst);
    *lock_plan() = Some(TransientPlan { faults });
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes any installed transient faults.
pub fn clear_transients() {
    ACTIVE.store(false, Ordering::SeqCst);
    *lock_plan() = None;
}

/// Total transient errors injected by the shim since process start.
pub fn transient_faults_injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Total retries the shim has performed since process start.
pub fn retries_performed() -> u64 {
    RETRIES.load(Ordering::Relaxed)
}

/// One relaxed load when no plan is installed — the production cost of the
/// whole subsystem.
fn inject() -> std::io::Result<()> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    let seq = READ_SEQ.fetch_add(1, Ordering::SeqCst);
    let kind = {
        let guard = lock_plan();
        guard
            .as_ref()
            .and_then(|p| p.faults.iter().find(|&&(i, _)| i == seq).map(|&(_, k)| k))
    };
    let Some(kind) = kind else { return Ok(()) };
    INJECTED.fetch_add(1, Ordering::Relaxed);
    Err(match kind {
        TransientKind::Interrupted => std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected transient interrupt",
        ),
        TransientKind::Eio => std::io::Error::other("injected transient EIO"),
    })
}

/// Is `e` worth retrying? Interrupted always; `Other` covers both the
/// injected EIO and the real thing (the OS surfaces `EIO` as an
/// uncategorised error).
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::Other
    )
}

/// Runs `op` with bounded-backoff retry of transient errors: up to
/// [`RETRY_ATTEMPTS`] attempts, sleeping 1 ms, 2 ms, 4 ms between them.
fn with_retry<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt + 1 < RETRY_ATTEMPTS => {
                RETRIES.fetch_add(1, Ordering::Relaxed);
                if wg_obs::metrics_enabled() {
                    wg_obs::global().counter("fault.retries").inc();
                }
                std::thread::sleep(std::time::Duration::from_millis(1 << attempt.min(4)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads exactly `buf.len()` bytes at `offset`, without moving the file
/// cursor on unix. Short reads are errors, transient errors are retried.
pub fn read_exact_at(f: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    with_retry(|| {
        inject()?;
        read_exact_at_raw(f, buf, offset)
    })
}

#[cfg(unix)]
fn read_exact_at_raw(f: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, offset)
}

/// Portable fallback: seek then fill the buffer, resuming across
/// `Interrupted`, erroring (never zero-filling) on a short read. Unlike the
/// unix path this moves the file cursor, which no caller in the workspace
/// relies on.
#[cfg(not(unix))]
fn read_exact_at_raw(mut f: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    let mut filled = 0usize;
    while filled < buf.len() {
        match f.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "short positioned read",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads a whole file through the shim (open + slurp, with injection and
/// retry applied to the read).
pub fn read_file(path: &Path) -> std::io::Result<Vec<u8>> {
    with_retry(|| {
        inject()?;
        let mut buf = Vec::new();
        let mut f = File::open(path)?;
        f.read_to_end(&mut buf)?;
        Ok(buf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_fault_io_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn positioned_read_round_trips() {
        let path = temp("rt");
        let data: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).expect("write fixture");
        let f = File::open(&path).expect("open fixture");
        let mut buf = [0u8; 16];
        read_exact_at(&f, &mut buf, 100).expect("positioned read");
        assert_eq!(&buf[..], &data[100..116]);
        assert_eq!(read_file(&path).expect("slurp"), data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_read_is_an_error() {
        let path = temp("short");
        std::fs::write(&path, [1u8, 2, 3]).expect("write fixture");
        let f = File::open(&path).expect("open fixture");
        let mut buf = [0u8; 8];
        assert!(read_exact_at(&f, &mut buf, 0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_faults_are_retried_then_surface() {
        let path = temp("transient");
        let mut f = File::create(&path).expect("create fixture");
        f.write_all(&[7u8; 64]).expect("write fixture");
        drop(f);
        let f = File::open(&path).expect("open fixture");
        let mut buf = [0u8; 8];

        // One transient fault: retried transparently.
        install_transients(vec![(0, TransientKind::Interrupted)]);
        let before = retries_performed();
        read_exact_at(&f, &mut buf, 0).expect("retried read succeeds");
        assert!(retries_performed() > before);
        assert_eq!(buf, [7u8; 8]);

        // A run longer than the retry budget: the error surfaces.
        let run: Vec<(u64, TransientKind)> = (0..u64::from(RETRY_ATTEMPTS))
            .map(|i| (i, TransientKind::Eio))
            .collect();
        install_transients(run);
        assert!(read_exact_at(&f, &mut buf, 0).is_err());
        clear_transients();
        read_exact_at(&f, &mut buf, 0).expect("clean read after clear");
        std::fs::remove_file(&path).ok();
    }
}
