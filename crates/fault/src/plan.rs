//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is generated from `(directory contents, seed, spec)` and
//! is fully reproducible: the same seed over the same files yields the same
//! faults, byte for byte. Physical faults (bit flips, truncations, torn
//! writes) are applied to the files on disk by [`FaultPlan::apply_to_dir`];
//! transient faults (EIO / Interrupted) are installed into the global read
//! shim by [`FaultPlan::install_transients`] and fire at read time.

use crate::io::TransientKind;
use std::path::Path;

/// How many faults of each kind to generate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultSpec {
    /// Single-bit flips at uniformly chosen (file, byte, bit) positions.
    pub flips: u32,
    /// Truncations to a uniformly chosen prefix length.
    pub truncations: u32,
    /// Torn writes: a trailing byte range of the file is zeroed, as if the
    /// tail of the last write never reached disk.
    pub torn_writes: u32,
    /// Transient read errors (alternating `Interrupted`/`EIO`) at chosen
    /// shim-read indices.
    pub transient_reads: u32,
}

/// One concrete fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Flip bit `bit` of byte `byte` in `file`.
    BitFlip {
        /// File name relative to the plan's directory.
        file: String,
        /// Byte offset of the flip.
        byte: u64,
        /// Bit index within the byte (0 = LSB).
        bit: u8,
    },
    /// Truncate `file` to `len` bytes.
    Truncate {
        /// File name relative to the plan's directory.
        file: String,
        /// New (shorter) length.
        len: u64,
    },
    /// Zero the last `torn_bytes` of `file` without changing its length.
    TornWrite {
        /// File name relative to the plan's directory.
        file: String,
        /// Number of trailing bytes zeroed.
        torn_bytes: u64,
    },
    /// The `read_index`-th shim read fails once with `kind`.
    TransientRead {
        /// Global shim-read sequence number (counted from install).
        read_index: u64,
        /// Error kind injected.
        kind: TransientKind,
    },
}

/// One fault as actually applied, for reporting.
#[derive(Debug, Clone)]
pub struct AppliedFault {
    /// The fault.
    pub fault: Fault,
    /// Human description (`flip index_000.bin byte 1234 bit 5`).
    pub describe: String,
}

/// A deterministic set of faults over one representation directory.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed the plan was generated from.
    pub seed: u64,
    /// The faults, in generation order.
    pub faults: Vec<Fault>,
}

/// splitmix64 — tiny, seedable, and good enough to scatter faults.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// Regular files of `dir` (name, length), sorted by name, excluding the
/// integrity manifest — corruption there is a different failure class
/// (`SN101`) and is injected explicitly when a test wants it.
fn target_files(dir: &Path) -> std::io::Result<Vec<(String, u64)>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let meta = entry.metadata()?;
        if !meta.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "sums.bin" {
            continue;
        }
        files.push((name, meta.len()));
    }
    files.sort();
    Ok(files)
}

impl FaultPlan {
    /// Generates a deterministic plan of `spec` faults over the files of
    /// `dir` (excluding `sums.bin`; see [`target_files`]). Only non-empty
    /// files are targeted; if the directory has none, the physical parts of
    /// the plan come back empty.
    pub fn generate(dir: &Path, seed: u64, spec: &FaultSpec) -> std::io::Result<Self> {
        let files = target_files(dir)?;
        let nonempty: Vec<&(String, u64)> = files.iter().filter(|(_, len)| *len > 0).collect();
        let mut rng = Rng(seed);
        let mut faults = Vec::new();
        if !nonempty.is_empty() {
            for _ in 0..spec.flips {
                let (name, len) = nonempty[rng.below(nonempty.len() as u64) as usize];
                faults.push(Fault::BitFlip {
                    file: name.clone(),
                    byte: rng.below(*len),
                    bit: (rng.next() % 8) as u8,
                });
            }
            for _ in 0..spec.truncations {
                let (name, len) = nonempty[rng.below(nonempty.len() as u64) as usize];
                faults.push(Fault::Truncate {
                    file: name.clone(),
                    len: rng.below(*len),
                });
            }
            for _ in 0..spec.torn_writes {
                let (name, len) = nonempty[rng.below(nonempty.len() as u64) as usize];
                faults.push(Fault::TornWrite {
                    file: name.clone(),
                    torn_bytes: 1 + rng.below(*len),
                });
            }
        }
        for i in 0..spec.transient_reads {
            faults.push(Fault::TransientRead {
                read_index: rng.below(64),
                kind: if i % 2 == 0 {
                    TransientKind::Interrupted
                } else {
                    TransientKind::Eio
                },
            });
        }
        Ok(Self { seed, faults })
    }

    /// Applies the physical faults (flips, truncations, torn writes) to the
    /// files under `dir` and returns what was done. Transient faults are
    /// not applied here — see [`FaultPlan::install_transients`]. A fault
    /// naming a file that has shrunk since generation is skipped, never an
    /// error (plans must be reusable across repair cycles).
    pub fn apply_to_dir(&self, dir: &Path) -> std::io::Result<Vec<AppliedFault>> {
        let mut applied = Vec::new();
        for fault in &self.faults {
            match fault {
                Fault::BitFlip { file, byte, bit } => {
                    let path = dir.join(file);
                    let Ok(mut bytes) = std::fs::read(&path) else {
                        continue;
                    };
                    let Some(slot) = bytes.get_mut(*byte as usize) else {
                        continue;
                    };
                    *slot ^= 1 << bit;
                    std::fs::write(&path, &bytes)?;
                    applied.push(AppliedFault {
                        fault: fault.clone(),
                        describe: format!("flip {file} byte {byte} bit {bit}"),
                    });
                }
                Fault::Truncate { file, len } => {
                    let path = dir.join(file);
                    let Ok(bytes) = std::fs::read(&path) else {
                        continue;
                    };
                    if (*len as usize) >= bytes.len() {
                        continue;
                    }
                    std::fs::write(&path, &bytes[..*len as usize])?;
                    applied.push(AppliedFault {
                        fault: fault.clone(),
                        describe: format!("truncate {file} to {len} bytes"),
                    });
                }
                Fault::TornWrite { file, torn_bytes } => {
                    let path = dir.join(file);
                    let Ok(mut bytes) = std::fs::read(&path) else {
                        continue;
                    };
                    let keep = bytes.len().saturating_sub(*torn_bytes as usize);
                    for b in &mut bytes[keep..] {
                        *b = 0;
                    }
                    std::fs::write(&path, &bytes)?;
                    applied.push(AppliedFault {
                        fault: fault.clone(),
                        describe: format!("torn write: zeroed last {torn_bytes} bytes of {file}"),
                    });
                }
                Fault::TransientRead { .. } => {}
            }
        }
        Ok(applied)
    }

    /// Installs the plan's transient faults into the global read shim
    /// (replacing any previously installed set).
    pub fn install_transients(&self) {
        let transients: Vec<(u64, TransientKind)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::TransientRead { read_index, kind } => Some((*read_index, *kind)),
                _ => None,
            })
            .collect();
        crate::io::install_transients(transients);
    }

    /// Number of physical (on-disk) faults in the plan.
    pub fn physical_faults(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| !matches!(f, Fault::TransientRead { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_fault_plan_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).expect("create temp dir");
        p
    }

    fn fixture(dir: &Path) {
        std::fs::write(dir.join("a.bin"), vec![0xAAu8; 100]).expect("write a");
        std::fs::write(dir.join("b.bin"), vec![0x55u8; 50]).expect("write b");
        std::fs::write(dir.join("sums.bin"), vec![1u8; 20]).expect("write sums");
    }

    #[test]
    fn generation_is_deterministic() {
        let dir = temp_dir("det");
        fixture(&dir);
        let spec = FaultSpec {
            flips: 5,
            truncations: 2,
            torn_writes: 1,
            transient_reads: 3,
        };
        let a = FaultPlan::generate(&dir, 42, &spec).expect("plan a");
        let b = FaultPlan::generate(&dir, 42, &spec).expect("plan b");
        let c = FaultPlan::generate(&dir, 43, &spec).expect("plan c");
        assert_eq!(a.faults, b.faults);
        assert_ne!(a.faults, c.faults);
        assert_eq!(a.faults.len(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plans_never_target_the_manifest() {
        let dir = temp_dir("manifest");
        fixture(&dir);
        let spec = FaultSpec {
            flips: 50,
            truncations: 10,
            torn_writes: 10,
            transient_reads: 0,
        };
        let plan = FaultPlan::generate(&dir, 7, &spec).expect("plan");
        for f in &plan.faults {
            let name = match f {
                Fault::BitFlip { file, .. }
                | Fault::Truncate { file, .. }
                | Fault::TornWrite { file, .. } => file,
                Fault::TransientRead { .. } => continue,
            };
            assert_ne!(name, "sums.bin");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_flips_exactly_one_bit() {
        let dir = temp_dir("flip");
        fixture(&dir);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![Fault::BitFlip {
                file: "a.bin".into(),
                byte: 10,
                bit: 3,
            }],
        };
        let before = std::fs::read(dir.join("a.bin")).expect("read before");
        let applied = plan.apply_to_dir(&dir).expect("apply");
        assert_eq!(applied.len(), 1);
        let after = std::fs::read(dir.join("a.bin")).expect("read after");
        let diff: Vec<usize> = (0..before.len())
            .filter(|&i| before[i] != after[i])
            .collect();
        assert_eq!(diff, vec![10]);
        assert_eq!(before[10] ^ after[10], 1 << 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_truncates_and_tears() {
        let dir = temp_dir("trunc");
        fixture(&dir);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                Fault::Truncate {
                    file: "a.bin".into(),
                    len: 40,
                },
                Fault::TornWrite {
                    file: "b.bin".into(),
                    torn_bytes: 8,
                },
            ],
        };
        plan.apply_to_dir(&dir).expect("apply");
        assert_eq!(
            std::fs::metadata(dir.join("a.bin")).expect("stat a").len(),
            40
        );
        let b = std::fs::read(dir.join("b.bin")).expect("read b");
        assert_eq!(b.len(), 50, "torn write keeps the length");
        assert!(b[42..].iter().all(|&x| x == 0));
        assert!(b[..42].iter().all(|&x| x == 0x55));
        std::fs::remove_dir_all(&dir).ok();
    }
}
