//! `wg-fault` — the robustness substrate of the workspace.
//!
//! Production graph stores take for granted that random access stays safe
//! and available when the bytes underneath are not perfect; nothing in the
//! paper's description of the S-Node format addresses that, so this crate
//! supplies the three missing pieces:
//!
//! * [`crc32c`] — a dependency-free CRC-32C (Castagnoli), the checksum the
//!   S-Node integrity manifest (`sums.bin`) and `wgr fsck` are built on;
//! * [`plan`] — seeded, deterministic fault plans: bit flips, truncations,
//!   and torn writes applied to the files of a built representation, plus
//!   transient read errors injected at the I/O shim;
//! * [`io`] — the canonical positioned-read helpers every storage crate
//!   routes through. Reads pass a single choke point, which is what makes
//!   transient-fault injection and bounded-backoff retry possible without
//!   touching call sites, and what the conventions lint enforces (no raw
//!   `read_exact`/`read_exact_at`/`read_to_end` outside this crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32c;
pub mod io;
pub mod plan;

pub use crc32c::crc32c;
pub use io::{
    read_exact_at, read_file, retries_performed, transient_faults_injected, TransientKind,
};
pub use plan::{AppliedFault, Fault, FaultPlan, FaultSpec};
