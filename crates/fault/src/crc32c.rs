//! CRC-32C (Castagnoli, polynomial `0x1EDC6F41`), the checksum used by
//! iSCSI, ext4, and most modern storage formats — and by the S-Node
//! integrity manifest. Table-driven software implementation, no
//! dependencies; the table is built at compile time.

/// Reflected form of the Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32C of `data` (the standard variant: initial value all-ones, final
/// complement).
pub fn crc32c(data: &[u8]) -> u32 {
    finish(update(START, data))
}

/// Starting state for incremental checksumming with [`update`]/[`finish`].
pub const START: u32 = 0xFFFF_FFFF;

/// Feeds `data` into an in-progress checksum state.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// Finalises an incremental checksum state into the CRC value.
pub fn finish(state: u32) -> u32 {
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common reference vectors for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let whole = crc32c(&data);
        let mut state = START;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(finish(state), whole);
    }

    #[test]
    fn single_bit_flip_always_changes_crc() {
        let data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let base = crc32c(&data);
        for byte in (0..data.len()).step_by(13) {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
