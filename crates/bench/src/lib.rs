//! Shared machinery for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation (§4).
//!
//! Scaling: the paper's data sets are 25–115 **million** pages from the
//! Stanford WebBase crawl; this harness defaults to a 1:1000 scale
//! (25–115 **thousand** synthetic pages) so every experiment runs on a
//! laptop in minutes. Pass `--scale <f>` to any binary to change it; shapes
//! (who wins, by what factor, where curves bend) are scale-stable, absolute
//! numbers are not and are not claimed to be.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;

use std::time::Duration;
use wg_corpus::{Corpus, CorpusConfig};
use wg_graph::Graph;
use wg_obs::Stopwatch;

/// The paper's repository sizes in millions of pages.
pub const PAPER_SIZES_M: [u32; 5] = [25, 50, 75, 100, 115];

/// Default scale: synthetic pages per paper-million.
pub const DEFAULT_PAGES_PER_MILLION: u32 = 1_000;

/// The paper's measured mean out-degree, used for the "max repository in
/// 8 GB" extrapolation of Table 1.
pub const PAPER_MEAN_OUT_DEGREE: f64 = 14.0;

/// Simple command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Synthetic pages per paper-million (default 1000 → 25k..115k pages).
    pub pages_per_million: u32,
    /// Corpus seed.
    pub seed: u64,
    /// Trials per measurement where applicable.
    pub trials: u32,
    /// Working directory for on-disk representations.
    pub work_dir: std::path::PathBuf,
}

impl BenchArgs {
    /// Parses `--scale N` (pages per million), `--seed N`, `--trials N`,
    /// `--dir PATH` from `std::env::args`.
    pub fn parse() -> Self {
        let mut out = Self {
            pages_per_million: DEFAULT_PAGES_PER_MILLION,
            seed: 42,
            trials: 6,
            work_dir: std::env::temp_dir().join(format!("wg_bench_{}", std::process::id())),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<String> {
                *i += 1;
                args.get(*i).cloned()
            };
            match args[i].as_str() {
                "--scale" => {
                    out.pages_per_million = take(&mut i)
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number");
                }
                "--seed" => {
                    out.seed = take(&mut i)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--trials" => {
                    out.trials = take(&mut i)
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs a number");
                }
                "--dir" => {
                    out.work_dir = take(&mut i).expect("--dir needs a path").into();
                }
                other => {
                    eprintln!("ignoring unknown argument {other}");
                }
            }
            i += 1;
        }
        out
    }

    /// Number of synthetic pages standing in for `millions` paper-millions.
    pub fn pages_for(&self, millions: u32) -> u32 {
        millions * self.pages_per_million
    }
}

/// Generates the standard corpus for a given paper size.
pub fn corpus_for(args: &BenchArgs, millions: u32) -> Corpus {
    Corpus::generate(CorpusConfig::scaled(args.pages_for(millions), args.seed))
}

/// A crawl prefix: the first `pages` pages of `corpus` and the subgraph
/// induced on them.
///
/// The paper's five data sets are successive prefixes of one crawl
/// ("created by reading the repository sequentially from the beginning",
/// §4, citing Najork & Wiener) — this is what makes its supernode counts
/// grow sub-linearly: later pages mostly join sites the crawl has already
/// visited. Scalability experiments must therefore slice one corpus, not
/// generate independent ones.
pub fn crawl_prefix(corpus: &Corpus, pages: u32) -> (Vec<&str>, Vec<u32>, Graph) {
    let pages = pages.min(corpus.num_pages());
    let urls: Vec<&str> = corpus.pages[..pages as usize]
        .iter()
        .map(|p| p.url.as_str())
        .collect();
    let domains: Vec<u32> = corpus.pages[..pages as usize]
        .iter()
        .map(|p| p.domain)
        .collect();
    let edges = corpus
        .graph
        .edges()
        .filter(|&(u, v)| u < pages && v < pages);
    (urls, domains, Graph::from_edges(pages, edges))
}

/// Extracts the `(urls, domains)` columns the S-Node builder wants.
pub fn repo_columns(corpus: &Corpus) -> (Vec<&str>, Vec<u32>) {
    (
        corpus.pages.iter().map(|p| p.url.as_str()).collect(),
        corpus.pages.iter().map(|p| p.domain).collect(),
    )
}

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Stopwatch::start();
    let r = f();
    (r, t0.elapsed())
}

/// Table 1's extrapolation: how many pages fit in `memory_bytes` given
/// `bits_per_edge` and the paper's mean out-degree of 14.
pub fn max_pages_in_memory(bits_per_edge: f64, memory_bytes: u64) -> u64 {
    if bits_per_edge <= 0.0 {
        return 0;
    }
    let bits_per_page = bits_per_edge * PAPER_MEAN_OUT_DEGREE;
    ((memory_bytes * 8) as f64 / bits_per_page) as u64
}

/// Pretty-prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Mean of a duration sample, in milliseconds.
pub fn mean_ms(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / samples.len() as f64
}

/// Nanoseconds per edge for `total` time over `edges` edges.
pub fn ns_per_edge(total: Duration, edges: u64) -> f64 {
    if edges == 0 {
        return 0.0;
    }
    total.as_nanos() as f64 / edges as f64
}

/// Sanity helper shared by tests: a tiny corpus and its graph.
pub fn tiny_corpus(seed: u64) -> (Corpus, Graph) {
    let c = Corpus::generate(CorpusConfig::scaled(400, seed));
    let g = c.graph.clone();
    (c, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pages_matches_paper_arithmetic() {
        // Paper: 15.2 bits/edge, 14 edges/page, 8 GB → ~323 million pages.
        let pages = max_pages_in_memory(15.2, 8 << 30);
        assert!(
            (300_000_000..350_000_000).contains(&pages),
            "got {pages}, paper says ≈323M"
        );
        // 5.07 bits/edge → ~968M.
        let pages = max_pages_in_memory(5.07, 8 << 30);
        assert!(
            (930_000_000..1_010_000_000).contains(&pages),
            "got {pages}, paper says ≈968M"
        );
    }

    #[test]
    fn ns_per_edge_arithmetic() {
        assert_eq!(ns_per_edge(Duration::from_nanos(1000), 10), 100.0);
        assert_eq!(ns_per_edge(Duration::from_secs(1), 0), 0.0);
    }

    #[test]
    fn pages_for_scales() {
        let mut a = BenchArgs::parse();
        a.pages_per_million = 10;
        assert_eq!(a.pages_for(25), 250);
    }
}
