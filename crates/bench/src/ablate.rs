//! Codec-ablation harness: prices every `CodecConfig` cell in bits/edge
//! **and** decode ns/edge on one corpus, with a correctness gate.
//!
//! Each cell builds a full S-Node representation with its codec, measures
//! Table 1's size metric from the build stats, then loads the directory
//! as [`SNodeInMemory`] and decodes every page's adjacency list — timing
//! the sweep and folding every row into an FNV-1a fingerprint. A cell
//! whose fingerprint differs from the γ baseline's decoded something
//! wrong, so the harness reports the mismatch instead of a seductive
//! bits/edge number (compression that changes answers is corruption with
//! good PR).
//!
//! The cell grid walks the two ablation axes independently and jointly:
//! the ζ shrinking parameter (γ = ζ₁ through ζ₄) and the two list-layout
//! features (interval runs `+iv`, copy blocks `+cb`), so the report shows
//! what each knob buys alone and what they buy together.

use std::path::Path;
use wg_corpus::Corpus;
use wg_obs::Stopwatch;
use wg_snode::{build_snode, CodecConfig, ListCodec, RepoInput, SNodeConfig, SNodeInMemory};

/// The default ablation grid. `g` is the γ baseline (bit-identical to the
/// v1 format); the rest vary one axis at a time, then combine them. The
/// `+st` cells add the single-target dictionary layout for superedge
/// graphs — the one knob that wins on synthetic-crawl corpora, where
/// site-template cross links make most superedge lists single-target.
pub const DEFAULT_CELLS: [&str; 13] = [
    "g", "z2", "z3", "z4", "g+iv", "z3+iv", "z3+cb", "g+iv+cb", "z2+iv+cb", "z3+iv+cb", "g+st",
    "z2+st", "g+iv+st",
];

/// One measured cell of the ablation grid.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell name in `ListCodec` notation (`g`, `z3+iv+cb`, ...).
    pub cell: String,
    /// Table 1's metric: `(meta.bin + index files) * 8 / edges`.
    pub bits_per_edge: f64,
    /// Bytes of `meta.bin`.
    pub meta_bytes: u64,
    /// Bytes across all index files.
    pub index_bytes: u64,
    /// Mean wall time to decode one edge in a full adjacency sweep.
    pub decode_ns_per_edge: f64,
    /// FNV-1a over every `(page, neighbors)` row of the decoded graph.
    pub fingerprint: u64,
}

/// The full ablation report.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Number of pages in the corpus.
    pub pages: u32,
    /// Number of edges (fingerprint rows cover all of them).
    pub edges: u64,
    /// Per-cell measurements, in grid order.
    pub cells: Vec<CellResult>,
    /// The γ cell's row fingerprint — the correctness reference.
    pub baseline_fingerprint: u64,
    /// True iff every cell decoded to exactly the baseline rows.
    pub all_match: bool,
}

impl AblationReport {
    /// The cell with the fewest bits/edge.
    pub fn best(&self) -> Option<&CellResult> {
        self.cells
            .iter()
            .min_by(|a, b| a.bits_per_edge.total_cmp(&b.bits_per_edge))
    }

    /// Renders the committed `BENCH_compress.json` baseline.
    pub fn to_json(&self, seed: u64) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"wgr bench --ablate\",\n");
        json.push_str(&format!("  \"pages\": {},\n", self.pages));
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str(&format!("  \"edges\": {},\n", self.edges));
        json.push_str(&format!(
            "  \"baseline_fingerprint\": \"{:016x}\",\n",
            self.baseline_fingerprint
        ));
        json.push_str(&format!("  \"all_match\": {},\n", self.all_match));
        if let Some(best) = self.best() {
            json.push_str(&format!(
                "  \"best_cell\": \"{}\",\n  \"best_bits_per_edge\": {:.4},\n",
                best.cell, best.bits_per_edge
            ));
        }
        json.push_str("  \"cells\": [\n");
        for (k, c) in self.cells.iter().enumerate() {
            let sep = if k + 1 == self.cells.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"cell\": \"{}\", \"bits_per_edge\": {:.4}, \"meta_bytes\": {}, \
                 \"index_bytes\": {}, \"decode_ns_per_edge\": {:.1}, \
                 \"fingerprint\": \"{:016x}\"}}{sep}\n",
                c.cell,
                c.bits_per_edge,
                c.meta_bytes,
                c.index_bytes,
                c.decode_ns_per_edge,
                c.fingerprint
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// Folds one decoded adjacency row into an FNV-1a accumulator.
pub fn fnv1a_row(h: &mut u64, page: u32, neighbors: &[u32]) {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut fold = |word: u32| {
        for b in word.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(PRIME);
        }
    };
    fold(page);
    fold(neighbors.len() as u32);
    for &n in neighbors {
        fold(n);
    }
}

/// FNV-1a offset basis — the accumulator's initial value.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Builds one cell's representation under `dir` and measures it.
///
/// The decode sweep runs `sweeps` full passes over every page and keeps
/// the fastest, so one-off warmup noise (page cache, allocator) does not
/// masquerade as codec cost.
pub fn measure_cell(
    input: RepoInput<'_>,
    dir: &Path,
    cell: &str,
    sweeps: usize,
) -> Result<CellResult, String> {
    let codec = ListCodec::parse_cell(cell).map_err(|e| format!("cell {cell}: {e}"))?;
    let config = SNodeConfig {
        codec: CodecConfig {
            intra: codec,
            superedge: codec,
        },
        ..SNodeConfig::default()
    };
    let (stats, _renum) =
        build_snode(input, &config, dir).map_err(|e| format!("cell {cell}: build failed: {e}"))?;
    let mem = SNodeInMemory::load(dir).map_err(|e| format!("cell {cell}: load failed: {e}"))?;
    let mut fingerprint = FNV_OFFSET;
    let mut best_ns = f64::INFINITY;
    for sweep in 0..sweeps.max(1) {
        let mut h = FNV_OFFSET;
        let mut edges = 0u64;
        let sw = Stopwatch::start();
        for p in 0..mem.num_pages() {
            let row = mem
                .out_neighbors(p)
                .map_err(|e| format!("cell {cell}: decode page {p} failed: {e}"))?;
            edges += row.len() as u64;
            fnv1a_row(&mut h, p, &row);
        }
        let ns = sw.elapsed().as_nanos() as f64 / edges.max(1) as f64;
        best_ns = best_ns.min(ns);
        if sweep == 0 {
            fingerprint = h;
        } else if h != fingerprint {
            return Err(format!("cell {cell}: decode sweeps disagree"));
        }
    }
    Ok(CellResult {
        cell: cell.to_string(),
        bits_per_edge: stats.bits_per_edge(),
        meta_bytes: stats.meta_bytes,
        index_bytes: stats.index_bytes,
        decode_ns_per_edge: best_ns,
        fingerprint,
    })
}

/// Runs the full grid over `corpus`, building each cell under `scratch`.
/// The first cell must be the γ baseline (`g`); every later cell's row
/// fingerprint is compared against it.
pub fn run_ablation(
    corpus: &Corpus,
    scratch: &Path,
    cells: &[&str],
    sweeps: usize,
) -> Result<AblationReport, String> {
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let mut results: Vec<CellResult> = Vec::with_capacity(cells.len());
    for cell in cells {
        let dir = scratch.join(format!("ablate_{}", cell.replace('+', "_")));
        let r = measure_cell(input, &dir, cell, sweeps);
        std::fs::remove_dir_all(&dir).ok();
        let r = r?;
        eprintln!(
            "cell {:>9}: {:.4} bits/edge, {:>6.1} ns/edge decode, fp {:016x}",
            r.cell, r.bits_per_edge, r.decode_ns_per_edge, r.fingerprint
        );
        results.push(r);
    }
    let baseline = results
        .iter()
        .find(|r| ListCodec::parse_cell(&r.cell).is_ok_and(|c| c.is_gamma_baseline()))
        .ok_or("ablation grid must include the gamma baseline cell")?;
    let baseline_fingerprint = baseline.fingerprint;
    let all_match = results
        .iter()
        .all(|r| r.fingerprint == baseline_fingerprint);
    Ok(AblationReport {
        pages: corpus.num_pages(),
        edges: corpus.graph.num_edges(),
        cells: results,
        baseline_fingerprint,
        all_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_corpus::CorpusConfig;

    #[test]
    fn tiny_grid_matches_baseline_and_reports_best() {
        let corpus = Corpus::generate(CorpusConfig::scaled(600, 7));
        let scratch = std::env::temp_dir().join(format!("wg_ablate_test_{}", std::process::id()));
        let report = run_ablation(&corpus, &scratch, &["g", "z3+iv+cb"], 1).unwrap();
        std::fs::remove_dir_all(&scratch).ok();
        assert!(report.all_match, "codec cells must decode identically");
        assert_eq!(report.cells.len(), 2);
        assert!(report.best().is_some());
        let json = report.to_json(7);
        assert!(json.contains("\"all_match\": true"), "{json}");
        assert!(json.contains("z3+iv+cb"), "{json}");
    }

    #[test]
    fn fingerprint_is_row_sensitive() {
        let mut a = FNV_OFFSET;
        fnv1a_row(&mut a, 0, &[1, 2, 3]);
        let mut b = FNV_OFFSET;
        fnv1a_row(&mut b, 0, &[1, 2, 4]);
        assert_ne!(a, b);
        // Row boundaries matter: [0|1,2] + [1|_] differs from [0|1] + [1|2].
        let mut c = FNV_OFFSET;
        fnv1a_row(&mut c, 0, &[1, 2]);
        fnv1a_row(&mut c, 1, &[]);
        let mut d = FNV_OFFSET;
        fnv1a_row(&mut d, 0, &[1]);
        fnv1a_row(&mut d, 1, &[2]);
        assert_ne!(c, d);
    }
}
