//! Regenerates **Table 2**: sequential and random in-memory access times
//! (ns/edge) for the Plain Huffman, Link3, and S-Node schemes, on the
//! 25 M-page (scaled) data set, assuming the representation is resident in
//! memory. 5000 trials per mode, as in the paper.
//!
//! Usage: `cargo run -p wg-bench --release --bin table2_access
//! [--scale pages-per-million] [--trials N]`

use wg_baselines::{HuffmanGraph, Link3Graph};
use wg_bench::{corpus_for, ns_per_edge, repo_columns, row, BenchArgs};
use wg_graph::Graph;
use wg_obs::Stopwatch;
use wg_snode::{build_snode, RepoInput, SNodeConfig, SNodeInMemory};

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    let trials = 5_000u32.max(args.trials);
    println!("== Table 2: in-memory access times (ns/edge), {trials} trials ==\n");

    let corpus = corpus_for(&args, 25);
    let (urls, domains) = repo_columns(&corpus);
    let dir = args.work_dir.join("t2_snode");
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (_stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    let graph = Graph::from_edges(
        corpus.graph.num_nodes(),
        corpus
            .graph
            .edges()
            .map(|(u, v)| (renum.new_of_old[u as usize], renum.new_of_old[v as usize])),
    );
    let n = graph.num_nodes();

    let huff = HuffmanGraph::build(&graph);
    let link3 = Link3Graph::build(&graph);
    let snode = SNodeInMemory::load(&dir).expect("load");

    // Pseudo-random page sequence shared by all schemes.
    let mut seq = Vec::with_capacity(trials as usize);
    let mut s = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..trials {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seq.push(((s >> 33) as u32) % n);
    }

    let run = |name: &str, f: &mut dyn FnMut(u32) -> usize| -> (f64, f64) {
        // Sequential: pages in id order.
        let t0 = Stopwatch::start();
        let mut edges = 0usize;
        for p in 0..n.min(trials) {
            edges += f(p);
        }
        let seq_ns = ns_per_edge(t0.elapsed(), edges as u64);
        // Random: the shared random sequence.
        let t0 = Stopwatch::start();
        let mut edges = 0usize;
        for &p in &seq {
            edges += f(p);
        }
        let rnd_ns = ns_per_edge(t0.elapsed(), edges as u64);
        let _ = name;
        (seq_ns, rnd_ns)
    };

    let widths = [28usize, 18, 18];
    println!(
        "{}",
        row(
            &[
                "scheme".into(),
                "sequential ns/e".into(),
                "random ns/e".into()
            ],
            &widths
        )
    );
    let (hs, hr) = run("huffman", &mut |p| {
        huff.out_neighbors(p).expect("huff").len()
    });
    let (ls, lr) = run("link3", &mut |p| {
        link3.out_neighbors(p).expect("link3").len()
    });
    let (ss, sr) = run("snode", &mut |p| {
        snode.out_neighbors(p).expect("snode").len()
    });

    let rows: [(&str, f64, f64, [f64; 2]); 3] = [
        ("Plain Huffman", hs, hr, [112.0, 198.0]),
        ("Connectivity Server (Link3)", ls, lr, [309.0, 689.0]),
        ("S-Node", ss, sr, [298.0, 702.0]),
    ];
    for (name, s, r, paper) in rows {
        println!(
            "{}",
            row(
                &[name.into(), format!("{s:.0}"), format!("{r:.0}")],
                &widths
            )
        );
        println!(
            "{}",
            row(
                &[
                    "  (paper)".into(),
                    format!("{:.0}", paper[0]),
                    format!("{:.0}", paper[1]),
                ],
                &widths
            )
        );
    }
    println!(
        "\npaper shape: plain Huffman decodes fastest (simplest code); Link3 and S-Node pay\n\
         2-4x for reference-chain resolution — the price of their 3x better compression."
    );
    std::fs::remove_dir_all(&dir).ok();
}
