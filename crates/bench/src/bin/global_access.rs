//! Supplementary experiment: the **global-access** story of §1.2.
//!
//! The paper's motivation for extreme compression is that whole-graph
//! computations (SCC, PageRank, diameter) become simple main-memory
//! algorithms when the representation fits in RAM. This harness measures,
//! for a 100 (scaled) M-page repository:
//!
//! * resident size of the S-Node encoded form vs raw adjacency arrays;
//! * time to decode the full graph back to CSR;
//! * SCC, PageRank and effective-diameter runtimes on the decoded graph.
//!
//! Usage: `cargo run -p wg-bench --release --bin global_access
//! [--scale pages-per-million]`

use wg_bench::{corpus_for, repo_columns, timed, BenchArgs};
use wg_graph::bowtie::bowtie_with_transpose;
use wg_graph::diameter::estimate_diameter;
use wg_graph::pagerank::{pagerank, PageRankConfig};
use wg_graph::scc::tarjan_scc;
use wg_graph::trawl::{trawl, TrawlParams};
use wg_snode::{build_snode, RepoInput, SNodeConfig, SNodeInMemory};

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    let corpus = corpus_for(&args, 100);
    let (urls, domains) = repo_columns(&corpus);
    println!(
        "== Global access: {} pages, {} edges ==\n",
        corpus.num_pages(),
        corpus.graph.num_edges()
    );

    let dir = args.work_dir.join("global");
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (stats, _renum) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    let raw_bytes = corpus.graph.num_edges() * 4 + u64::from(corpus.num_pages() + 1) * 8;
    println!(
        "representation: {:.2} bits/edge; resident encoded {:.1} MB vs raw CSR {:.1} MB ({:.1}x)",
        stats.bits_per_edge(),
        (stats.meta_bytes + stats.index_bytes) as f64 / (1 << 20) as f64,
        raw_bytes as f64 / (1 << 20) as f64,
        raw_bytes as f64 / (stats.meta_bytes + stats.index_bytes) as f64
    );

    let (mem, t_load) = timed(|| SNodeInMemory::load(&dir).expect("load"));
    println!("load encoded graphs into memory: {t_load:?}");

    let (graph, t_decode) = timed(|| mem.to_graph().expect("decode"));
    println!("decode all adjacency lists to CSR: {t_decode:?}");

    let (scc, t_scc) = timed(|| tarjan_scc(&graph));
    println!(
        "SCC: {} components (giant {}) in {t_scc:?}",
        scc.num_components,
        scc.largest()
    );

    let (pr, t_pr) = timed(|| pagerank(&graph, &PageRankConfig::default()));
    println!("PageRank: {} iterations in {t_pr:?}", pr.iterations);

    let (bt, t_bt) = timed(|| bowtie_with_transpose(&graph, &graph.transpose()));
    println!("bow-tie: {bt} in {t_bt:?}");

    let (est, t_diam) = timed(|| estimate_diameter(&graph, 16));
    println!(
        "diameter: max {} hops, effective {} hops ({} sources) in {t_diam:?}",
        est.max_distance, est.effective_diameter, est.sources_sampled
    );

    let (cores, t_trawl) = timed(|| trawl(&graph, &TrawlParams::default()));
    println!(
        "community trawl: {} (3,3)-cores found in {t_trawl:?}",
        cores.len()
    );

    println!(
        "\npaper shape: once the compressed graph fits in memory, every global computation\n\
         is a plain main-memory algorithm — no external-memory machinery required."
    );
    std::fs::remove_dir_all(&dir).ok();
}
