//! **Ablation A1** (DESIGN.md): reference-encoding mode vs compression and
//! build time. Compares no reference encoding, windowed candidate sets of
//! several widths, and the paper's exact affinity-graph/Edmonds selection.
//!
//! Usage: `cargo run -p wg-bench --release --bin ablation_refenc
//! [--scale pages-per-million]`

use wg_bench::{corpus_for, repo_columns, row, timed, BenchArgs};
use wg_bitio::{codes, zeta};
use wg_snode::refenc::RefMode;
use wg_snode::{build_snode, RepoInput, SNodeConfig};

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    let corpus = corpus_for(&args, 25);
    let (urls, domains) = repo_columns(&corpus);
    println!(
        "== Ablation A1: reference-encoding mode ({} pages) ==\n",
        corpus.num_pages()
    );

    let modes = [
        ("none", RefMode::None),
        ("window-1", RefMode::Windowed(1)),
        ("window-8", RefMode::Windowed(8)),
        ("window-32", RefMode::Windowed(32)),
        ("window-128", RefMode::Windowed(128)),
        ("exact-edmonds", RefMode::Exact),
    ];
    let widths = [14usize, 12, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "mode".into(),
                "bits/edge".into(),
                "intranode b/e".into(),
                "superedge b/e".into(),
                "build(s)".into(),
            ],
            &widths
        )
    );
    for (name, mode) in modes {
        let dir = args.work_dir.join(format!("abl_ref_{name}"));
        let config = SNodeConfig {
            ref_mode: mode,
            ..Default::default()
        };
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &corpus.graph,
        };
        let ((stats, _), elapsed) = timed(|| build_snode(input, &config, &dir).expect("build"));
        let e = stats.num_edges as f64;
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{:.2}", stats.bits_per_edge()),
                    format!("{:.2}", stats.intranode_bits as f64 / e),
                    format!("{:.2}", stats.superedge_bits as f64 / e),
                    format!("{:.1}", elapsed.as_secs_f64()),
                ],
                &widths
            )
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "\nexpected: windowed reference encoding recovers most of Exact's compression at a\n\
         fraction of its cost; no-reference pays substantially more bits per edge."
    );

    // Gap-code family comparison on the corpus's real gap streams: collect
    // the adjacency gaps (per-list, global ids) and charge each code.
    println!("\n-- gap-code family on raw adjacency gaps (bits/gap) --");
    let mut gaps: Vec<u64> = Vec::new();
    for p in 0..corpus.graph.num_nodes() {
        let mut prev: Option<u32> = None;
        for &t in corpus.graph.neighbors(p) {
            if let Some(q) = prev {
                gaps.push(u64::from(t - q - 1));
            }
            prev = Some(t);
        }
    }
    let n = gaps.len() as f64;
    let g_bits: u64 = gaps.iter().map(|&g| codes::gamma_len(g)).sum();
    let d_bits: u64 = gaps.iter().map(|&g| codes::delta_len(g)).sum();
    println!("  gamma : {:.2}", g_bits as f64 / n);
    println!("  delta : {:.2}", d_bits as f64 / n);
    for k in [2u32, 3, 4, 5] {
        let z_bits: u64 = gaps
            .iter()
            .map(|&g| zeta::zeta_len(g, k).unwrap_or(0))
            .sum();
        println!("  zeta{k} : {:.2}", z_bits as f64 / n);
    }
    println!(
        "(S-Node stores gaps in *local* id spaces after partitioning, which is why its\n\
         per-edge numbers beat every raw-gap code above)"
    );
}
