//! Regenerates **Figure 12**: S-Node navigation time for Queries 1, 5 and
//! 6 as the memory buffer grows. The curves drop while the buffer is too
//! small to hold the query's working set of intranode/superedge graphs,
//! then flatten once everything relevant fits.
//!
//! Usage: `cargo run -p wg-bench --release --bin fig12_buffer
//! [--scale pages-per-million] [--trials N]`

use std::time::Duration;
use wg_bench::{corpus_for, mean_ms, repo_columns, row, BenchArgs};
use wg_query::queries::{query1, query5, query6, QueryEnv, Workload};
use wg_query::reps::{Scheme, SchemeSet};
use wg_query::{DomainTable, PageRankIndex, TextIndex};
use wg_snode::SNodeConfig;

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    let corpus = corpus_for(&args, 100);
    wg_store::diskmodel::set_disk_model(500, 40);
    println!(
        "== Figure 12: S-Node navigation time vs memory buffer ({} pages, {} trials) ==",
        corpus.num_pages(),
        args.trials
    );
    println!("simulated disk: 500us seek + 40MB/s transfer per physical read\n");

    let (urls, domains) = repo_columns(&corpus);
    let root = args.work_dir.join("fig12");
    // Build once with a generous default; each sweep point reopens with its
    // own budget.
    let set = SchemeSet::build(
        &root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        1 << 20,
    )
    .expect("scheme set");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let dt = DomainTable::build(&corpus, &set.renumbering);
    let workload = Workload::discover(&text, &dt);
    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &dt,
    };

    // Buffer sweep in bytes-per-page so the knee lands at the same
    // relative position at any --scale: 1 B/page .. 64 B/page.
    let budgets: Vec<usize> = (0..7).map(|i| (corpus.num_pages() as usize) << i).collect();
    let widths = [16usize, 12, 12, 12];
    println!(
        "{}",
        row(
            &["buffer".into(), "Q1".into(), "Q5".into(), "Q6".into()],
            &widths
        )
    );
    for &budget in &budgets {
        let mut rep = set
            .open_with_budget(Scheme::SNode, budget, false)
            .expect("open");
        let mut cells = vec![format!(
            "{}KB({}B/pg)",
            budget / 1024,
            budget / corpus.num_pages() as usize
        )];
        for q in 0..3 {
            let mut times: Vec<Duration> = Vec::new();
            for _ in 0..args.trials {
                rep.reset().expect("reset");
                let out = match q {
                    0 => query1(env, rep.as_mut(), &workload.q1),
                    1 => query5(env, rep.as_mut(), &workload.q5),
                    _ => query6(env, rep.as_mut(), &workload.q6),
                }
                .expect("query");
                times.push(out.nav.nav_time);
            }
            cells.push(format!("{:.2}ms", mean_ms(&times)));
        }
        println!("{}", row(&cells, &widths));
    }
    println!(
        "\npaper shape: an initial drop while the buffer cannot hold the query's graphs,\n\
         then an essentially flat curve — more memory beyond the working set buys nothing."
    );
    std::fs::remove_dir_all(&root).ok();
}
