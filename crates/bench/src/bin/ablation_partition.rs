//! **Ablation A2** (DESIGN.md): partitioning policy vs compression.
//! Compares (a) the domain partition alone, (b) URL split only, (c) the
//! full refinement with clustered split, and (d) the full refinement with
//! the paper's edge-count superedge heuristic instead of encoded-size
//! comparison; plus a granularity sweep over the URL-split gate.
//!
//! Usage: `cargo run -p wg-bench --release --bin ablation_partition
//! [--scale pages-per-million]`

use wg_bench::{corpus_for, repo_columns, row, BenchArgs};
use wg_snode::partition::RefineConfig;
use wg_snode::subgraphs::SuperedgePolicy;
use wg_snode::{build_snode, RepoInput, SNodeConfig};

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    let corpus = corpus_for(&args, 50);
    let (urls, domains) = repo_columns(&corpus);
    println!(
        "== Ablation A2: partitioning policy ({} pages) ==\n",
        corpus.num_pages()
    );

    let domain_only = RefineConfig {
        max_iterations: 0, // P0 untouched
        ..Default::default()
    };
    let url_only = RefineConfig {
        kmeans_ops_budget: 0, // clustered split always aborts
        ..Default::default()
    };
    let coarse = RefineConfig {
        min_url_split_mean: 512,
        ..Default::default()
    };
    let fine = RefineConfig {
        min_url_split_mean: 8,
        ..Default::default()
    };

    let variants: Vec<(&str, SNodeConfig)> = vec![
        (
            "domain-only (P0)",
            SNodeConfig {
                refine: domain_only,
                ..Default::default()
            },
        ),
        (
            "url-split only",
            SNodeConfig {
                refine: url_only,
                ..Default::default()
            },
        ),
        ("full refinement", SNodeConfig::default()),
        (
            "full + edge-count pos/neg",
            SNodeConfig {
                superedge_policy: SuperedgePolicy::EdgeCount,
                ..Default::default()
            },
        ),
        (
            "gate=512 (coarser)",
            SNodeConfig {
                refine: coarse,
                ..Default::default()
            },
        ),
        (
            "gate=8 (finer)",
            SNodeConfig {
                refine: fine,
                ..Default::default()
            },
        ),
    ];

    let widths = [28usize, 12, 12, 12, 10, 10];
    println!(
        "{}",
        row(
            &[
                "variant".into(),
                "supernodes".into(),
                "superedges".into(),
                "bits/edge".into(),
                "pos".into(),
                "neg".into(),
            ],
            &widths
        )
    );
    for (name, config) in variants {
        let dir = args
            .work_dir
            .join(format!("abl_part_{}", name.replace(' ', "_")));
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &corpus.graph,
        };
        let (stats, _) = build_snode(input, &config, &dir).expect("build");
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    stats.num_supernodes.to_string(),
                    stats.num_superedges.to_string(),
                    format!("{:.2}", stats.bits_per_edge()),
                    stats.positive_superedges.to_string(),
                    stats.negative_superedges.to_string(),
                ],
                &widths
            )
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "\nexpected: refinement beyond P0 trades supernode-graph size against intranode\n\
         compressibility; the encoded-size pos/neg policy never loses to edge count."
    );
}
