//! Regenerates **Figure 11** (and its reduction table): navigation time of
//! the six Table 3 queries under the four disk-based schemes —
//! uncompressed files, relational DB, Link3, and S-Node — with a fixed
//! memory cap per scheme (the paper used 325 MB on a 100 M-page corpus;
//! the default here scales that per page).
//!
//! Usage: `cargo run -p wg-bench --release --bin fig11_queries
//! [--scale pages-per-million] [--trials N]`

use std::time::Duration;
use wg_bench::{corpus_for, mean_ms, repo_columns, row, BenchArgs};
use wg_query::queries::{
    query1, query2, query3, query4, query5, query6, QueryEnv, QueryOutput, Workload,
};
use wg_query::reps::{Scheme, SchemeSet};
use wg_query::{DomainTable, PageRankIndex, TextIndex};
use wg_snode::SNodeConfig;

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    let corpus = corpus_for(&args, 100);
    // The paper capped graph memory at 325 MB for ~100M pages; that is
    // ~37% of its ~875MB S-Node representation. Apply a proportional
    // bytes-per-page allowance (decoded-form overheads are relatively
    // larger at small scale, hence 16 B/page rather than 3.4).
    let budget = (corpus.num_pages() as usize) * 16;
    // 2002-era disk economics, scaled: every physical read charges a seek
    // plus transfer time (see wg_store::diskmodel and DESIGN.md §4) —
    // without this, a warm NVMe page cache turns the experiment into a
    // pure CPU benchmark that measures none of the locality the paper does.
    wg_store::diskmodel::set_disk_model(500, 40);
    println!(
        "== Figure 11: query navigation time, {} pages, {}KB memory cap, {} trials ==",
        corpus.num_pages(),
        budget / 1024,
        args.trials
    );
    println!("simulated disk: 500us seek + 40MB/s transfer per physical read\n");

    let (urls, domains) = repo_columns(&corpus);
    let root = args.work_dir.join("fig11");
    let set = SchemeSet::build(
        &root,
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
        budget,
    )
    .expect("scheme set");
    let text = TextIndex::build(&corpus, &set.renumbering);
    let pagerank = PageRankIndex::build(&corpus.graph, &set.renumbering);
    let dt = DomainTable::build(&corpus, &set.renumbering);
    let workload = Workload::discover(&text, &dt);
    let env = QueryEnv {
        text: &text,
        pagerank: &pagerank,
        domains: &dt,
    };

    // mean navigation ms per (query, scheme)
    let mut results = vec![vec![0.0f64; Scheme::ALL.len()]; 6];
    for (si, &scheme) in Scheme::ALL.iter().enumerate() {
        let mut fwd = set.open(scheme).expect("open fwd");
        let mut back = set.open_transpose(scheme).expect("open back");
        #[allow(clippy::needless_range_loop)] // qi selects the query to dispatch
        for qi in 0..6 {
            let mut times: Vec<Duration> = Vec::with_capacity(args.trials as usize);
            for _ in 0..args.trials {
                fwd.reset().expect("reset");
                back.reset().expect("reset");
                let out: QueryOutput = match qi {
                    0 => query1(env, fwd.as_mut(), &workload.q1),
                    1 => query2(env, fwd.as_mut(), &workload.q2),
                    2 => query3(env, fwd.as_mut(), back.as_mut(), &workload.q3),
                    3 => query4(env, back.as_mut(), &workload.q4),
                    4 => query5(env, fwd.as_mut(), &workload.q5),
                    _ => query6(env, fwd.as_mut(), &workload.q6),
                }
                .expect("query");
                times.push(out.nav.nav_time);
            }
            results[qi][si] = mean_ms(&times);
        }
        eprintln!("  finished {}", scheme.name());
    }

    let widths = [8usize, 14, 14, 14, 14];
    let mut header = vec!["query".to_string()];
    header.extend(Scheme::ALL.iter().map(|s| s.name().to_string()));
    println!("{}", row(&header, &widths));
    for (qi, per_scheme) in results.iter().enumerate() {
        let mut cells = vec![format!("Q{}", qi + 1)];
        cells.extend(per_scheme.iter().map(|ms| format!("{ms:.2}ms")));
        println!("{}", row(&cells, &widths));
    }

    // Reduction table: S-Node vs the next-best scheme per query.
    println!("\nreduction in navigation time using S-Node vs next-best scheme:");
    println!("(paper: Q1 73.5%  Q2 76.9%  Q3 77.7%  Q4 82.2%  Q5 79.2%  Q6 89.2%)");
    let snode_idx = Scheme::ALL
        .iter()
        .position(|&s| s == Scheme::SNode)
        .expect("snode in list");
    for (qi, per_scheme) in results.iter().enumerate() {
        let snode = per_scheme[snode_idx];
        let best_other = per_scheme
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != snode_idx)
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        let reduction = if best_other > 0.0 {
            (1.0 - snode / best_other) * 100.0
        } else {
            0.0
        };
        println!(
            "  Q{}: {:.1}% (s-node {:.2}ms vs next-best {:.2}ms)",
            qi + 1,
            reduction,
            snode,
            best_other
        );
    }
    println!(
        "\npaper shape: S-Node reduces navigation time by an order of magnitude; plain\n\
         files are worst; relational and Link3 sit in between."
    );
    std::fs::remove_dir_all(&root).ok();
}
