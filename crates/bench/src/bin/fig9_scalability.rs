//! Regenerates **Figures 9(a), 9(b) and 10**: growth of the supernode
//! graph (vertices, edges, Huffman-encoded megabytes including 4-byte
//! pointers) as the repository grows through the paper's five sizes.
//!
//! Usage: `cargo run -p wg-bench --release --bin fig9_scalability
//! [--scale pages-per-million] [--seed N] [--dir PATH]`

use wg_bench::{corpus_for, crawl_prefix, row, timed, BenchArgs, PAPER_SIZES_M};
use wg_snode::{build_snode, RepoInput, SNodeConfig};

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    println!("== Figures 9(a), 9(b), 10: supernode-graph scalability ==");
    println!(
        "scale: {} pages per paper-million (paper sizes {:?} M)\n",
        args.pages_per_million, PAPER_SIZES_M
    );
    let widths = [10usize, 10, 12, 12, 14, 12, 10];
    println!(
        "{}",
        row(
            &[
                "size(M)".into(),
                "pages".into(),
                "supernodes".into(),
                "superedges".into(),
                "sngraph(KB)".into(),
                "bits/edge".into(),
                "build(s)".into(),
            ],
            &widths
        )
    );

    // One crawl; each data set is a prefix of it (§4's methodology).
    let full = corpus_for(&args, *PAPER_SIZES_M.last().expect("sizes"));
    let mut prev: Option<(u32, u64)> = None;
    for &m in &PAPER_SIZES_M {
        let (urls, domains, graph) = crawl_prefix(&full, args.pages_for(m));
        let dir = args.work_dir.join(format!("fig9_{m}"));
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &graph,
        };
        let ((stats, _renum), elapsed) =
            timed(|| build_snode(input, &SNodeConfig::default(), &dir).expect("build"));
        println!(
            "{}",
            row(
                &[
                    m.to_string(),
                    graph.num_nodes().to_string(),
                    stats.num_supernodes.to_string(),
                    stats.num_superedges.to_string(),
                    format!(
                        "{:.1}",
                        stats.supernode_graph_bytes_with_pointers as f64 / 1024.0
                    ),
                    format!("{:.2}", stats.bits_per_edge()),
                    format!("{:.1}", elapsed.as_secs_f64()),
                ],
                &widths
            )
        );
        if let Some((ps, pe)) = prev {
            let ds = stats.num_supernodes as f64 / ps as f64 - 1.0;
            let de = stats.num_superedges as f64 / pe as f64 - 1.0;
            println!(
                "{:>10}  growth: supernodes +{:.1}%  superedges +{:.1}%",
                "",
                ds * 100.0,
                de * 100.0
            );
        }
        prev = Some((stats.num_supernodes, stats.num_superedges));
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "\npaper shape: sub-linear growth — a 20x page increase yields <3x supernode growth;\n\
         the supernode graph stays a compact, memory-resident structural summary."
    );
}
