//! Regenerates **Table 1**: bits/edge for `WG` and `WGᵀ` under Plain
//! Huffman, Link3, and S-Node, plus the "maximum repository representable
//! in 8 GB of memory" extrapolation at the paper's mean out-degree of 14.
//!
//! Per the paper, each bits/edge figure is the average over the 25 M, 50 M
//! and 100 M-page data sets (scaled here).
//!
//! Usage: `cargo run -p wg-bench --release --bin table1_compression
//! [--scale pages-per-million]`

use wg_baselines::{HuffmanGraph, Link3Graph};
use wg_bench::{corpus_for, crawl_prefix, max_pages_in_memory, row, BenchArgs};
use wg_graph::Graph;
use wg_snode::{build_snode, RepoInput, SNodeConfig};

const SIZES_M: [u32; 3] = [25, 50, 100];

fn main() {
    let args = BenchArgs::parse();
    std::fs::create_dir_all(&args.work_dir).expect("work dir");
    println!("== Table 1: compression statistics ==");
    println!(
        "averaged over {:?} paper-million corpora at {} pages/million\n",
        SIZES_M, args.pages_per_million
    );

    // Accumulate bits/edge per scheme, per direction.
    let mut acc = [[0.0f64; 2]; 3]; // [scheme][direction]
    let full = corpus_for(&args, *SIZES_M.last().expect("sizes"));
    for &m in &SIZES_M {
        let (urls, domains, graph) = crawl_prefix(&full, args.pages_for(m));

        // Build the S-Node of WG first: its renumbering defines the shared
        // id space (the Connectivity Server sorts by URL too, so giving
        // Link3/Huffman the URL-grouped ordering matches their papers).
        let dir = args.work_dir.join(format!("t1_{m}"));
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &graph,
        };
        let (stats, renum) =
            build_snode(input, &SNodeConfig::default(), &dir).expect("snode build");
        let renum_graph = Graph::from_edges(
            graph.num_nodes(),
            graph
                .edges()
                .map(|(u, v)| (renum.new_of_old[u as usize], renum.new_of_old[v as usize])),
        );
        let transpose = renum_graph.transpose();

        // Transpose S-Node (built over the same renumbered repository).
        let t_urls: Vec<&str> = (0..graph.num_nodes())
            .map(|new| urls[renum.old_of_new[new as usize] as usize])
            .collect();
        let t_domains: Vec<u32> = (0..graph.num_nodes())
            .map(|new| domains[renum.old_of_new[new as usize] as usize])
            .collect();
        let dir_t = args.work_dir.join(format!("t1_{m}_t"));
        let t_input = RepoInput {
            urls: &t_urls,
            domains: &t_domains,
            graph: &transpose,
        };
        let (stats_t, _) =
            build_snode(t_input, &SNodeConfig::default(), &dir_t).expect("snode_t build");

        let huff = HuffmanGraph::build(&renum_graph);
        let huff_t = HuffmanGraph::build(&transpose);
        let link3 = Link3Graph::build(&renum_graph);
        let link3_t = Link3Graph::build(&transpose);

        acc[0][0] += huff.bits_per_edge();
        acc[0][1] += huff_t.bits_per_edge();
        acc[1][0] += link3.bits_per_edge();
        acc[1][1] += link3_t.bits_per_edge();
        acc[2][0] += stats.bits_per_edge();
        acc[2][1] += stats_t.bits_per_edge();

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir_t).ok();
    }
    for s in &mut acc {
        s[0] /= SIZES_M.len() as f64;
        s[1] /= SIZES_M.len() as f64;
    }

    let widths = [28usize, 12, 12, 16, 16];
    println!(
        "{}",
        row(
            &[
                "scheme".into(),
                "WG b/e".into(),
                "WGT b/e".into(),
                "max @8GB (WG)".into(),
                "max @8GB (WGT)".into(),
            ],
            &widths
        )
    );
    let names = ["Plain Huffman", "Connectivity Server (Link3)", "S-Node"];
    let paper = [[15.2, 15.4], [5.81, 5.92], [5.07, 5.63]];
    for (i, name) in names.iter().enumerate() {
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{:.2}", acc[i][0]),
                    format!("{:.2}", acc[i][1]),
                    format!("{}M", max_pages_in_memory(acc[i][0], 8 << 30) / 1_000_000),
                    format!("{}M", max_pages_in_memory(acc[i][1], 8 << 30) / 1_000_000),
                ],
                &widths
            )
        );
        println!(
            "{}",
            row(
                &[
                    "  (paper)".into(),
                    format!("{:.2}", paper[i][0]),
                    format!("{:.2}", paper[i][1]),
                    String::new(),
                    String::new(),
                ],
                &widths
            )
        );
    }
    println!(
        "\npaper shape: compressed schemes (Link3, S-Node) need ~3x fewer bits/edge than\n\
         plain Huffman; WG compresses better than WGT for similarity-exploiting schemes."
    );
}
