//! Criterion micro-benchmarks behind **Table 2**: per-adjacency-list decode
//! cost for the three in-memory compressed representations.
//!
//! Run with `cargo bench -p wg-bench --bench table2_access`. The
//! `table2_access` *binary* prints the paper-style ns/edge table; this
//! bench gives statistically robust per-call numbers for the same paths.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wg_baselines::{HuffmanGraph, Link3Graph};
use wg_corpus::{Corpus, CorpusConfig};
use wg_graph::Graph;
use wg_snode::{build_snode, RepoInput, SNodeConfig, SNodeInMemory};

/// Minimal scoped temp dir (no external crates).
struct DirGuard(std::path::PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

struct Fixture {
    graph: Graph,
    huffman: HuffmanGraph,
    link3: Link3Graph,
    snode: SNodeInMemory,
    _dir: DirGuard,
}

fn fixture(pages: u32) -> Fixture {
    let corpus = Corpus::generate(CorpusConfig::scaled(pages, 42));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut dir = std::env::temp_dir();
    dir.push(format!("wg_bench_t2_{}_{}", pages, std::process::id()));
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let (_stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    let graph = Graph::from_edges(
        corpus.graph.num_nodes(),
        corpus
            .graph
            .edges()
            .map(|(u, v)| (renum.new_of_old[u as usize], renum.new_of_old[v as usize])),
    );
    Fixture {
        huffman: HuffmanGraph::build(&graph),
        link3: Link3Graph::build(&graph),
        snode: SNodeInMemory::load(&dir).expect("load"),
        graph,
        _dir: DirGuard(dir),
    }
}

fn bench_random_access(c: &mut Criterion) {
    let f = fixture(25_000);
    let n = f.graph.num_nodes();
    let pages: Vec<u32> = (0..512u64)
        .map(|i| {
            let x = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as u32) % n
        })
        .collect();
    let edges: u64 = pages
        .iter()
        .map(|&p| f.graph.neighbors(p).len() as u64)
        .sum();

    let mut group = c.benchmark_group("table2_random_access");
    group.throughput(Throughput::Elements(edges));
    group.bench_with_input(BenchmarkId::new("huffman", "25k"), &pages, |b, pages| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in pages {
                acc += f.huffman.out_neighbors(p).expect("decode").len();
            }
            acc
        });
    });
    group.bench_with_input(BenchmarkId::new("link3", "25k"), &pages, |b, pages| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in pages {
                acc += f.link3.out_neighbors(p).expect("decode").len();
            }
            acc
        });
    });
    group.bench_with_input(BenchmarkId::new("snode", "25k"), &pages, |b, pages| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in pages {
                acc += f.snode.out_neighbors(p).expect("decode").len();
            }
            acc
        });
    });
    group.finish();
}

fn bench_sequential_access(c: &mut Criterion) {
    let f = fixture(25_000);
    let n = f.graph.num_nodes().min(512);
    let edges: u64 = (0..n).map(|p| f.graph.neighbors(p).len() as u64).sum();

    let mut group = c.benchmark_group("table2_sequential_access");
    group.throughput(Throughput::Elements(edges));
    group.bench_function("huffman", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in 0..n {
                acc += f.huffman.out_neighbors(p).expect("decode").len();
            }
            acc
        });
    });
    group.bench_function("link3", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in 0..n {
                acc += f.link3.out_neighbors(p).expect("decode").len();
            }
            acc
        });
    });
    group.bench_function("snode", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in 0..n {
                acc += f.snode.out_neighbors(p).expect("decode").len();
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_random_access, bench_sequential_access);
criterion_main!(benches);
