//! Criterion micro-benchmarks for the bit-level codecs every
//! representation is built on: Elias codes, canonical Huffman, and the
//! reference-encoding list codec.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wg_bitio::{codes, BitReader, BitWriter, HuffmanCode};
use wg_snode::codec::ListCodec;
use wg_snode::refenc::{encode_lists, ListsReader, RefMode, Universe};

fn pseudo(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn bench_elias(c: &mut Criterion) {
    let mut s = 42u64;
    let values: Vec<u64> = (0..4096).map(|_| pseudo(&mut s) % 100_000).collect();
    let mut group = c.benchmark_group("elias");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("gamma_encode", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                codes::write_gamma(&mut w, v);
            }
            w.bit_len()
        });
    });
    let mut w = BitWriter::new();
    for &v in &values {
        codes::write_gamma(&mut w, v);
    }
    let (bytes, bits) = w.finish();
    group.bench_function("gamma_decode", |b| {
        b.iter(|| {
            let mut r = BitReader::with_bit_len(&bytes, bits);
            let mut acc = 0u64;
            for _ in 0..values.len() {
                acc = acc.wrapping_add(codes::read_gamma(&mut r).expect("decode"));
            }
            acc
        });
    });
    let mut w = BitWriter::new();
    for &v in &values {
        codes::write_delta(&mut w, v);
    }
    let (bytes, bits) = w.finish();
    group.bench_function("delta_decode", |b| {
        b.iter(|| {
            let mut r = BitReader::with_bit_len(&bytes, bits);
            let mut acc = 0u64;
            for _ in 0..values.len() {
                acc = acc.wrapping_add(codes::read_delta(&mut r).expect("decode"));
            }
            acc
        });
    });
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    // Zipfian alphabet of 10k symbols, like page-id in-degree coding.
    let n = 10_000usize;
    let freqs: Vec<u64> = (0..n as u64).map(|i| 1_000_000 / (i + 1)).collect();
    let code = HuffmanCode::from_frequencies(&freqs);
    let mut s = 7u64;
    let msg: Vec<u32> = (0..4096)
        .map(|_| {
            // Skewed picks: low ids dominate.
            let x = pseudo(&mut s) % 100;
            if x < 80 {
                (pseudo(&mut s) % 100) as u32
            } else {
                (pseudo(&mut s) % n as u64) as u32
            }
        })
        .collect();
    let mut group = c.benchmark_group("huffman");
    group.throughput(Throughput::Elements(msg.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &m in &msg {
                code.encode(&mut w, m);
            }
            w.bit_len()
        });
    });
    let mut w = BitWriter::new();
    for &m in &msg {
        code.encode(&mut w, m);
    }
    let (bytes, bits) = w.finish();
    let dec = code.decoder();
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut r = BitReader::with_bit_len(&bytes, bits);
            let mut acc = 0u64;
            for _ in 0..msg.len() {
                acc += u64::from(dec.decode(&mut r).expect("decode"));
            }
            acc
        });
    });
    group.finish();
}

fn bench_refenc(c: &mut Criterion) {
    // 512 lists with strong pairwise similarity, like an intranode graph.
    let mut s = 11u64;
    let base: Vec<u32> = {
        let mut v: Vec<u32> = (0..40).map(|_| (pseudo(&mut s) % 512) as u32).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let lists: Vec<Vec<u32>> = (0..512)
        .map(|_| {
            let mut l = base.clone();
            l.retain(|_| pseudo(&mut s) % 10 < 8);
            l.push((pseudo(&mut s) % 512) as u32);
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    let edges: u64 = lists.iter().map(|l| l.len() as u64).sum();

    let mut group = c.benchmark_group("refenc");
    group.throughput(Throughput::Elements(edges));
    group.bench_function("encode_windowed32", |b| {
        b.iter(|| encode_lists(&lists, 512, RefMode::Windowed(32), ListCodec::GAMMA).bit_len);
    });
    let enc = encode_lists(&lists, 512, RefMode::Windowed(32), ListCodec::GAMMA);
    group.bench_function("decode_all", |b| {
        b.iter(|| {
            ListsReader::parse(
                &enc.bytes,
                enc.bit_len,
                Universe::Explicit(512),
                ListCodec::GAMMA,
            )
            .expect("parse")
            .decode_all()
            .expect("decode")
            .len()
        });
    });
    let reader = ListsReader::parse(
        &enc.bytes,
        enc.bit_len,
        Universe::Explicit(512),
        ListCodec::GAMMA,
    )
    .unwrap();
    group.bench_function("decode_single_random", |b| {
        let mut s = 3u64;
        b.iter(|| {
            let i = (pseudo(&mut s) % 512) as u32;
            reader.decode_list(i).expect("decode").len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_elias, bench_huffman, bench_refenc);
criterion_main!(benches);
