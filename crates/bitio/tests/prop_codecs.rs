//! Property-based tests: every codec in `wg-bitio` must round-trip arbitrary
//! inputs exactly, and interleaved heterogeneous streams must decode in
//! order.

use proptest::prelude::*;
use wg_bitio::{codes, gaps, rle, BitReader, BitWriter, HuffmanCode};

proptest! {
    #[test]
    fn gamma_round_trips(v in 0u64..=u64::MAX - 1) {
        let mut w = BitWriter::new();
        codes::write_gamma(&mut w, v);
        let (bytes, bits) = w.finish();
        prop_assert_eq!(bits, codes::gamma_len(v));
        let mut r = BitReader::with_bit_len(&bytes, bits);
        prop_assert_eq!(codes::read_gamma(&mut r).unwrap(), v);
    }

    #[test]
    fn delta_round_trips(v in 0u64..=u64::MAX - 1) {
        let mut w = BitWriter::new();
        codes::write_delta(&mut w, v);
        let (bytes, bits) = w.finish();
        prop_assert_eq!(bits, codes::delta_len(v));
        let mut r = BitReader::with_bit_len(&bytes, bits);
        prop_assert_eq!(codes::read_delta(&mut r).unwrap(), v);
    }

    #[test]
    fn rice_round_trips(v in 0u64..1_000_000_000u64, k in 0u32..20) {
        let mut w = BitWriter::new();
        codes::write_rice(&mut w, v, k);
        let (bytes, bits) = w.finish();
        prop_assert_eq!(bits, codes::rice_len(v, k));
        let mut r = BitReader::with_bit_len(&bytes, bits);
        prop_assert_eq!(codes::read_rice(&mut r, k).unwrap(), v);
    }

    #[test]
    fn minimal_binary_round_trips(n in 1u64..100_000, seed in any::<u64>()) {
        let x = seed % n;
        let mut w = BitWriter::new();
        codes::write_minimal_binary(&mut w, x, n);
        let (bytes, bits) = w.finish();
        prop_assert_eq!(bits, codes::minimal_binary_len(x, n));
        let mut r = BitReader::with_bit_len(&bytes, bits);
        prop_assert_eq!(codes::read_minimal_binary(&mut r, n).unwrap(), x);
    }

    #[test]
    fn mixed_streams_decode_in_order(values in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let mut w = BitWriter::new();
        for (i, &v) in values.iter().enumerate() {
            match i % 4 {
                0 => codes::write_gamma(&mut w, v),
                1 => codes::write_delta(&mut w, v),
                2 => codes::write_rice(&mut w, v, 4),
                _ => codes::write_unary(&mut w, v % 257),
            }
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for (i, &v) in values.iter().enumerate() {
            let got = match i % 4 {
                0 => codes::read_gamma(&mut r).unwrap(),
                1 => codes::read_delta(&mut r).unwrap(),
                2 => codes::read_rice(&mut r, 4).unwrap(),
                _ => codes::read_unary(&mut r).unwrap(),
            };
            let want = if i % 4 == 3 { v % 257 } else { v };
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bitvec_round_trips(bits in prop::collection::vec(any::<bool>(), 0..512)) {
        let mut w = BitWriter::new();
        rle::write_bitvec(&mut w, &bits);
        let (bytes, blen) = w.finish();
        prop_assert_eq!(blen, rle::encoded_len(&bits));
        let mut r = BitReader::with_bit_len(&bytes, blen);
        prop_assert_eq!(rle::read_bitvec(&mut r, bits.len()).unwrap(), bits);
    }

    #[test]
    fn gap_list_round_trips(raw in prop::collection::btree_set(0u64..10_000_000, 0..300)) {
        let list: Vec<u64> = raw.into_iter().collect();
        let mut w = BitWriter::new();
        gaps::write_gap_list(&mut w, &list);
        let (bytes, bits) = w.finish();
        prop_assert_eq!(bits, gaps::gap_list_len(&list));
        let mut r = BitReader::with_bit_len(&bytes, bits);
        prop_assert_eq!(gaps::read_gap_list(&mut r).unwrap(), list);
    }

    #[test]
    fn huffman_round_trips_random_alphabets(
        freqs in prop::collection::vec(0u64..10_000, 1..200),
        picks in prop::collection::vec(any::<u32>(), 0..500),
    ) {
        let coded: Vec<u32> = freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(s, _)| s as u32)
            .collect();
        prop_assume!(!coded.is_empty());
        let code = HuffmanCode::from_frequencies(&freqs);
        let msg: Vec<u32> = picks.iter().map(|&p| coded[p as usize % coded.len()]).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            code.encode(&mut w, s);
        }
        let (bytes, bits) = w.finish();
        let dec = code.decoder();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for &s in &msg {
            prop_assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn huffman_table_survives_serialisation(
        freqs in prop::collection::vec(0u64..1_000, 1..100),
    ) {
        prop_assume!(freqs.iter().any(|&f| f > 0));
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        code.write_lengths(&mut w);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        let rebuilt = HuffmanCode::read_lengths(&mut r).unwrap();
        for s in 0..freqs.len() as u32 {
            prop_assert_eq!(code.len_of(s), rebuilt.len_of(s));
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_decoders(data in prop::collection::vec(any::<u8>(), 0..64)) {
        // Decoding random garbage may error; it must never panic.
        let mut r = BitReader::new(&data);
        let _ = codes::read_gamma(&mut r);
        let mut r = BitReader::new(&data);
        let _ = codes::read_delta(&mut r);
        let mut r = BitReader::new(&data);
        let _ = codes::read_rice(&mut r, 3);
        let mut r = BitReader::new(&data);
        let _ = gaps::read_gap_list(&mut r);
        let mut r = BitReader::new(&data);
        let _ = rle::read_bitvec(&mut r, 40);
        let mut r = BitReader::new(&data);
        let _ = HuffmanCode::read_lengths(&mut r);
    }
}
