//! Bit-level coding primitives shared by every Web-graph representation in
//! this workspace.
//!
//! The ICDE'03 S-Node paper compresses its intranode and superedge graphs with
//! "easy to decode bit level compression techniques" (§3.3): reference-encoded
//! adjacency lists, gap-coded lists, run-length-encoded bit vectors, and
//! Huffman codes keyed by in-degree. This crate provides those primitives:
//!
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit streams over byte buffers.
//! * [`codes`] — unary, Elias γ/δ, Rice, and minimal-binary codes.
//! * [`huffman`] — canonical Huffman codes with table-driven decoding.
//! * [`rle`] — run-length coding of bit vectors.
//! * [`blocks`] — BV-style copy blocks (alternating-run copy-masks).
//! * [`gaps`] — gap coding of strictly ascending integer lists.
//! * [`zeta`] — Boldi–Vigna ζ codes (the WebGraph gap-code family).
//!
//! All codecs are exact: every `write_*` has a matching `read_*` that
//! round-trips, and malformed input yields [`BitError`] rather than a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod blocks;
pub mod codes;
pub mod gaps;
pub mod huffman;
pub mod rle;
pub mod zeta;

pub use bitstream::{BitReader, BitWriter};
pub use huffman::{HuffmanCode, HuffmanDecoder};

/// Errors produced while decoding bit streams.
///
/// Encoding is infallible (it appends to an in-memory buffer); decoding can
/// fail on truncated or corrupted input, and every decoder in this crate
/// reports such input as an error instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitError {
    /// The reader ran out of bits mid-codeword.
    UnexpectedEof {
        /// Bit position at which more input was required.
        position: u64,
    },
    /// A decoded value is impossible for the code in use (e.g. a γ-code
    /// length prefix of more than 64 bits).
    Corrupt {
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
    /// A Huffman code table was structurally invalid.
    BadCodeTable {
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
}

impl std::fmt::Display for BitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitError::UnexpectedEof { position } => {
                write!(f, "unexpected end of bit stream at bit {position}")
            }
            BitError::Corrupt { what } => write!(f, "corrupt bit stream: {what}"),
            BitError::BadCodeTable { what } => write!(f, "invalid code table: {what}"),
        }
    }
}

impl std::error::Error for BitError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BitError>;
