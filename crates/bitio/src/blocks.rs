//! BV-style copy blocks: an alternating-run encoding of copy-masks.
//!
//! WebGraph (Boldi–Vigna §.3) stores the copied/skipped structure of a
//! reference-encoded adjacency list not as a bit vector but as a block
//! sequence: the lengths of maximal runs, which by convention start with
//! a *copied* run (possibly of length zero) and alternate from there.
//! The final run's length is implicit — the mask length is known to the
//! decoder — so a mask that copies the whole reference list costs one
//! bit (γ(0)) no matter how long it is.
//!
//! Layout: `γ(B)` where `B` is the number of explicit blocks, then
//! `γ(b₀)` (the first copied run, which may be 0 when the mask starts
//! with a skip) and `γ(bᵢ − 1)` for each later block (maximal runs after
//! the first are ≥ 1). Unlike [`crate::rle`] there is no literal
//! fallback and no marker bit; the encoded size is a deterministic
//! function of the run structure, which the reference-selection cost
//! model depends on.

use crate::{codes, BitError, BitReader, BitWriter, Result};

/// Explicit block lengths of `bits`: every maximal run except the last,
/// with a zero-length copied run prepended when the mask starts false.
fn explicit_runs(bits: &[bool], mut emit: impl FnMut(u64)) {
    if bits.is_empty() {
        return;
    }
    if !bits[0] {
        emit(0); // zero-length leading copied run
    }
    let mut run = 1u64;
    for w in bits.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            emit(run);
            run = 1;
        }
    }
    // The final run is implicit: the decoder knows the mask length.
}

/// Size in bits of the copy-block encoding of `bits`.
pub fn blocks_len(bits: &[bool]) -> u64 {
    let mut count = 0u64;
    let mut body = 0u64;
    explicit_runs(bits, |run| {
        body += if count == 0 {
            codes::gamma_len(run)
        } else {
            codes::gamma_len(run - 1)
        };
        count += 1;
    });
    codes::gamma_len(count) + body
}

/// Writes `bits` as copy blocks. The mask length is **not** stored; the
/// decoder must be told how many bits to expect, exactly as with
/// [`crate::rle::read_bitvec`].
pub fn write_blocks(w: &mut BitWriter, bits: &[bool]) {
    let mut count = 0u64;
    explicit_runs(bits, |_| count += 1);
    codes::write_gamma(w, count);
    let mut first = true;
    explicit_runs(bits, |run| {
        if first {
            codes::write_gamma(w, run);
            first = false;
        } else {
            codes::write_gamma(w, run - 1);
        }
    });
}

/// Reads a copy-block mask of exactly `len` bits, invoking `on_set(i)`
/// for each copied (true) position — the hot path when applying a
/// reference-encoding copy-mask.
pub fn read_blocks_set_positions(
    r: &mut BitReader<'_>,
    len: usize,
    mut on_set: impl FnMut(usize),
) -> Result<()> {
    let count = codes::read_gamma(r)?;
    let mut pos = 0usize;
    let mut value = true; // blocks start with a copied run
    for i in 0..count {
        let raw = codes::read_gamma(r)?;
        let run = if i == 0 { raw } else { raw + 1 };
        let run = usize::try_from(run)
            .ok()
            .filter(|&n| pos + n <= len)
            .ok_or(BitError::Corrupt {
                what: "copy block overruns declared mask length",
            })?;
        if value {
            for j in pos..pos + run {
                on_set(j);
            }
        }
        pos += run;
        value = !value;
    }
    if value {
        // Implicit final run: whatever remains takes the next value.
        for j in pos..len {
            on_set(j);
        }
    }
    Ok(())
}

/// Reads a copy-block mask of exactly `len` bits into a vector.
pub fn read_blocks(r: &mut BitReader<'_>, len: usize) -> Result<Vec<bool>> {
    let mut out = vec![false; len];
    read_blocks_set_positions(r, len, |i| out[i] = true)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bits: &[bool]) {
        let mut w = BitWriter::new();
        write_blocks(&mut w, bits);
        let (bytes, blen) = w.finish();
        assert_eq!(blen, blocks_len(bits), "blocks_len must match encoding");
        let mut r = BitReader::with_bit_len(&bytes, blen);
        let decoded = read_blocks(&mut r, bits.len()).unwrap();
        assert_eq!(decoded, bits);
        assert_eq!(r.remaining(), 0);

        let mut r = BitReader::with_bit_len(&bytes, blen);
        let mut set = Vec::new();
        read_blocks_set_positions(&mut r, bits.len(), |i| set.push(i)).unwrap();
        let expect: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(set, expect);
    }

    #[test]
    fn empty_mask() {
        round_trip(&[]);
    }

    #[test]
    fn short_masks() {
        round_trip(&[true]);
        round_trip(&[false]);
        round_trip(&[true, false, true]);
        round_trip(&[false, false, true, true, false]);
        round_trip(&[false, true]);
    }

    #[test]
    fn all_copied_costs_one_bit() {
        for len in [1usize, 10, 1000] {
            let bits = vec![true; len];
            assert_eq!(blocks_len(&bits), 1, "len={len}");
            round_trip(&bits);
        }
    }

    #[test]
    fn all_skipped_is_cheap() {
        // Explicit zero-length copied run, implicit skipped remainder.
        let bits = vec![false; 500];
        assert_eq!(blocks_len(&bits), codes::gamma_len(1) + codes::gamma_len(0));
        round_trip(&bits);
    }

    #[test]
    fn pseudorandom_masks_round_trip() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for len in [1usize, 7, 8, 9, 63, 64, 65, 500] {
            let bits: Vec<bool> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 62) & 1 == 1
                })
                .collect();
            round_trip(&bits);
        }
    }

    #[test]
    fn overrunning_block_is_rejected() {
        let mut w = BitWriter::new();
        codes::write_gamma(&mut w, 1); // one explicit block
        codes::write_gamma(&mut w, 10); // first copied run of 10
        let (bytes, blen) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, blen);
        assert!(read_blocks(&mut r, 5).is_err());
    }

    #[test]
    fn truncated_input_errors() {
        let bits: Vec<bool> = (0..40).map(|i| (i / 3) % 2 == 0).collect();
        let mut w = BitWriter::new();
        write_blocks(&mut w, &bits);
        let (bytes, blen) = w.finish();
        for cut in 0..blen {
            let mut r = BitReader::with_bit_len(&bytes, cut);
            assert!(read_blocks(&mut r, bits.len()).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_never_panics() {
        let data = [0xFFu8, 0x13, 0xAA, 0x55, 0x00];
        for bitlen in 0..40u64 {
            let mut r = BitReader::with_bit_len(&data, bitlen);
            let _ = read_blocks(&mut r, 16);
        }
    }
}
